"""IR-style similarity join: match products to customer reviews.

A Query-3-shaped workload on fresh data: product descriptions in one
document, reviews in another, joined on title similarity (ScoreSim) and
combined with content relevance (ScoreBar) — all through the extended
XQuery front end, then once more through the algebra API.

Run:  python examples/similarity_join.py
"""

from repro.core import scored_join, sort_by_score, tree_from_document
from repro.core.pattern import (
    Combine,
    EdgeType,
    FromLabel,
    JoinScore,
    PatternNode,
    PhraseScore,
    ScoredPatternTree,
)
from repro.core.scoring import WeightedCountScorer, score_bar, score_sim
from repro.query import run_query
from repro.xmldb import XMLStore

PRODUCTS = """
<products>
  <product>
    <title>Trail Running Shoes</title>
    <details>
      <p>Lightweight shoes with aggressive grip for muddy trails.</p>
      <p>The breathable mesh keeps trail runners cool.</p>
    </details>
  </product>
  <product>
    <title>Road Running Shoes</title>
    <details><p>Cushioned shoes for long road miles.</p></details>
  </product>
  <product>
    <title>Hiking Poles</title>
    <details><p>Collapsible carbon poles for steep hikes.</p></details>
  </product>
</products>
"""

REVIEWS = """
<reviews>
  <review><rtitle>Trail Running Shoes</rtitle>
    <body>superb grip on wet trails</body><stars>5</stars></review>
  <review><rtitle>Road Running Shoes</rtitle>
    <body>fine but heavy</body><stars>3</stars></review>
  <review><rtitle>Kitchen Blender</rtitle>
    <body>blends things</body><stars>4</stars></review>
</reviews>
"""


def join_pattern() -> ScoredPatternTree:
    """tix_prod_root($1) over product($2, title $3, body $6 ad*) and
    review($7, rtitle $8); root score = ScoreBar(titleSim, content)."""
    p1 = PatternNode("$1", tag="tix_prod_root")
    p2 = p1.add_child(PatternNode("$2", tag="product"), EdgeType.AD)
    p2.add_child(PatternNode("$3", tag="title"), EdgeType.PC)
    p2.add_child(PatternNode("$6"), EdgeType.ADS)
    p7 = p1.add_child(PatternNode("$7", tag="review"), EdgeType.AD)
    p7.add_child(PatternNode("$8", tag="rtitle"), EdgeType.PC)
    return ScoredPatternTree(p1, scoring={
        "$6": PhraseScore(WeightedCountScorer(
            primary=["trail"], secondary=["grip"],
        )),
        "$2": FromLabel("$6"),
        "$joinScore": JoinScore(score_sim, "$3", "$8"),
        "$1": Combine(score_bar, ["$joinScore", "$6"]),
    })


def main() -> None:
    store = XMLStore.from_sources({
        "products.xml": PRODUCTS, "reviews.xml": REVIEWS,
    })

    print("=== via the extended XQuery front end ===")
    results = run_query(store, '''
        For $p in document("products.xml")//product
        For $r in document("reviews.xml")//review
        For $pt in $p/title
        For $rt in $r/rtitle
        Where $pt/text() = $rt/text()
        Score $p using ScoreFoo($p, {"trail"}, {"grip"})
        Return
          <match>
            <score>{ $p/@score }</score>
            { $pt } { $r/stars }
          </match>
        Sortby(score)
    ''')
    for t in results:
        title = t.root.find_by_tag("title")[0].alltext()
        stars = t.root.find_by_tag("stars")[0].alltext()
        print(f"  score={t.score:g}  {title!r}  ({stars} stars)")

    print("\n=== via the algebra (scored join, Fig. 4 style) ===")
    products = store.document("products.xml")
    reviews = store.document("reviews.xml")
    left = [tree_from_document(products, n)
            for n in products.find_by_tag("product")]
    right = [tree_from_document(reviews, n)
             for n in reviews.find_by_tag("review")]
    joined = sort_by_score(scored_join(left, right, join_pattern()))
    for t in joined[:4]:
        prod = t.root.find_by_tag("product")[0]
        rev = t.root.find_by_tag("review")[0]
        print(f"  root={t.score:g}  product title="
              f"{prod.find_by_tag('title')[0].alltext()!r}  "
              f"review={rev.find_by_tag('rtitle')[0].alltext()!r}")
    print("\n(zero-scored pairs are title matches whose product content "
          "is irrelevant — ScoreBar gates them out)")


if __name__ == "__main__":
    main()
