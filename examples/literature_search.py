"""Literature search over a synthetic article collection.

The scenario the paper's introduction motivates: a digital library of
technical articles, a fuzzy topic query ("distributed consensus",
ideally also about "failure" and "recovery"), and answers at the right
granularity — whole chapters when a chapter is relevant throughout,
single paragraphs when the hit is local.

Shows: the workload generator, the pipelined engine with TermJoin, plan
explain output, Pick for granularity control, and the logical-I/O
counters.

Run:  python examples/literature_search.py
"""

from repro.access import PickAccess, TermJoin
from repro.core.operators import PickCriterion
from repro.core.scoring import WeightedCountScorer
from repro.core.trees import tree_from_document
from repro.engine import (
    Limit,
    Materialize,
    Sort,
    TermJoinScan,
    execute,
    explain,
)
from repro.workload import CorpusSpec, generate_corpus


def main() -> None:
    # A 60-article corpus with topic terms planted at known frequencies.
    store = generate_corpus(CorpusSpec(
        n_articles=60,
        planted_terms={
            "consensus": 150, "distributed": 120,
            "failure": 90, "recovery": 60,
        },
        seed=2026,
    ))
    print("corpus:", store)

    scorer = WeightedCountScorer(
        primary=["consensus", "distributed"],
        secondary=["failure", "recovery"],
    )
    terms = ["consensus", "distributed", "failure", "recovery"]

    # Pipelined plan: TermJoin scan -> sort by score -> top 5 -> fetch.
    store.counters.reset()
    plan = Materialize(
        Limit(Sort(TermJoinScan(store, terms, TermJoin(store, scorer))), 5),
        store,
    )
    top5 = execute(plan)

    print("\nphysical plan (with row counts):")
    print(explain(plan))

    print("\ntop 5 elements:")
    for tree in top5:
        doc = store.document(tree.root.source[0])
        print(f"  score={tree.score:6.2f}  <{tree.root.tag}>  "
              f"in {doc.name}")

    print("\nlogical I/O:", store.counters.snapshot())

    # Granularity control: run Pick over the best article so nested
    # redundant answers collapse to the right level.
    best_article = max(
        (t for t in top5 if t.root.tag == "article"),
        key=lambda t: t.score,
        default=top5[0],
    )
    doc = store.document(best_article.root.source[0])
    article_tree = tree_from_document(doc)
    # score every node first (what the Score clause would do)
    for node in article_tree.nodes():
        node.score = scorer.score_node(node)
    picker = PickAccess(PickCriterion(
        relevance_threshold=0.8, qualification=0.5,
        ignore_zero_children=True,
    ))
    picked, _pruned = picker.run(article_tree)
    print(f"\nPick on the best article: {len(picked)} irredundant "
          f"answers out of {article_tree.n_nodes()} nodes:")
    for node in picked[:6]:
        print(f"  <{node.tag}> score={node.score:.2f}")


if __name__ == "__main__":
    main()
