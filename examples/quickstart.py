"""Quickstart: load XML, ask an IR-style question, get ranked elements.

Run:  python examples/quickstart.py
"""

from repro.xmldb import XMLStore
from repro.query import run_query

CATALOG = """
<catalog>
  <product id="p1">
    <name>Solar Garden Lantern</name>
    <blurb>A solar powered lantern for garden paths. The solar panel
           charges all day and the lantern glows all night.</blurb>
  </product>
  <product id="p2">
    <name>Camping Lantern</name>
    <blurb>A rugged battery lantern for camping trips.</blurb>
  </product>
  <product id="p3">
    <name>Solar Phone Charger</name>
    <blurb>Charge your phone with a folding solar panel.</blurb>
  </product>
</catalog>
"""


def main() -> None:
    # 1. Load documents into a store (parsing, region numbering and
    #    inverted-index construction all happen behind this call).
    store = XMLStore.from_sources({"catalog.xml": CATALOG})

    # 2. Ask for document components about "solar" lanterns.  The Score
    #    clause attaches relevance scores (0.8 per "solar", 0.6 per
    #    "lantern"); Threshold + Sortby rank and cut the answers.
    results = run_query(store, '''
        For $x in document("catalog.xml")//product/descendant-or-self::*
        Score $x using ScoreFoo($x, {"solar"}, {"lantern"})
        Return <hit><score>{ $x/@score }</score>{ $x }</hit>
        Sortby(score)
        Threshold $x/@score > 0 stop after 3
    ''')

    print(f"{len(results)} ranked hits:\n")
    for tree in results:
        element = tree.root.children[1]
        print(f"  score={tree.score:<5g} <{element.tag}> "
              f"{element.alltext()[:60]}")

    # 3. The same question straight through the access-method API:
    from repro.access import TermJoin
    from repro.core.scoring import WeightedCountScorer

    scorer = WeightedCountScorer(primary=["solar"], secondary=["lantern"])
    hits = TermJoin(store, scorer).run(["solar", "lantern"])
    best = max(hits, key=lambda h: h.score)
    doc = store.document(best.doc_id)
    print(f"\nTermJoin's best element: <{doc.tags[best.node_id]}> "
          f"score={best.score:g}")


if __name__ == "__main__":
    main()
