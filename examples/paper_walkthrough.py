"""The paper's running example, end to end.

Reproduces, from the Figure 1 database and the Figure 9 user functions:

- Figure 5  (three witness trees of Query 2 under scored selection),
- Figure 6  (the scored projection with PL = {$1, $3, $4}),
- Figure 8  (the projection after Pick — note the article's score
  changing from 5.6 to 5.0 dynamically),
- Example 3.1 (the 4-step plan ending at chapter #a10),
- Figure 7  (one result of the Query 3 similarity join).

Run:  python examples/paper_walkthrough.py
"""

from repro.core import (
    scored_join,
    scored_projection,
    scored_selection,
    tree_from_document,
)
from repro.core.operators import pick, top_k_trees
from repro.core.pattern import (
    EdgeType,
    ExistingScore,
    FromLabel,
    PatternNode,
    ScoredPatternTree,
)
from repro.exampledata import (
    example_store,
    pickfoo_criterion,
    query2_pattern,
    query3_pattern,
)


def main() -> None:
    store = example_store()
    articles = store.document("articles.xml")
    tree = tree_from_document(articles)
    pattern = query2_pattern()

    print("=== Figure 1: the example database ===")
    print(store, "\n")

    print("=== Figure 5: Query 2 under scored selection ===")
    witnesses = scored_selection([tree], pattern)
    interesting = [
        t for t in witnesses
        if t.sketch() in (
            "article[0.8](author(sname),p[0.8])",
            "article[3.6](author(sname),section[3.6])",
            "article[5.6](article[5.6],author(sname))",
        )
    ]
    for t in interesting:
        print("  ", t.sketch())
    print(f"  … plus {len(witnesses) - len(interesting)} more witnesses\n")

    print("=== Figure 6: projection with PL = {$1, $3, $4} ===")
    projected = scored_projection([tree], pattern, ["$1", "$3", "$4"])
    print("  ", projected[0].sketch(), "\n")

    print("=== Figure 8: after Pick (PickFoo) ===")
    picked = pick(projected, "$4", pickfoo_criterion(), pattern=pattern)
    print("  ", picked[0].sketch())
    print(f"   note the article score: 5.6 -> {picked[0].score:g} "
          f"(recomputed after pruning)\n")

    print("=== Example 3.1: threshold to the top answer ===")
    root = PatternNode("$1", tag="article")
    root.add_child(
        PatternNode("$4", predicate=lambda n: (
            n.score is not None and n.tag != "article"
        )),
        EdgeType.ADS,
    )
    keep = ScoredPatternTree(
        root, scoring={"$4": ExistingScore(), "$1": FromLabel("$4")}
    )
    results = scored_selection(picked, keep)
    top = top_k_trees(results, 1)[0]
    best = [n for n in top.nodes() if "$4" in n.labels][0]
    print(f"   top element: <{best.tag}> score={best.score:g} "
          f"(the paper's #a10)")
    doc_id, node_id = best.source
    print("   retrieved from the database:")
    for line in store.document(doc_id).serialize(
        node_id, indent=True
    ).splitlines()[:4]:
        print("    ", line)
    print("     …\n")

    print("=== Figure 7: Query 3 (similarity join with reviews) ===")
    reviews = store.document("reviews.xml")
    review_trees = [
        tree_from_document(reviews, nid)
        for nid in reviews.find_by_tag("review")
    ]
    joined = scored_join([tree], review_trees, query3_pattern())
    fig7 = [t for t in joined if abs((t.score or 0) - 2.8) < 1e-9]
    print("  ", fig7[0].sketch())
    print("   (root score 2.8 = title similarity 2.0 + p#a18's 0.8)")


if __name__ == "__main__":
    main()
