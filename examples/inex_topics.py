"""INEX-style topic evaluation with NEXI queries.

The paper's corpus is INEX, whose topics are NEXI queries.  This example
builds a synthetic article collection with two planted research topics,
then runs content-only and content-and-structure NEXI topics against it,
showing the granularity spread of the answers (whole articles vs single
paragraphs).

Run:  python examples/inex_topics.py
"""

from repro.nexi import run_nexi
from repro.workload import CorpusSpec, generate_corpus


def main() -> None:
    store = generate_corpus(CorpusSpec(
        n_articles=40,
        planted_terms={
            "quantum": 120, "entanglement": 80,
            "compiler": 100, "vectorization": 60,
        },
        planted_phrases={("quantum", "entanglement"): 25},
        seed=404,
    ))
    print("corpus:", store, "\n")

    topics = [
        ("CO topic",
         '"quantum entanglement" quantum'),
        ("CAS: sections about the topic",
         '//article//section[about(., quantum entanglement)]'),
        ("CAS: paragraphs in relevant articles",
         '//article[about(., compiler)]//p[about(., vectorization)]'),
        ("CAS: and-combination",
         '//section[about(., quantum) and about(., entanglement)]'),
    ]

    for title, topic in topics:
        hits = run_nexi(store, topic, top_k=5)
        print(f"== {title}")
        print(f"   {topic}")
        for hit in hits:
            doc = store.document(hit.doc_id)
            tag = doc.tags[hit.node_id]
            print(f"   score={hit.score:<7.2f} <{tag}> in {doc.name}")
        if not hits:
            print("   (no hits)")
        print()

    # Granularity: the CO topic's hits range from whole articles down to
    # single paragraphs, which is exactly the heterogeneous-granularity
    # behaviour §2 motivates.
    hits = run_nexi(store, '"quantum entanglement"', top_k=25)
    tags = sorted({
        store.document(h.doc_id).tags[h.node_id] for h in hits
    })
    print("granularities retrieved for the CO topic:", ", ".join(tags))


if __name__ == "__main__":
    main()
