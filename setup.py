"""Legacy setup shim.

The container this reproduction targets has no network access and no
``wheel`` package, so PEP-517 editable installs fail; this shim lets
``pip install -e . --no-build-isolation --no-use-pep517`` (or
``python setup.py develop``) work offline.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
