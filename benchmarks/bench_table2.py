"""Table 2: two index terms, equal frequency 20 → 10,000, **complex**
scoring — adds Enhanced TermJoin (child counts from the structure index
instead of data navigation)."""

import pytest

from repro.access.composite import Comp1, Comp2
from repro.access.termjoin import EnhancedTermJoin, TermJoin
from repro.core.scoring import ProximityScorer
from repro.joins.meet import generalized_meet

FREQ_IDS = [20, 100, 200, 300, 500, 1000, 2000, 3000, 5500, 7000, 10000]


def _row(rows, freq):
    return next(r for r in rows["table1"] if r.label == freq)


@pytest.mark.parametrize("freq", FREQ_IDS)
def test_termjoin_complex(benchmark, corpus123, profiled, freq):
    store, rows = corpus123
    row = _row(rows, freq)
    method = TermJoin(store, ProximityScorer(row.terms),
                      complex_scoring=True)
    result = benchmark.pedantic(
        method.run, args=(list(row.terms),), rounds=5, iterations=1
    )
    profiled(method.run, list(row.terms))
    assert result


@pytest.mark.parametrize("freq", FREQ_IDS)
def test_enhanced_termjoin_complex(benchmark, corpus123, profiled, freq):
    store, rows = corpus123
    row = _row(rows, freq)
    method = EnhancedTermJoin(store, ProximityScorer(row.terms),
                              complex_scoring=True)
    result = benchmark.pedantic(
        method.run, args=(list(row.terms),), rounds=5, iterations=1
    )
    profiled(method.run, list(row.terms))
    assert result


@pytest.mark.parametrize("freq", FREQ_IDS)
def test_generalized_meet_complex(benchmark, corpus123, profiled, freq):
    store, rows = corpus123
    row = _row(rows, freq)
    scorer = ProximityScorer(row.terms)
    result = benchmark.pedantic(
        generalized_meet,
        args=(store, list(row.terms), scorer),
        kwargs={"complex_scoring": True},
        rounds=5, iterations=1,
    )
    profiled(generalized_meet, store, list(row.terms), scorer,
             complex_scoring=True)
    assert result


@pytest.mark.parametrize("freq", FREQ_IDS)
def test_comp1_complex(benchmark, corpus123, profiled, freq):
    store, rows = corpus123
    row = _row(rows, freq)
    method = Comp1(store, ProximityScorer(row.terms), complex_scoring=True)
    result = benchmark.pedantic(
        method.run, args=(list(row.terms),), rounds=3, iterations=1
    )
    profiled(method.run, list(row.terms))
    assert result


@pytest.mark.parametrize("freq", FREQ_IDS)
def test_comp2_complex(benchmark, corpus123, profiled, freq):
    store, rows = corpus123
    row = _row(rows, freq)
    method = Comp2(store, ProximityScorer(row.terms), complex_scoring=True)
    result = benchmark.pedantic(
        method.run, args=(list(row.terms),), rounds=3, iterations=1
    )
    profiled(method.run, list(row.terms))
    assert result
