"""The in-text Pick experiment (§6): parent/child redundancy elimination
over scored trees of 200 → 55,000 nodes.  The paper reports 0.01–1.03 s
over this range; the key property is near-linear scaling."""

import pytest

from repro.access.pick import PickAccess
from repro.core.pick import PickCriterion
from repro.workload.trees import random_scored_tree

SIZES = [200, 1000, 5000, 15000, 30000, 55000]


@pytest.fixture(scope="module")
def trees():
    return {n: random_scored_tree(n, seed=n) for n in SIZES}


@pytest.mark.parametrize("n_nodes", SIZES)
def test_pick_parent_child_elimination(benchmark, trees, n_nodes):
    access = PickAccess(
        PickCriterion(relevance_threshold=0.8, qualification=0.5)
    )
    tree = trees[n_nodes]
    picked, pruned = benchmark.pedantic(
        access.run, args=(tree,), rounds=5, iterations=1
    )
    assert picked and pruned is not None


@pytest.mark.parametrize("n_nodes", [5000, 30000])
def test_pick_decision_pass_only(benchmark, trees, n_nodes):
    """Just the picked-set computation (no output-tree construction),
    isolating the stack-based decision pass."""
    access = PickAccess(
        PickCriterion(relevance_threshold=0.8, qualification=0.5)
    )
    tree = trees[n_nodes]
    picked = benchmark.pedantic(
        access.picked_nodes, args=(tree,), rounds=5, iterations=1
    )
    assert picked
