"""Table 3: term1 frequency fixed at 1,000, term2 frequency 20 → 7,000,
complex scoring."""

import pytest

from repro.access.composite import Comp1, Comp2
from repro.access.termjoin import EnhancedTermJoin, TermJoin
from repro.core.scoring import ProximityScorer
from repro.joins.meet import generalized_meet

TERM2_FREQS = [20, 200, 1000, 3000, 7000]


def _row(rows, freq):
    return next(r for r in rows["table3"] if r.label == freq)


def _methods(store, terms):
    scorer = ProximityScorer(terms)
    return {
        "comp1": (Comp1(store, scorer, True).run, 3),
        "comp2": (Comp2(store, scorer, True).run, 3),
        "meet": (
            lambda t: generalized_meet(store, t, scorer, True), 5
        ),
        "termjoin": (TermJoin(store, scorer, True).run, 5),
        "enhanced": (EnhancedTermJoin(store, scorer, True).run, 5),
    }


@pytest.mark.parametrize("freq", TERM2_FREQS)
@pytest.mark.parametrize(
    "technique", ["comp1", "comp2", "meet", "termjoin", "enhanced"]
)
def test_table3(benchmark, corpus123, profiled, technique, freq):
    store, rows = corpus123
    row = _row(rows, freq)
    fn, rounds = _methods(store, row.terms)[technique]
    result = benchmark.pedantic(
        fn, args=(list(row.terms),), rounds=rounds, iterations=1
    )
    profiled(fn, list(row.terms))
    assert result
