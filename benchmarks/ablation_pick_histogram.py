"""Ablation: Pick's relevance threshold from the score histogram vs an
exact full sort.

§5.3: "it is often unrealistic to ask the users for the exact relevance
score threshold … auxiliary data like a histogram … enables the user to
specify such scores more flexibly and allows the evaluation of Pick to
be done more efficiently."  A user asking for "the top 25% of scores"
can be served either by sorting every score exactly or by consulting the
equi-width histogram; the histogram answer is approximate but O(buckets).
"""

import pytest

from repro.access.pick import PickAccess
from repro.core.pick import PickCriterion
from repro.workload.trees import random_scored_tree
from repro.xmldb.stats import ScoreHistogram

SIZES = [5000, 30000]
TOP_FRACTION = 0.25


def _scores(tree):
    return [n.score for n in tree.nodes() if n.score is not None]


def exact_threshold(tree) -> float:
    scores = sorted(_scores(tree), reverse=True)
    k = max(1, int(len(scores) * TOP_FRACTION))
    return scores[k - 1]


def histogram_threshold(tree) -> float:
    return ScoreHistogram(_scores(tree), n_buckets=32) \
        .threshold_for_top_fraction(TOP_FRACTION)


@pytest.mark.parametrize("n_nodes", SIZES)
@pytest.mark.parametrize("variant", ["exact_sort", "histogram"])
def test_threshold_derivation(benchmark, variant, n_nodes):
    tree = random_scored_tree(n_nodes, seed=n_nodes)
    fn = exact_threshold if variant == "exact_sort" else histogram_threshold
    threshold = benchmark.pedantic(fn, args=(tree,), rounds=5, iterations=1)
    assert threshold >= 0


@pytest.mark.parametrize("n_nodes", SIZES)
def test_pick_quality_with_histogram_threshold(n_nodes):
    """The histogram-driven Pick returns a superset close to the exact
    one: the conservative bucket lower bound admits at least the
    requested fraction."""
    tree = random_scored_tree(n_nodes, seed=n_nodes)
    exact = exact_threshold(tree)
    approx = histogram_threshold(tree)
    assert approx <= exact  # conservative

    exact_picked = PickAccess(
        PickCriterion(relevance_threshold=exact)
    ).picked_nodes(tree)
    approx_picked = PickAccess(
        PickCriterion(relevance_threshold=approx)
    ).picked_nodes(tree)
    assert len(approx_picked) >= len(exact_picked)
    # and not absurdly larger (bucket resolution bounds the error)
    assert len(approx_picked) <= 2 * len(exact_picked) + 32
