"""Table 4: query size 2 → 7 terms, each term frequency ≈1,500, complex
scoring."""

import pytest

from repro.access.composite import Comp1, Comp2
from repro.access.termjoin import EnhancedTermJoin, TermJoin
from repro.core.scoring import ProximityScorer
from repro.joins.meet import generalized_meet

PHRASE_SIZES = [2, 3, 4, 5, 6, 7]


def _row(rows, n_terms):
    return next(r for r in rows if r.label == n_terms)


def _methods(store, terms):
    scorer = ProximityScorer(terms)
    return {
        "comp1": (Comp1(store, scorer, True).run, 3),
        "comp2": (Comp2(store, scorer, True).run, 3),
        "meet": (
            lambda t: generalized_meet(store, t, scorer, True), 5
        ),
        "termjoin": (TermJoin(store, scorer, True).run, 5),
        "enhanced": (EnhancedTermJoin(store, scorer, True).run, 5),
    }


@pytest.mark.parametrize("n_terms", PHRASE_SIZES)
@pytest.mark.parametrize(
    "technique", ["comp1", "comp2", "meet", "termjoin", "enhanced"]
)
def test_table4(benchmark, corpus4, profiled, technique, n_terms):
    store, rows = corpus4
    row = _row(rows, n_terms)
    fn, rounds = _methods(store, row.terms)[technique]
    result = benchmark.pedantic(
        fn, args=(list(row.terms),), rounds=rounds, iterations=1
    )
    profiled(fn, list(row.terms))
    assert result
