"""Regenerate EXPERIMENTS.md: run every experiment and write the
paper-vs-measured report.

Usage:  python benchmarks/make_report.py [--scale S] [--runs N] [--out F]
                                         [--profile] [--json F]
        python benchmarks/make_report.py --diff BASELINE CANDIDATE
                                         [--diff-threshold T]

``--profile`` runs every cell once more under the observability
collector (repro.obs) and attaches per-access-method metric breakdowns;
``--json`` writes every table — rows, notes, and any breakdowns — as a
machine-readable report.

``--diff`` compares two ``tix bench --json-out`` artifacts (e.g. the
committed ``BENCH_PR5.json`` baseline vs a fresh run) cell-by-cell and
reports relative changes beyond the threshold (default 10%); the exit
status is 1 when any cell regressed, so CI can gate on it.

At scale 1.0 the planted term frequencies equal the paper's (Table 5's
are 20× down — its terms occur up to 146k times in INEX, see the spec).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List

from repro.bench import (
    run_batch_experiment,
    run_cache_experiment,
    run_pick_experiment,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)
from repro.bench.harness import BenchResult
from repro.workload import (
    generate_corpus,
    table123_spec,
    table4_spec,
    table5_spec,
)

# The paper's reported numbers (seconds), for side-by-side ratios.
PAPER_TABLE1 = {
    20: (0.01, 283.70, 0.01, 0.01),
    100: (0.09, 414.40, 0.03, 0.02),
    200: (0.36, 468.76, 0.05, 0.03),
    300: (1.66, 523.78, 0.17, 0.11),
    500: (2.92, 536.42, 2.01, 1.45),
    1000: (18.37, 613.15, 7.92, 5.77),
    2000: (42.64, 644.60, 27.29, 12.16),
    3000: (93.37, 655.87, 28.52, 16.34),
    5500: (492.98, 732.49, 30.28, 18.01),
    7000: (955.94, 766.07, 36.22, 19.42),
    10000: (1641.63, 840.53, 96.68, 20.55),
}
PAPER_TABLE2 = {
    20: (0.02, 285.56, 0.02, 0.02, 0.04),
    100: (0.10, 417.89, 0.10, 0.06, 0.08),
    200: (0.40, 474.73, 0.29, 0.15, 0.11),
    300: (1.68, 543.28, 1.05, 0.59, 0.21),
    500: (3.08, 547.15, 4.14, 2.37, 0.45),
    1000: (18.96, 622.58, 14.53, 7.65, 1.16),
    2000: (43.75, 675.57, 56.71, 24.67, 4.13),
    3000: (94.33, 688.06, 83.39, 27.94, 6.84),
    5500: (519.82, 742.09, 319.59, 28.32, 10.65),
    7000: (1070.95, 781.00, 331.79, 48.61, 15.46),
    10000: (1717.91, 852.35, 722.88, 81.60, 21.93),
}
PAPER_TABLE3 = {
    20: (3.72, 321.47, 3.45, 0.93, 0.48),
    200: (5.30, 576.21, 4.29, 1.44, 0.64),
    1000: (18.96, 622.58, 14.53, 7.65, 1.16),
    3000: (39.81, 655.10, 38.85, 11.87, 3.52),
    7000: (113.06, 735.98, 184.99, 29.51, 11.78),
}
PAPER_TABLE4 = {
    2: (20.49, 638.69, 22.39, 8.06, 2.08),
    3: (41.91, 801.82, 40.99, 14.13, 3.88),
    4: (53.53, 1072.16, 44.35, 16.09, 6.56),
    5: (71.56, 1342.76, 58.32, 23.84, 9.86),
    6: (225.60, 1625.05, 79.48, 34.59, 13.69),
    7: (329.70, 1892.78, 97.58, 45.44, 16.60),
}
PAPER_TABLE5 = {  # query -> (Comp3, PhraseFinder)
    1: (10.15, 1.33), 2: (3.04, 1.06), 3: (5.98, 2.04), 4: (6.36, 1.49),
    5: (4.30, 1.98), 6: (5.84, 2.15), 7: (5.10, 1.30), 8: (3.22, 1.34),
    9: (4.56, 1.82), 10: (3.82, 1.02), 11: (8.75, 1.74), 12: (4.12, 1.52),
    13: (5.84, 1.65),
}


def md_table(result: BenchResult, paper: dict, paper_cols: List[str]) -> str:
    """Render a BenchResult as a Markdown table with the paper's numbers
    interleaved (``paper[label] = tuple aligned with paper_cols``)."""
    cols = ["param"]
    for c in result.columns[1:]:
        cols.append(f"{c} (ours, s)")
    for c in paper_cols:
        cols.append(f"{c} (paper, s)")
    lines = ["| " + " | ".join(cols) + " |",
             "|" + "---|" * len(cols)]
    for row in result.rows:
        label = row[0]
        cells = [str(label)]
        cells += [f"{v:.4f}" if isinstance(v, float) else str(v)
                  for v in row[1:]]
        paper_row = paper.get(label, ())
        cells += [f"{v:g}" for v in paper_row]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", type=float, default=1.0)
    ap.add_argument("--runs", type=int, default=5)
    ap.add_argument("--out", default="EXPERIMENTS.md")
    ap.add_argument("--profile", action="store_true",
                    help="attach per-access-method metric breakdowns")
    ap.add_argument("--json", metavar="FILE",
                    help="also write all tables (with any profiles) "
                         "as a JSON report")
    ap.add_argument("--diff", nargs=2,
                    metavar=("BASELINE", "CANDIDATE"),
                    help="compare two tix bench --json-out artifacts "
                         "and exit 1 on regressions beyond the "
                         "threshold (skips the report run)")
    ap.add_argument("--diff-threshold", type=float, default=0.10,
                    metavar="T",
                    help="relative-change threshold for --diff "
                         "(default 0.10 = 10%%)")
    args = ap.parse_args(argv)
    if args.diff:
        from repro.bench.artifact import diff_files, render_diff

        diffs, header = diff_files(args.diff[0], args.diff[1],
                                   args.diff_threshold)
        print(header)
        print(render_diff(diffs, args.diff_threshold))
        return 1 if any(d.regression for d in diffs) else 0
    profile = args.profile

    t_start = time.time()
    print(f"building Table 1-3 corpus (scale {args.scale}) …")
    spec123, rows123 = table123_spec(scale=args.scale, n_articles=1200)
    store123 = generate_corpus(spec123)
    store123.index, store123.structure  # build up front

    r1 = run_table1(store123, rows123["table1"], runs=args.runs,
                    profile=profile)
    r2 = run_table2(store123, rows123["table1"], runs=args.runs,
                    profile=profile)
    r3 = run_table3(store123, rows123["table3"], runs=args.runs,
                    profile=profile)

    print("building Table 4 corpus …")
    spec4, rows4 = table4_spec(scale=args.scale, n_articles=400)
    store4 = generate_corpus(spec4)
    r4 = run_table4(store4, rows4, runs=args.runs, profile=profile)

    print("building Table 5 corpus …")
    spec5, rows5 = table5_spec(scale=0.05 * args.scale, n_articles=400)
    store5 = generate_corpus(spec5)
    r5 = run_table5(store5, rows5, runs=args.runs, profile=profile)

    rp = run_pick_experiment(runs=args.runs, profile=profile)

    print("running cache-hierarchy experiment …")
    cache_rows = [r for r in rows123["table1"]
                  if r.label in (20, 200, 1000, 3000, 10000)]
    rc = run_cache_experiment(store123, cache_rows, runs=args.runs)
    print(rc.render())
    rb = run_batch_experiment(store123, cache_rows, runs=min(args.runs, 3))
    print(rb.render())

    if args.json:
        report = {
            "scale": args.scale,
            "runs": args.runs,
            "tables": [r.to_json()
                       for r in (r1, r2, r3, r4, r5, rp, rc, rb)],
        }
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2, sort_keys=True)
        print(f"wrote {args.json}")

    print("running scoring-quality experiment …")
    from repro.workload import (
        build_relevance_workload, score_quality_experiment,
    )

    quality = score_quality_experiment(build_relevance_workload())
    quality_rows = "\n".join(
        f"| {r.scorer_name} | {r.precision_at_10:.2f} | "
        f"{r.average_precision:.2f} | {r.ndcg_at_10:.2f} |"
        for r in quality
    )

    doc = f"""# EXPERIMENTS — paper vs. measured

Generated by `python benchmarks/make_report.py --scale {args.scale}`
on a corpus of {store123.n_elements:,} elements / {store123.n_words:,}
words (Tables 1-3), {store4.n_elements:,} elements (Table 4),
{store5.n_elements:,} elements (Table 5).  Total run time
{time.time() - t_start:.0f}s.

**How to read these numbers.**  The paper ran C++ TIMBER against the
500 MB INEX corpus (18M elements) on 2003 hardware with a cold disk; we
run pure Python against an in-memory synthetic corpus ~200× smaller in
element count, with term frequencies planted at the paper's exact nominal
values (scale {args.scale}).  Absolute seconds are therefore incomparable
by design; what must and does reproduce is the *shape*: which technique
wins, how each scales with the sweep parameter, and where lines cross.

Headline shape checks (asserted programmatically in
`tests/integration/test_bench_shapes.py`):

- **TermJoin wins everywhere.**  In every row of Tables 1-4 TermJoin is
  the fastest full-featured technique, beating Comp1 by
  {r1.cell(10000, 'Comp1') / r1.cell(10000, 'TermJoin'):.0f}× and Comp2
  by {r1.cell(20, 'Comp2') / r1.cell(20, 'TermJoin'):.0f}× at the
  extremes of Table 1 (paper: ~80× and ~28,000× — the Comp2 ratio
  compresses with corpus size since its cost is one full element scan).
- **Comp1 grows steeply with frequency, Comp2 is nearly flat**, and the
  two cross inside the sweep (paper crossover ≈5,500; ours lands lower
  because our element table is ~200× smaller, which lowers Comp2's flat
  scan cost while Comp1's occurrence-driven cost stays at paper volume).
- **Generalized Meet sits between TermJoin and the composites**
  (paper: TermJoin up to 4-8× better; ours
  {r1.cell(10000, 'GenMeet') / r1.cell(10000, 'TermJoin'):.1f}× at
  Table 1's last row).
- **Enhanced TermJoin beats TermJoin under complex scoring**
  ({r2.cell(10000, 'TermJoin') / r2.cell(10000, 'EnhTermJoin'):.1f}× at
  10,000; paper up to 8×): the only difference is reading child counts
  from the structure index instead of navigating.
- **PhraseFinder beats Comp3 on every phrase** (paper up to 9×): checking
  offsets during the intersection avoids Comp3's fetch-and-rescan filter.
- **Pick is linear** in input size over 200→55,000 nodes (paper:
  0.01-1.03 s over the same range).

## Table 1 — two terms, equal frequency, simple scoring

{md_table(r1, PAPER_TABLE1, ["Comp1", "Comp2", "GenMeet", "TermJoin"])}

## Table 2 — two terms, equal frequency, complex scoring

{md_table(r2, PAPER_TABLE2,
          ["Comp1", "Comp2", "GenMeet", "TermJoin", "Enhanced"])}

## Table 3 — term1 fixed at 1,000, term2 varies, complex scoring

{md_table(r3, PAPER_TABLE3,
          ["Comp1", "Comp2", "GenMeet", "TermJoin", "Enhanced"])}

## Table 4 — 2..7 terms at frequency ≈1,500, complex scoring

{md_table(r4, PAPER_TABLE4,
          ["Comp1", "Comp2", "GenMeet", "TermJoin", "Enhanced"])}

## Table 5 — PhraseFinder vs Comp3, 13 two-term phrases

Planted frequencies are the paper's scaled 20× down (its phrase terms
occur up to 146,477 times in INEX); result sizes scale with them, and the
harness reports *measured* result sizes (random planting can split or
coincidentally form a few phrase occurrences).

{md_table(r5, PAPER_TABLE5, ["Comp3", "PhraseFinder"])}

## Cache hierarchy + batch executor (beyond the paper; `repro.perf`)

Not a paper experiment — the paper ran every query cold.  These measure
the serving-workload layers of `repro.perf` on the Table-1 corpus and
query shape (see `docs/performance.md`): the same compilable two-term
scoring query executed cold (parse + compile + execute every call),
warm through the compiled-plan cache, and warm through the result
cache, plus an INEX-style topic batch (each query × 4) sequential-cold
vs. `execute_batch` with a shared cache.

{md_table(rc, {}, [])}

Warm-result speedup at the heaviest row (freq 10,000):
**{rc.cell(10000, 'warm_speedup'):.0f}×** over cold execution.

{md_table(rb, {}, [])}

The batch speedup is cache sharing — duplicate queries are answered
once — not CPU parallelism (pure-Python execution serializes on the
GIL).

## Pick (in-text experiment, §6)

Parent/child redundancy elimination, random scored trees:

{md_table(rp, {}, [])}

Paper: "between 0.01 to 1.03 seconds … input size ranging from 200 nodes
to 55,000 nodes."  The measured column grows linearly with input size,
matching the stack-based single-pass design.

## Scoring quality (the §6.1 accuracy claim, quantified)

The paper asserts the complex scoring function "is more accurate …
[it] makes a better use of XML's structure."  On the relevance-judged
workload of `repro.workload.relevance` — relevant sections are topical
throughout; distractors pack *more* occurrences into one buried
paragraph (the paper's own motivating case) — the metrics are:

| scorer | P@10 | MAP | nDCG@10 |
|---|---|---|---|
{quality_rows}

The simple (count-only) scorer ranks the buried distractors first; the
complex scorer's relevant-children ratio and proximity bonus recover the
planted ground truth.

## Figures 5-8 (exact reproduction)

Not timing experiments: the result *trees and scores* of Figures 5, 6, 7
and 8 and the Example 3.1 walkthrough reproduce exactly from the Figure 1
database — see `tests/integration/test_paper_figures.py`.

## Ablations (see `benchmarks/ablation_*.py`)

- `ablation_stack.py` — TermJoin's stack vs per-occurrence ancestor
  walks into a hash map: the stack wins increasingly with frequency.
- `ablation_childindex.py` — isolates the Enhanced-TermJoin difference
  (child counts from index vs navigation) and shows the navigation
  counters that explain it.
- `ablation_pick_histogram.py` — deriving Pick's relevance threshold
  from the §5.3 score histogram vs an exact sort: O(buckets) vs
  O(n log n) with a bounded, conservative quality difference.
"""

    with open(args.out, "w", encoding="utf-8") as f:
        f.write(doc)
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
