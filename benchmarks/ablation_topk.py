"""Ablation: top-k strategies for the K-Threshold (§5.3).

Three ways to produce the k best-scored elements of a TermJoin result:

- ``sort``: full sort then cut (the naive K-Threshold expansion);
- ``heap``: the bounded-heap TopK operator (O(n log k));
- ``ta``: the Threshold Algorithm over per-term partial-score lists with
  early termination — the [8]/[5] technique; its benefit is visible in
  the *reads* statistic (it touches only a prefix of each list).
"""

import pytest

from repro.access.termjoin import TermJoin
from repro.access.topk import threshold_algorithm
from repro.core.scoring import WeightedCountScorer

K = 10
FREQ = 5500


@pytest.fixture(scope="module")
def scored_results(corpus123):
    store, rows = corpus123
    row = next(r for r in rows["table1"] if r.label == FREQ)
    scorer = WeightedCountScorer([row.terms[0]], [row.terms[1]])
    results = TermJoin(store, scorer).run(list(row.terms))
    # per-term partial-score lists for TA (descending)
    per_term = []
    for term, weight in ((row.terms[0], 0.8), (row.terms[1], 0.6)):
        single = TermJoin(
            store, WeightedCountScorer([term], primary_weight=weight)
        ).run([term])
        pairs = sorted(
            ((r.score, (r.doc_id, r.node_id)) for r in single),
            key=lambda p: -p[0],
        )
        per_term.append(pairs)
    return results, per_term


def topk_by_sort(results):
    return sorted(results, key=lambda r: -r.score)[:K]


def topk_by_heap(results):
    import heapq

    return heapq.nlargest(K, results, key=lambda r: r.score)


def topk_by_ta(per_term):
    top, _reads = threshold_algorithm(per_term, K)
    return top


@pytest.mark.parametrize("variant", ["sort", "heap", "ta"])
def test_topk_strategies(benchmark, scored_results, variant):
    results, per_term = scored_results
    if variant == "sort":
        out = benchmark.pedantic(
            topk_by_sort, args=(results,), rounds=5, iterations=1
        )
    elif variant == "heap":
        out = benchmark.pedantic(
            topk_by_heap, args=(results,), rounds=5, iterations=1
        )
    else:
        out = benchmark.pedantic(
            topk_by_ta, args=(per_term,), rounds=5, iterations=1
        )
    assert len(out) == K


def test_strategies_agree_on_scores(scored_results):
    results, per_term = scored_results
    sort_scores = [round(r.score, 9) for r in topk_by_sort(results)]
    heap_scores = [round(r.score, 9) for r in topk_by_heap(results)]
    ta_scores = [round(s, 9) for s, _item in topk_by_ta(per_term)]
    assert sort_scores == heap_scores == ta_scores


def test_ta_reads_prefix_only(scored_results):
    _results, per_term = scored_results
    _top, reads = threshold_algorithm(per_term, K)
    total = sum(len(lst) for lst in per_term)
    assert reads < total, "TA must stop before exhausting the lists"
