"""Shared benchmark fixtures: full-scale synthetic corpora.

``TIX_BENCH_SCALE`` (default 1.0) scales every planted term frequency;
the paper's nominal frequencies are used verbatim at 1.0.  Corpora are
session-scoped — they are built once and shared by all benchmarks in the
session.
"""

from __future__ import annotations

import os

import pytest

from repro.workload import (
    generate_corpus,
    table123_spec,
    table4_spec,
    table5_spec,
)

SCALE = float(os.environ.get("TIX_BENCH_SCALE", "1.0"))
PROFILE = os.environ.get("TIX_BENCH_PROFILE", "0") not in ("", "0")


def pytest_report_header(config):
    return (
        f"TIX bench scale: {SCALE} (set TIX_BENCH_SCALE to change); "
        f"profile: {'on' if PROFILE else 'off'} (TIX_BENCH_PROFILE=1)"
    )


@pytest.fixture
def profiled(benchmark):
    """Attach a per-access-method metric breakdown to the benchmark.

    With ``TIX_BENCH_PROFILE=1``, calling ``profiled(fn, *args)`` runs
    the workload once more under the observability collector — outside
    the timed rounds, so the reported wall-clock numbers stay clean —
    and stores the breakdown in ``benchmark.extra_info["metrics"]``,
    which ``--benchmark-json`` carries into the report.  Without the
    env var it is a no-op.
    """
    def attach(fn, *args, **kwargs):
        if PROFILE:
            from repro.bench.harness import profiled_run

            benchmark.extra_info["metrics"] = profiled_run(
                lambda: fn(*args, **kwargs)
            )
    return attach


@pytest.fixture(scope="session")
def corpus123():
    """Corpus + sweep rows for Tables 1-3.  1,200 articles ≈ 82k
    elements: large enough that the Comp2 full-element-scan cost
    dominates at low frequencies and the Comp1/Comp2 crossover lands in
    the upper half of the sweep, as in the paper."""
    spec, rows = table123_spec(scale=SCALE, n_articles=1200)
    store = generate_corpus(spec)
    store.index          # build the inverted index up front
    store.structure      # and the structure index
    return store, rows


@pytest.fixture(scope="session")
def corpus4():
    """Corpus + rows for Table 4."""
    spec, rows = table4_spec(scale=SCALE, n_articles=400)
    store = generate_corpus(spec)
    store.index
    store.structure
    return store, rows


@pytest.fixture(scope="session")
def corpus5():
    """Corpus + rows for Table 5 (phrase frequencies scaled 20× down
    from the paper's at SCALE=1.0; see EXPERIMENTS.md)."""
    spec, rows = table5_spec(scale=0.05 * SCALE, n_articles=400)
    store = generate_corpus(spec)
    store.index
    return store, rows
