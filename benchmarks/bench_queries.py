"""End-to-end query benchmarks (not a paper table): the full pipeline —
parse → compile → TermJoin/PhraseJoin scan → rank → materialize — on the
Table-1 corpus, at three selectivities.

Complements the per-access-method tables by showing that the compiled
engine path keeps the access method's advantage end to end, and measures
the evaluator (reference) path on the small example database for
comparison.
"""

import pytest

from repro.exampledata import example_store
from repro.query import parse_query, run_query
from repro.query.compiler import run_compiled

QUERY_TEMPLATE = '''
For $a in document("{doc}")//article/descendant-or-self::*
Score $a using ScoreFooExact($a, {{"{t1}"}}, {{"{t2}"}})
Return <r><score>{{ $a/@score }}</score>{{ $a }}</r>
Sortby(score)
Threshold $a/@score > 0.5 stop after 10
'''


@pytest.mark.parametrize("freq", [100, 1000, 10000])
def test_compiled_pipeline(benchmark, corpus123, freq):
    store, rows = corpus123
    row = next(r for r in rows["table1"] if r.label == freq)
    doc_name = store.document(0).name
    query = parse_query(QUERY_TEMPLATE.format(
        doc=doc_name, t1=row.terms[0], t2=row.terms[1],
    ))

    def run():
        return run_compiled(store, query)

    result = benchmark.pedantic(run, rounds=5, iterations=1)
    assert len(result) <= 10


def test_compiled_faster_than_evaluator_on_small_db(benchmark):
    """The evaluator materializes and scores every binding; the compiled
    plan only touches posting lists.  Even on the 33-element example
    database the compiled path must not be slower by more than 10×
    (constant factors); on real corpora the gap inverts dramatically —
    this bench records the evaluator side."""
    store = example_store()
    query = '''
    For $a in document("articles.xml")//article/descendant-or-self::*
    Score $a using ScoreFooExact($a, {"search"}, {"retrieval"})
    Return <r><score>{ $a/@score }</score>{ $a }</r>
    Sortby(score)
    Threshold $a/@score > 0 stop after 5
    '''
    result = benchmark.pedantic(
        lambda: run_query(store, query), rounds=5, iterations=1
    )
    assert len(result) == 5
