"""Ablation: the stack discipline in TermJoin.

TermJoin's stack lets each ancestor be visited exactly once, with
counters propagated child→parent on pop.  The ablated variant walks the
full ancestor chain of *every* occurrence into a hash map (no stack, no
sharing) — the strategy the composite plans are built on.  The gap grows
with term frequency and nesting depth.
"""

from typing import Dict, List, Sequence, Tuple

import pytest

from repro.access.results import ScoredElement
from repro.access.termjoin import TermJoin
from repro.core.scoring import WeightedCountScorer
from repro.index.inverted import P_DOC, P_NODE
from repro.xmldb.store import XMLStore


class NoStackTermJoin:
    """TermJoin without the stack: per-occurrence ancestor walks into a
    hash map keyed by node."""

    name = "NoStackTermJoin"

    def __init__(self, store: XMLStore, scorer):
        self.store = store
        self.scorer = scorer

    def run(self, terms: Sequence[str]) -> List[ScoredElement]:
        counts: Dict[Tuple[int, int], Dict[str, int]] = {}
        for term in terms:
            for p in self.store.index.postings(term):
                doc = self.store.document(p[P_DOC])
                cur = p[P_NODE]
                while cur != -1:
                    node_counts = counts.setdefault((p[P_DOC], cur), {})
                    node_counts[term] = node_counts.get(term, 0) + 1
                    cur = doc.parents[cur]
        return [
            ScoredElement(d, n, self.scorer.score_from_counts(c))
            for (d, n), c in counts.items()
        ]


FREQS = [500, 3000, 10000]


@pytest.mark.parametrize("freq", FREQS)
@pytest.mark.parametrize("variant", ["stack", "nostack"])
def test_stack_ablation(benchmark, corpus123, variant, freq):
    store, rows = corpus123
    row = next(r for r in rows["table1"] if r.label == freq)
    scorer = WeightedCountScorer([row.terms[0]], [row.terms[1]])
    method = (
        TermJoin(store, scorer) if variant == "stack"
        else NoStackTermJoin(store, scorer)
    )
    result = benchmark.pedantic(
        method.run, args=(list(row.terms),), rounds=5, iterations=1
    )
    assert result


def test_variants_agree(corpus123):
    """Sanity: the ablated variant computes identical scores."""
    store, rows = corpus123
    row = next(r for r in rows["table1"] if r.label == 500)
    scorer = WeightedCountScorer([row.terms[0]], [row.terms[1]])
    a = {(r.doc_id, r.node_id): r.score
         for r in TermJoin(store, scorer).run(list(row.terms))}
    b = {(r.doc_id, r.node_id): r.score
         for r in NoStackTermJoin(store, scorer).run(list(row.terms))}
    assert a == b
