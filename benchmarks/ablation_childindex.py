"""Ablation: child counts from the structure index vs data navigation.

Isolates the single difference between TermJoin and Enhanced TermJoin in
complex-scoring mode (§6.1): where the total-children statistic comes
from.  Also reports the logical navigation counts, which explain the
wall-clock gap mechanically.
"""

import pytest

from repro.access.termjoin import EnhancedTermJoin, TermJoin
from repro.core.scoring import ProximityScorer

FREQS = [1000, 5500, 10000]


@pytest.mark.parametrize("freq", FREQS)
@pytest.mark.parametrize("variant", ["navigate", "index"])
def test_child_count_source(benchmark, corpus123, variant, freq):
    store, rows = corpus123
    row = next(r for r in rows["table1"] if r.label == freq)
    scorer = ProximityScorer(row.terms)
    cls = TermJoin if variant == "navigate" else EnhancedTermJoin
    method = cls(store, scorer, complex_scoring=True)
    result = benchmark.pedantic(
        method.run, args=(list(row.terms),), rounds=5, iterations=1
    )
    assert result


def test_navigation_counter_gap(corpus123):
    """The navigating variant touches the data proportionally to the
    output fan-out; the index variant never navigates."""
    store, rows = corpus123
    row = next(r for r in rows["table1"] if r.label == 1000)
    scorer = ProximityScorer(row.terms)

    store.counters.reset()
    TermJoin(store, scorer, complex_scoring=True).run(list(row.terms))
    navigating = store.counters.navigations

    store.counters.reset()
    EnhancedTermJoin(store, scorer, complex_scoring=True) \
        .run(list(row.terms))
    indexed = store.counters.navigations

    assert navigating > 0
    assert indexed == 0
