"""Table 1: two index terms, equal frequency 20 → 10,000, **simple**
scoring — TermJoin vs Comp1 / Comp2 / Generalized Meet.

Regenerates every row of the paper's Table 1; run with

    pytest benchmarks/bench_table1.py --benchmark-only \
        --benchmark-group-by=param:freq
"""

import pytest

from repro.access.composite import Comp1, Comp2
from repro.access.termjoin import TermJoin
from repro.core.scoring import WeightedCountScorer
from repro.joins.meet import generalized_meet

FREQ_IDS = [20, 100, 200, 300, 500, 1000, 2000, 3000, 5500, 7000, 10000]


def _row(rows, freq):
    return next(r for r in rows["table1"] if r.label == freq)


def _scorer(terms):
    return WeightedCountScorer([terms[0]], list(terms[1:]))


@pytest.mark.parametrize("freq", FREQ_IDS)
def test_termjoin_simple(benchmark, corpus123, profiled, freq):
    store, rows = corpus123
    row = _row(rows, freq)
    method = TermJoin(store, _scorer(row.terms))
    result = benchmark.pedantic(
        method.run, args=(list(row.terms),), rounds=5, iterations=1
    )
    profiled(method.run, list(row.terms))
    assert result  # every planted term has ancestors to score


@pytest.mark.parametrize("freq", FREQ_IDS)
def test_generalized_meet_simple(benchmark, corpus123, profiled, freq):
    store, rows = corpus123
    row = _row(rows, freq)
    scorer = _scorer(row.terms)
    result = benchmark.pedantic(
        generalized_meet, args=(store, list(row.terms), scorer),
        rounds=5, iterations=1,
    )
    profiled(generalized_meet, store, list(row.terms), scorer)
    assert result


@pytest.mark.parametrize("freq", FREQ_IDS)
def test_comp1_simple(benchmark, corpus123, profiled, freq):
    store, rows = corpus123
    row = _row(rows, freq)
    method = Comp1(store, _scorer(row.terms))
    result = benchmark.pedantic(
        method.run, args=(list(row.terms),), rounds=3, iterations=1
    )
    profiled(method.run, list(row.terms))
    assert result


@pytest.mark.parametrize("freq", FREQ_IDS)
def test_comp2_simple(benchmark, corpus123, profiled, freq):
    store, rows = corpus123
    row = _row(rows, freq)
    method = Comp2(store, _scorer(row.terms))
    result = benchmark.pedantic(
        method.run, args=(list(row.terms),), rounds=3, iterations=1
    )
    profiled(method.run, list(row.terms))
    assert result
