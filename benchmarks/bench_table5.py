"""Table 5: PhraseFinder vs Comp3 (intersect-then-refetch filter) on the
paper's 13 two-term phrases.  Frequencies are scaled 20× down from the
paper's (they reach 146k occurrences there); all ratios are preserved."""

import pytest

from repro.access.composite import Comp3
from repro.access.phrasefinder import PhraseFinder

QUERY_IDS = list(range(1, 14))


def _row(rows, query):
    return next(r for r in rows if r.query == query)


@pytest.mark.parametrize("query", QUERY_IDS)
def test_phrasefinder(benchmark, corpus5, profiled, query):
    store, rows = corpus5
    row = _row(rows, query)
    method = PhraseFinder(store)
    result = benchmark.pedantic(
        method.run, args=(list(row.terms),), rounds=5, iterations=1
    )
    profiled(method.run, list(row.terms))
    assert result, "planted phrases must be found"


@pytest.mark.parametrize("query", QUERY_IDS)
def test_comp3(benchmark, corpus5, profiled, query):
    store, rows = corpus5
    row = _row(rows, query)
    method = Comp3(store)
    result = benchmark.pedantic(
        method.run, args=(list(row.terms),), rounds=5, iterations=1
    )
    profiled(method.run, list(row.terms))
    assert result
