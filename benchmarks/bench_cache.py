"""Cache hierarchy + batch executor on the Table-1 workload.

Not a paper table: measures what ``repro.perf`` buys a serving workload
— the same two-term scoring query repeated at each planted frequency —
cold, through the plan cache, and through the result cache, plus a
topic batch with duplicates sequential-cold vs. concurrent-cached.
Run with

    pytest benchmarks/bench_cache.py --benchmark-only \
        --benchmark-group-by=param:freq
"""

import pytest

from repro.bench.cachebench import row_query
from repro.perf import QueryCache, execute_batch
from repro.resilience import NullGuard, run_query_guarded

FREQ_IDS = [20, 200, 1000, 3000, 10000]


def _row(rows, freq):
    return next(r for r in rows["table1"] if r.label == freq)


@pytest.mark.parametrize("freq", FREQ_IDS)
def test_query_cold(benchmark, corpus123, freq):
    store, rows = corpus123
    source = row_query(_row(rows, freq))
    result = benchmark.pedantic(
        run_query_guarded, args=(store, source, NullGuard()),
        rounds=5, iterations=1,
    )
    assert result.results


@pytest.mark.parametrize("freq", FREQ_IDS)
def test_query_warm_plan_cache(benchmark, corpus123, freq):
    store, rows = corpus123
    source = row_query(_row(rows, freq))
    cache = QueryCache(store, results=False)
    cache.run_query(source)  # warm outside the timed rounds
    result = benchmark.pedantic(
        cache.run_query, args=(source,), rounds=5, iterations=1
    )
    assert result
    assert cache.plans.hits >= 5


@pytest.mark.parametrize("freq", FREQ_IDS)
def test_query_warm_result_cache(benchmark, corpus123, freq):
    store, rows = corpus123
    source = row_query(_row(rows, freq))
    cache = QueryCache(store)
    cache.run_query(source)
    result = benchmark.pedantic(
        cache.run_query, args=(source,), rounds=5, iterations=1
    )
    assert result
    assert cache.results.hits >= 5


def test_batch_sequential_cold(benchmark, corpus123):
    store, rows = corpus123
    sources = [row_query(_row(rows, f)) for f in FREQ_IDS] * 4

    def sequential():
        for s in sources:
            run_query_guarded(store, s, NullGuard())

    benchmark.pedantic(sequential, rounds=3, iterations=1)


def test_batch_concurrent_cached(benchmark, corpus123):
    store, rows = corpus123
    sources = [row_query(_row(rows, f)) for f in FREQ_IDS] * 4

    def batched():
        res = execute_batch(store, sources, max_workers=4,
                            cache=QueryCache(store))
        assert res.n_failed == 0
        return res

    benchmark.pedantic(batched, rounds=3, iterations=1)
