"""Unit tests for hardened persistence: checksums, atomic writes,
partial loads, and error wrapping (format version 2)."""

import json
import os

import pytest

from repro.errors import PersistError, TIXError
from repro.exampledata import example_store
from repro.resilience import FaultSpec, injecting
from repro.xmldb.persist import (
    FORMAT_VERSION,
    LoadReport,
    load_store,
    load_store_report,
    save_store,
)


@pytest.fixture()
def saved(tmp_path):
    """An example store saved to disk; returns (store, directory)."""
    store = example_store()
    directory = str(tmp_path / "db")
    save_store(store, directory)
    return store, directory


def _manifest(directory):
    with open(os.path.join(directory, "store.json")) as f:
        return json.load(f)


class TestFormatV2:
    def test_manifest_has_version_and_checksums(self, saved):
        _, directory = saved
        manifest = _manifest(directory)
        assert manifest["format_version"] == FORMAT_VERSION == 2
        for entry in manifest["documents"]:
            assert len(entry["sha256"]) == 64
            path = os.path.join(directory, entry["file"])
            assert os.path.getsize(path) == entry["bytes"]

    def test_no_tmp_files_after_save(self, saved):
        _, directory = saved
        assert not [f for f in os.listdir(directory)
                    if f.endswith(".tmp")]

    def test_v1_manifest_without_checksums_loads(self, saved):
        store, directory = saved
        manifest = _manifest(directory)
        manifest["format_version"] = 1
        for entry in manifest["documents"]:
            del entry["sha256"]
            del entry["bytes"]
        with open(os.path.join(directory, "store.json"), "w") as f:
            json.dump(manifest, f)
        loaded = load_store(directory)
        assert loaded.n_documents == store.n_documents


class TestCorruption:
    def _flip_byte(self, directory):
        """Flip one byte inside the first document file; return its path."""
        entry = _manifest(directory)["documents"][0]
        path = os.path.join(directory, entry["file"])
        data = bytearray(open(path, "rb").read())
        # flip a byte inside text content, keeping the XML well-formed
        i = data.index(b">") + 1
        data[i] ^= 0x01
        with open(path, "wb") as f:
            f.write(data)
        return path

    def test_flipped_byte_raises_persist_error_naming_file(self, saved):
        _, directory = saved
        path = self._flip_byte(directory)
        with pytest.raises(PersistError, match="checksum mismatch") as ei:
            load_store(directory)
        assert path in str(ei.value)
        assert ei.value.path == path

    def test_partial_load_skips_corrupt_doc(self, saved):
        store, directory = saved
        path = self._flip_byte(directory)
        report = load_store_report(directory, partial=True)
        assert isinstance(report, LoadReport)
        assert not report.complete
        assert len(report.skipped) == 1
        assert report.skipped[0].path == path
        assert report.store.n_documents == store.n_documents - 1

    def test_partial_load_skips_missing_doc(self, saved):
        store, directory = saved
        entry = _manifest(directory)["documents"][0]
        os.unlink(os.path.join(directory, entry["file"]))
        report = load_store_report(directory, partial=True)
        assert len(report.skipped) == 1
        assert "missing document" in str(report.skipped[0])
        assert report.store.n_documents == store.n_documents - 1

    def test_persist_error_is_tix_error(self):
        assert issubclass(PersistError, TIXError)


class TestErrorWrapping:
    def test_malformed_entry_wrapped_not_keyerror(self, saved):
        _, directory = saved
        manifest = _manifest(directory)
        manifest["documents"][0] = {"file": "doc00000.xml"}  # no "name"
        with open(os.path.join(directory, "store.json"), "w") as f:
            json.dump(manifest, f)
        with pytest.raises(PersistError, match="malformed manifest entry"):
            load_store(directory)

    def test_documents_not_a_list_wrapped(self, saved):
        _, directory = saved
        with open(os.path.join(directory, "store.json"), "w") as f:
            json.dump({"format_version": 2, "documents": {}}, f)
        with pytest.raises(PersistError, match="not a list"):
            load_store(directory)

    def test_manifest_not_an_object_wrapped(self, tmp_path):
        (tmp_path / "store.json").write_text("[1, 2]")
        with pytest.raises(PersistError, match="not a JSON object"):
            load_store(str(tmp_path))

    def test_unparsable_document_wrapped(self, saved):
        _, directory = saved
        entry = _manifest(directory)["documents"][0]
        path = os.path.join(directory, entry["file"])
        source = "<unclosed>"
        with open(path, "w") as f:
            f.write(source)
        # fix the checksum so the parse (not the digest) is what fails
        manifest = _manifest(directory)
        import hashlib
        manifest["documents"][0]["sha256"] = \
            hashlib.sha256(source.encode()).hexdigest()
        with open(os.path.join(directory, "store.json"), "w") as f:
            json.dump(manifest, f)
        with pytest.raises(PersistError, match="cannot parse") as ei:
            load_store(directory)
        assert ei.value.path == path

    def test_wrapped_errors_chain_cause(self, tmp_path):
        (tmp_path / "store.json").write_text("{broken")
        with pytest.raises(PersistError) as ei:
            load_store(str(tmp_path))
        assert isinstance(ei.value.__cause__, json.JSONDecodeError)


class TestAtomicity:
    def test_failed_save_leaves_previous_manifest(self, saved, tmp_path):
        store, directory = saved
        before = _manifest(directory)
        # every manifest write fails persistently: 3 retry attempts
        spec = FaultSpec("persist.write_manifest", at_calls=(1, 2, 3))
        with injecting([spec]):
            with pytest.raises(PersistError, match="cannot write"):
                save_store(store, directory)
        assert _manifest(directory) == before
        assert not [f for f in os.listdir(directory)
                    if f.endswith(".tmp")]

    def test_failed_replace_cleans_tmp(self, tmp_path):
        store = example_store()
        directory = str(tmp_path / "db")
        spec = FaultSpec("persist.replace", at_calls=(1, 2, 3))
        with injecting([spec]):
            with pytest.raises(PersistError):
                save_store(store, directory)
        assert not [f for f in os.listdir(directory)
                    if f.endswith(".tmp")]

    def test_transient_write_fault_survived_by_retry(self, tmp_path):
        store = example_store()
        directory = str(tmp_path / "db")
        # fail once on the first doc write; the retry must succeed
        spec = FaultSpec("persist.write_doc", at_calls=(1,), times=1)
        with injecting([spec]) as injector:
            save_store(store, directory)
        assert injector.fired.get("persist.write_doc") == 1
        loaded = load_store(directory)
        assert loaded.n_documents == store.n_documents
