"""Unit tests for the cost-based planner stack: the access-method
registry, the selection chain, hint parsing, feedback re-costing, the
bisect structural filter, and the planner surface in EXPLAIN /
plan_stats / metrics."""

import pytest

from repro import obs
from repro.access.registry import (
    ACCESS_METHODS,
    build_score_method,
    method_properties,
    score_methods,
)
from repro.core.scoring import WeightedCountScorer
from repro.engine.base import execute, explain, plan_stats
from repro.errors import PlannerHintError, QueryCompileError
from repro.plan.feedback import FeedbackReport, OpFeedback
from repro.plan.optimizer import (
    CostBasedSelection,
    ForcedSelection,
    HeuristicSelection,
    choose_plan,
    corrections_from_feedback,
    make_selection,
    parse_force_ops,
)
from repro.plan.rules import (
    FILTER_BISECT,
    POINT_FILTER,
    POINT_RANK,
    POINT_SCORE,
    CostConstants,
    QuerySpec,
    decision_points,
)
from repro.query import parse_query
from repro.query.compiler import (
    BisectStructuralFilter,
    StructuralFilter,
    compile_query,
)
from repro.xmldb.builder import DocumentBuilder
from repro.xmldb.store import XMLStore


@pytest.fixture(scope="module")
def store():
    return XMLStore.from_sources({
        "d.xml": (
            "<lib>"
            "<shelf kind='db'><b><t>relational databases</t>"
            "<body>tables and queries</body></b></shelf>"
            "<shelf kind='ir'><b><t>retrieval</t>"
            "<body>ranking queries and scores</body></b></shelf>"
            "</lib>"
        ),
    })


QUERY = '''
For $a in document("d.xml")//shelf/descendant-or-self::*
Score $a using ScoreFooExact($a, {"queries"}, {"ranking"})
Return $a
Sortby(score)
'''

QUERY_TOPK = QUERY + 'Threshold $a/@score > 0 stop after 3'


# -- registry ----------------------------------------------------------


class TestRegistry:
    def test_every_entry_has_required_properties(self):
        for name, props in ACCESS_METHODS.items():
            for key in ("module", "work", "terms", "phrases",
                        "complex_scoring", "cost"):
                assert key in props, f"{name} missing {key!r}"

    def test_method_properties_unknown_raises(self):
        with pytest.raises(KeyError):
            method_properties("NoSuchJoin")

    def test_score_methods_term_mode(self):
        methods = score_methods(phrase_mode=False)
        assert methods[0] == "TermJoin"  # registry order = tie-break
        assert "Comp1" in methods and "Comp2" in methods
        assert "PhraseFinder" not in methods
        assert "PickAccess" not in methods

    def test_score_methods_phrase_mode(self):
        assert score_methods(phrase_mode=True) == ["PhraseJoin"]

    def test_build_score_method(self, store):
        scorer = WeightedCountScorer(["queries"], ["ranking"])
        for name in score_methods(phrase_mode=False):
            method = build_score_method(name, store, scorer)
            assert type(method).__name__ == name
            assert method.run(["queries", "ranking"]) is not None

    def test_build_unknown_method_raises(self, store):
        scorer = WeightedCountScorer(["queries"], [])
        with pytest.raises(KeyError):
            build_score_method("NoSuchJoin", store, scorer)


# -- selections --------------------------------------------------------


SPEC = QuerySpec(terms=["queries", "ranking"], phrase_mode=False,
                 stop_after=3, sortby=True, n_regions=2)


class TestSelections:
    def test_make_selection_unknown_planner(self):
        with pytest.raises(QueryCompileError):
            make_selection("genetic")

    def test_forced_unknown_point(self, store):
        with pytest.raises(PlannerHintError, match="unknown decision"):
            choose_plan(SPEC, store.stats,
                        make_selection("cost",
                                       force_ops={"shuffle": "x"}))

    def test_forced_illegal_option(self, store):
        with pytest.raises(PlannerHintError, match="not a legal"):
            choose_plan(SPEC, store.stats,
                        make_selection("cost",
                                       force_ops={"score": "Pick"}))

    def test_cost_and_heuristic_agree_on_small_store(self, store):
        cost = choose_plan(SPEC, store.stats, CostBasedSelection())
        heur = choose_plan(SPEC, store.stats, HeuristicSelection(),
                           planner="heuristic")
        for point in (POINT_SCORE, POINT_FILTER, POINT_RANK):
            assert cost.chosen(point) == heur.chosen(point)
        assert cost.n_flipped == 0

    def test_chain_order_last_wins(self, store):
        sel = CostBasedSelection().chain_with(
            ForcedSelection({POINT_FILTER: FILTER_BISECT}))
        choices = choose_plan(SPEC, store.stats, sel)
        assert choices.chosen(POINT_FILTER) == FILTER_BISECT
        assert choices.n_forced == 1
        # The forced stage preserves the costed alternatives.
        assert len(choices.choices[POINT_FILTER].alternatives) == 2

    def test_every_alternative_costed(self, store):
        choices = choose_plan(SPEC, store.stats, CostBasedSelection())
        for point in decision_points(SPEC):
            choice = choices.choices[point.point]
            assert [a.op for a in choice.alternatives] == \
                list(point.options)


# -- hint parsing and feedback ----------------------------------------


class TestHintsAndFeedback:
    def test_parse_force_ops(self):
        assert parse_force_ops(["score=Comp2", "filter=bisect"]) == \
            {"score": "Comp2", "filter": "bisect"}

    def test_parse_force_ops_empty(self):
        assert parse_force_ops(None) == {}
        assert parse_force_ops([]) == {}

    @pytest.mark.parametrize("bad", ["score", "=x", "score=", " =y"])
    def test_parse_force_ops_malformed(self, bad):
        with pytest.raises(PlannerHintError):
            parse_force_ops([bad])

    def test_corrections_from_feedback(self):
        report = FeedbackReport(operators=[
            OpFeedback("termjoin-scan", 5, 4.0, 9.0,
                       mean_est_rows=10.0, mean_actual_rows=40.0),
            OpFeedback("structural-filter", 5, 2.0, 3.0,
                       mean_est_rows=100.0, mean_actual_rows=1.0),
            OpFeedback("sort", 2, 1.0, 1.0,
                       mean_est_rows=0.0, mean_actual_rows=5.0),
        ])
        out = corrections_from_feedback(report)
        assert out["termjoin-scan"] == pytest.approx(4.0)
        assert out["structural-filter"] == pytest.approx(0.1)  # clamped
        assert "sort" not in out  # no usable estimate

    def test_corrections_change_costed_rows(self, store):
        plain = choose_plan(SPEC, store.stats, CostBasedSelection())
        boosted = choose_plan(
            SPEC, store.stats,
            make_selection("cost",
                           corrections={"termjoin-scan": 10.0}))
        alt = plain.choices[POINT_SCORE].alternatives[0]
        alt_boost = boosted.choices[POINT_SCORE].alternatives[0]
        assert alt_boost.rows == pytest.approx(alt.rows * 10.0)


# -- rendering and stats ----------------------------------------------


class TestPlannerSurface:
    def test_explain_footer_lists_choices(self, store):
        plan = compile_query(store, parse_query(QUERY))
        text = explain(plan)
        assert "planner: cost" in text
        assert "score = TermJoin" in text
        assert "rejected:" in text

    def test_forced_choice_marked(self, store):
        plan = compile_query(store, parse_query(QUERY),
                             force_ops={"score": "Comp2"})
        text = explain(plan)
        assert "score = Comp2" in text
        assert "source=forced" in text and "*flip*" in text

    def test_plan_stats_carries_planner_key(self, store):
        plan = compile_query(store, parse_query(QUERY_TOPK))
        execute(plan)
        stats = plan_stats(plan)
        planner = stats["planner"]
        assert planner["planner"] == "cost"
        assert {c["point"] for c in planner["choices"]} == \
            {"score", "filter", "rank"}
        # Children never carry the key; only the root does.
        assert all("planner" not in c for c in stats["children"])

    def test_heuristic_footer_named(self, store):
        plan = compile_query(store, parse_query(QUERY),
                             planner="heuristic")
        assert "planner: heuristic" in explain(plan)

    def test_planner_metrics_emitted(self, store):
        with obs.collecting() as col:
            compile_query(store, parse_query(QUERY),
                          force_ops={"filter": "bisect"})
        snap = col.metrics.snapshot()
        assert snap["planner.plans"] == 1
        assert snap["planner.decisions"] == 2  # score + filter
        assert snap["planner.forced"] == 1
        assert snap["planner.flips"] == 1

    def test_calibrated_constants_from_measured_plan(self, store):
        plan = compile_query(store, parse_query(QUERY))
        with obs.collecting():
            execute(plan)
        constants = CostConstants.calibrated_from(plan)
        assert constants.posting == 1.0
        assert 0.1 <= constants.emit <= 100.0

    def test_calibrated_constants_fall_back_without_timings(self, store):
        plan = compile_query(store, parse_query(QUERY))
        assert CostConstants.calibrated_from(plan) == CostConstants()


# -- bisect structural filter -----------------------------------------


def _region_store():
    """One document with nested and overlapping-looking regions: the
    <outer> region fully contains an <inner> region."""
    b = DocumentBuilder()
    b.start_element("root")
    for _ in range(5):
        b.start_element("outer")
        b.start_element("inner")
        b.text("red green")
        b.end_element()
        b.text("blue")
        b.end_element()
    b.end_element()
    store = XMLStore()
    store.add_document(b.finish("r.xml"))
    return store


class TestBisectFilter:
    @pytest.mark.parametrize("tag", ["outer", "inner", "root"])
    def test_matches_linear_filter(self, tag):
        store = _region_store()
        query = parse_query(
            f'For $x in document("r.xml")//{tag}'
            f'/descendant-or-self::*\n'
            f'Score $x using ScoreFooExact($x, {{"red"}})\n'
            f'Return $x\nSortby(score)'
        )
        linear = compile_query(store, query, planner="heuristic")
        bisected = compile_query(store, query,
                                 force_ops={"filter": "bisect"})
        assert any(isinstance(op, BisectStructuralFilter)
                   for op in _walk(bisected))
        assert not any(isinstance(op, BisectStructuralFilter)
                       for op in _walk(linear))
        res_l = execute(linear)
        res_b = execute(bisected)
        assert sorted((t.root.source, t.score) for t in res_l) == \
            sorted((t.root.source, t.score) for t in res_b)
        assert res_l, "planted terms must match"

    def test_unknown_doc_never_matches(self):
        store = _region_store()
        doc = store.document(0)
        regions = [(0, doc.starts[1], doc.ends[1])]
        filt = BisectStructuralFilter(_NullOp(), store, regions)
        assert not filt._match(99, 0)


class _NullOp(StructuralFilter.__mro__[1]):  # engine Operator base
    def _next(self):
        return None


def _walk(op):
    yield op
    for child in op.children:
        for sub in _walk(child):
            yield sub
