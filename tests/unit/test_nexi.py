"""Unit tests for the NEXI front end (parser + evaluator)."""

import pytest

from repro.errors import QuerySyntaxError
from repro.exampledata import example_store
from repro.nexi import (
    AboutClause,
    BoolOp,
    NexiStep,
    parse_nexi,
    run_nexi,
)


@pytest.fixture(scope="module")
def store():
    return example_store()


class TestParser:
    def test_content_only(self):
        q = parse_nexi('"search engine" ranking internet')
        assert len(q.steps) == 1
        assert q.steps[0].tag == "*"
        about = q.steps[0].predicate
        assert isinstance(about, AboutClause)
        assert about.phrases == ("search engine", "ranking", "internet")
        assert about.relative == ()

    def test_co_keywords_are_terms(self):
        q = parse_nexi("war and peace")
        assert q.steps[0].predicate.phrases == ("war", "and", "peace")

    def test_simple_cas(self):
        q = parse_nexi('//article[about(., "search engine")]')
        (step,) = q.steps
        assert step.tag == "article"
        assert step.predicate.relative == ()

    def test_relative_path(self):
        q = parse_nexi('//article[about(.//sec//p, xml)]')
        assert q.steps[0].predicate.relative == ("sec", "p")

    def test_multi_step_path(self):
        q = parse_nexi('//article//sec[about(., xml)]')
        assert [s.tag for s in q.steps] == ["article", "sec"]
        assert q.steps[0].predicate is None
        assert q.steps[1].predicate is not None

    def test_wildcard_step(self):
        q = parse_nexi('//article//*[about(., xml)]')
        assert q.steps[1].tag == "*"

    def test_and_combination(self):
        q = parse_nexi(
            '//article[about(.//t, apple) and about(.//b, pie)]'
        )
        pred = q.steps[0].predicate
        assert isinstance(pred, BoolOp) and pred.op == "and"
        assert len(pred.operands) == 2

    def test_or_combination(self):
        q = parse_nexi('//a[about(., x) or about(., y)]')
        assert q.steps[0].predicate.op == "or"

    def test_mixed_needs_parens(self):
        with pytest.raises(QuerySyntaxError, match="parentheses"):
            parse_nexi('//a[about(., x) and about(., y) or about(., z)]')
        q = parse_nexi(
            '//a[about(., x) and (about(., y) or about(., z))]'
        )
        assert q.steps[0].predicate.op == "and"

    @pytest.mark.parametrize("bad", [
        "", "//", "//a[about(., )]", "//a[about(x, y)]",
        "//a[about(., x)", "//a[]", "//a[about(., x) nonsense]",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse_nexi(bad)


class TestEvaluator:
    def test_cas_finds_relevant_sections(self, store):
        hits = run_nexi(
            store, '//article//section[about(., "search engine")]'
        )
        doc = store.document("articles.xml")
        tags = [doc.tags[h.node_id] for h in hits]
        assert tags and set(tags) == {"section"}
        assert all(h.score > 0 for h in hits)

    def test_co_ranks_article_first(self, store):
        hits = run_nexi(
            store,
            '"search engine" internet "information retrieval"',
            top_k=3,
        )
        doc = store.document("articles.xml")
        assert doc.tags[hits[0].node_id] == "article"
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_outer_predicate_contributes_to_target_score(self, store):
        alone = run_nexi(store, '//p[about(., "search engine")]')
        with_ctx = run_nexi(
            store,
            '//article[about(.//section-title, retrieval)]'
            '//p[about(., "search engine")]',
        )
        a = {h.node_id: h.score for h in alone}
        w = {h.node_id: h.score for h in with_ctx}
        assert w.keys() <= a.keys()
        for nid in w:
            assert w[nid] > a[nid]  # article-level about adds score

    def test_and_zeroes_when_one_side_missing(self, store):
        hits = run_nexi(
            store,
            '//section[about(., "search engine") and about(., zzz)]',
        )
        assert hits == []

    def test_or_takes_best_side(self, store):
        hits = run_nexi(
            store,
            '//section[about(., "search engine") or about(., zzz)]',
        )
        assert hits
        both = run_nexi(store, '//section[about(., "search engine")]')
        assert {h.node_id for h in hits} == {h.node_id for h in both}

    def test_structural_only(self, store):
        hits = run_nexi(store, "//article//section")
        assert len(hits) == 3
        assert all(h.score == 0.0 for h in hits)

    def test_top_k(self, store):
        hits = run_nexi(store, 'search retrieval internet', top_k=2)
        assert len(hits) == 2

    def test_no_matches(self, store):
        assert run_nexi(store, '//nosuchtag[about(., x)]') == []

    def test_cross_document(self, store):
        hits = run_nexi(store, '//review[about(., technologies)]')
        doc = store.document("reviews.xml")
        assert {doc.tags[h.node_id] for h in hits} == {"review"}
        assert all(h.doc_id == 1 for h in hits)
