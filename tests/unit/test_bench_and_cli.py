"""Unit tests for the bench harness and the CLI."""

import pytest

from repro.bench.harness import BenchResult, render_table, timed_trimmed_mean
from repro.cli import main


class TestTimedTrimmedMean:
    def test_returns_positive(self):
        t = timed_trimmed_mean(lambda: sum(range(1000)), runs=5)
        assert t > 0

    def test_single_run(self):
        t = timed_trimmed_mean(lambda: None, runs=1)
        assert t >= 0

    def test_calls_fn_runs_times(self):
        calls = []
        timed_trimmed_mean(lambda: calls.append(1), runs=4)
        assert len(calls) == 4


class TestBenchResult:
    def make(self):
        r = BenchResult("T", ["freq", "A", "B"])
        r.add_row(20, 0.5, 1.0)
        r.add_row(100, 1.5, 2.0)
        return r

    def test_cell(self):
        r = self.make()
        assert r.cell(20, "A") == 0.5
        assert r.cell(100, "B") == 2.0
        with pytest.raises(KeyError):
            r.cell(999, "A")

    def test_column(self):
        assert self.make().column("A") == [0.5, 1.5]

    def test_render_contains_rows(self):
        text = self.make().render()
        assert "T" in text and "freq" in text
        assert "0.50" in text and "100" in text

    def test_notes_rendered(self):
        r = self.make()
        r.notes.append("hello note")
        assert "hello note" in r.render()

    def test_render_formats(self):
        text = render_table("x", ["c"], [[1234.5678], [0.0001234]])
        assert "1234.6" in text
        assert "0.0001" in text


class TestCLI:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out and "Figure 8" in out
        assert "chapter" in out

    def test_query_from_args(self, tmp_path, capsys):
        doc = tmp_path / "a.xml"
        doc.write_text("<a><b>hello there</b></a>")
        rc = main([
            "query",
            "--doc", f"a.xml={doc}",
            "-q", 'For $x in document("a.xml")//b Return $x',
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 results" in out and "hello" in out

    def test_query_from_file(self, tmp_path, capsys):
        doc = tmp_path / "a.xml"
        doc.write_text("<a><b>hi</b></a>")
        qf = tmp_path / "q.xq"
        qf.write_text('For $x in document("a.xml")//b Return $x')
        assert main(["query", "--doc", f"a.xml={doc}", "-f", str(qf)]) == 0

    def test_query_requires_source(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["query"])

    def test_bad_doc_spec(self):
        with pytest.raises(SystemExit):
            main(["query", "--doc", "nopath", "-q", "For $a in $b Return $a"])

    EXPLAINABLE = (
        'For $x in document("a.xml")//a/descendant-or-self::* '
        'Score $x using ScoreFooExact($x, {"queries"}) '
        'Return $x Sortby(score)'
    )

    def test_explain(self, tmp_path, capsys):
        doc = tmp_path / "a.xml"
        doc.write_text("<a><b>hello queries</b></a>")
        rc = main([
            "explain", "--doc", f"a.xml={doc}", "-q", self.EXPLAINABLE,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "termjoin-scan" in out
        assert "(est_rows=1)" in out  # 'queries' appears once

    def test_explain_analyze(self, tmp_path, capsys):
        doc = tmp_path / "a.xml"
        doc.write_text("<a><b>hello queries</b></a>")
        rc = main([
            "explain", "--doc", f"a.xml={doc}", "-q", self.EXPLAINABLE,
            "--analyze",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "est_rows=" in out and "q_error=" in out
        assert "time=" in out

    def test_explain_json(self, tmp_path, capsys):
        import json as _json

        doc = tmp_path / "a.xml"
        doc.write_text("<a><b>hello queries</b></a>")
        rc = main([
            "explain", "--doc", f"a.xml={doc}", "-q", self.EXPLAINABLE,
            "--analyze", "--json",
        ])
        assert rc == 0
        tree = _json.loads(capsys.readouterr().out)
        assert tree["est_rows"] is not None
        assert tree["q_error"] >= 1.0
        assert tree["children"]

    def test_stats_serves_from_catalog(self, tmp_path, capsys):
        doc = tmp_path / "a.xml"
        doc.write_text("<a><b>hello hello queries</b></a>")
        assert main(["stats", "--doc", f"a.xml={doc}"]) == 0
        out = capsys.readouterr().out
        assert "hello                2" in out
        assert "avg depth" in out

    def test_feedback_cli(self, tmp_path, capsys):
        import json as _json

        log = tmp_path / "audit.jsonl"
        log.write_text(_json.dumps({
            "v": 2, "query_sha256": "ab", "ops": [
                {"operator": "sort", "rows": 2, "est_rows": 8.0,
                 "q_error": 4.0, "time_ms": 0.1},
            ],
        }) + "\n")
        assert main(["feedback", str(log)]) == 0
        out = capsys.readouterr().out
        assert "worst-misestimated operators" in out and "sort" in out
        assert main(["feedback", str(log), "--json"]) == 0
        report = _json.loads(capsys.readouterr().out)
        assert report["operators"][0]["median_qerror"] == 4.0

    def test_query_planner_heuristic(self, tmp_path, capsys):
        doc = tmp_path / "a.xml"
        doc.write_text("<a><b>hello queries</b></a>")
        rc = main([
            "query", "--doc", f"a.xml={doc}", "-q", self.EXPLAINABLE,
            "--planner", "heuristic",
        ])
        assert rc == 0
        assert "results" in capsys.readouterr().out

    def test_query_force_op_matches_default(self, tmp_path, capsys):
        doc = tmp_path / "a.xml"
        doc.write_text("<a><b>hello queries</b></a>")
        assert main([
            "query", "--doc", f"a.xml={doc}", "-q", self.EXPLAINABLE,
        ]) == 0
        plain = capsys.readouterr().out
        assert main([
            "query", "--doc", f"a.xml={doc}", "-q", self.EXPLAINABLE,
            "--force-op", "score=Comp2",
        ]) == 0
        forced = capsys.readouterr().out
        assert forced == plain  # same answer, different physical plan

    def test_query_bad_force_op_is_rc2(self, tmp_path, capsys):
        doc = tmp_path / "a.xml"
        doc.write_text("<a><b>hello queries</b></a>")
        rc = main([
            "query", "--doc", f"a.xml={doc}", "-q", self.EXPLAINABLE,
            "--force-op", "score=Nope",
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "planner:" in err and "not a legal option" in err

    def test_query_unknown_decision_point_is_rc2(self, tmp_path, capsys):
        doc = tmp_path / "a.xml"
        doc.write_text("<a><b>hello queries</b></a>")
        rc = main([
            "query", "--doc", f"a.xml={doc}", "-q", self.EXPLAINABLE,
            "--force-op", "rank=topk",
        ])
        assert rc == 2
        assert "unknown decision point" in capsys.readouterr().err

    def test_explain_planner_footer_and_force(self, tmp_path, capsys):
        doc = tmp_path / "a.xml"
        doc.write_text("<a><b>hello queries</b></a>")
        assert main([
            "explain", "--doc", f"a.xml={doc}", "-q", self.EXPLAINABLE,
        ]) == 0
        out = capsys.readouterr().out
        assert "planner:" in out and "rejected" in out
        assert main([
            "explain", "--doc", f"a.xml={doc}", "-q", self.EXPLAINABLE,
            "--force-op", "score=Comp2",
        ]) == 0
        forced = capsys.readouterr().out
        assert "source=forced" in forced

    AUDIT_RECORD = {
        "v": 2, "query_sha256": "ab", "ops": [
            {"operator": "termjoin-scan", "rows": 2, "est_rows": 8.0,
             "q_error": 4.0, "time_ms": 0.1},
        ],
    }

    def test_query_feedback_flag(self, tmp_path, capsys):
        import json as _json

        doc = tmp_path / "a.xml"
        doc.write_text("<a><b>hello queries</b></a>")
        log = tmp_path / "audit.jsonl"
        log.write_text(_json.dumps(self.AUDIT_RECORD) + "\n")
        rc = main([
            "query", "--doc", f"a.xml={doc}", "-q", self.EXPLAINABLE,
            "--feedback", str(log),
        ])
        assert rc == 0
        assert "results" in capsys.readouterr().out

    def test_feedback_corrections_json(self, tmp_path, capsys):
        import json as _json

        log = tmp_path / "audit.jsonl"
        log.write_text(_json.dumps(self.AUDIT_RECORD) + "\n")
        assert main(["feedback", str(log), "--corrections"]) == 0
        factors = _json.loads(capsys.readouterr().out)
        assert factors  # est 8 vs actual 2 -> a real correction
        assert all(0.1 <= v <= 10.0 for v in factors.values())

    def test_bench_planner_cli(self, tmp_path, capsys):
        import json as _json

        out_path = tmp_path / "planner_bench.json"
        rc = main([
            "bench", "planner", "--scale", "0.1", "--runs", "1",
            "--json-out", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "planner" in out.lower()
        payload = _json.loads(out_path.read_text())
        assert payload["table"] == "planner"
        assert payload["result"]["rows"]

    def test_bench_pick_small(self, capsys, monkeypatch):
        import repro.cli as cli_mod
        import repro.workload.benchspec as bs

        monkeypatch.setattr(bs, "PICK_INPUT_SIZES", [100, 200])
        # run through the bench dispatch with the patched sizes
        from repro.bench import run_pick_experiment

        res = run_pick_experiment(sizes=[100, 200], runs=1)
        out = capsys.readouterr().out
        assert "Pick experiment" in out
        assert len(res.rows) == 2
