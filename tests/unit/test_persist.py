"""Unit tests for store persistence (save/load round trips)."""

import json
import os

import pytest

from repro.errors import TIXError
from repro.exampledata import example_store
from repro.xmldb.persist import FORMAT_VERSION, load_store, save_store
from repro.xmldb.store import XMLStore


class TestRoundTrip:
    def test_example_store(self, tmp_path):
        original = example_store()
        save_store(original, str(tmp_path / "db"))
        loaded = load_store(str(tmp_path / "db"))
        assert loaded.n_documents == original.n_documents
        for a, b in zip(original.documents(), loaded.documents()):
            assert a.name == b.name
            assert a.tags == b.tags
            assert a.starts == b.starts
            assert a.ends == b.ends
            assert a.parents == b.parents
            assert a.word_terms == b.word_terms
            assert a.word_offset == b.word_offset
            assert a.attrs == b.attrs

    def test_queries_identical_after_reload(self, tmp_path):
        from repro.query import run_query

        q = '''
        For $a in document("articles.xml")//article/descendant-or-self::*
        Score $a using ScoreFoo($a, {"search engine"}, {"internet"})
        Return <r><score>{ $a/@score }</score></r>
        Sortby(score)
        Threshold $a/@score > 0 stop after 5
        '''
        original = example_store()
        save_store(original, str(tmp_path / "db"))
        loaded = load_store(str(tmp_path / "db"))
        assert [t.score for t in run_query(original, q)] == \
            [t.score for t in run_query(loaded, q)]

    def test_synthetic_corpus_roundtrip(self, tmp_path, small_corpus):
        save_store(small_corpus, str(tmp_path / "db"))
        loaded = load_store(str(tmp_path / "db"))
        assert loaded.index.frequency("alpha") == \
            small_corpus.index.frequency("alpha")
        assert loaded.n_elements == small_corpus.n_elements

    def test_save_creates_directory(self, tmp_path):
        target = tmp_path / "deep" / "nested"
        save_store(example_store(), str(target))
        assert (target / "store.json").exists()


class TestErrors:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(TIXError, match="manifest"):
            load_store(str(tmp_path))

    def test_corrupt_manifest(self, tmp_path):
        (tmp_path / "store.json").write_text("{not json")
        with pytest.raises(TIXError, match="corrupt"):
            load_store(str(tmp_path))

    def test_wrong_version(self, tmp_path):
        (tmp_path / "store.json").write_text(json.dumps({
            "format_version": FORMAT_VERSION + 1, "documents": [],
        }))
        with pytest.raises(TIXError, match="version"):
            load_store(str(tmp_path))

    def test_missing_document_file(self, tmp_path):
        (tmp_path / "store.json").write_text(json.dumps({
            "format_version": FORMAT_VERSION,
            "documents": [{"name": "a.xml", "file": "gone.xml"}],
        }))
        with pytest.raises(TIXError, match="missing document"):
            load_store(str(tmp_path))


class TestCLIIntegration:
    def test_save_then_query(self, tmp_path, capsys):
        from repro.cli import main

        doc = tmp_path / "a.xml"
        doc.write_text("<a><b>hello world</b></a>")
        db = tmp_path / "db"
        assert main(["save", str(db), "--doc", f"a.xml={doc}"]) == 0
        capsys.readouterr()
        rc = main([
            "query", "--store", str(db),
            "-q", 'For $x in document("a.xml")//b Return $x',
        ])
        assert rc == 0
        assert "hello" in capsys.readouterr().out

    def test_stats_command(self, tmp_path, capsys):
        from repro.cli import main

        doc = tmp_path / "a.xml"
        doc.write_text("<a><b>hello hello world</b></a>")
        assert main(["stats", "--doc", f"a.xml={doc}"]) == 0
        out = capsys.readouterr().out
        assert "vocabulary" in out
        assert "hello" in out
