"""Unit tests for tokenization and XML escaping."""

from repro.xmldb.text import (
    escape_attr,
    escape_text,
    tokenize_phrase,
    tokenize_text,
    tokenize_with_spans,
)


class TestTokenizeText:
    def test_basic_lowercasing(self):
        assert tokenize_text("Search Engine") == ["search", "engine"]

    def test_punctuation_is_separator(self):
        assert tokenize_text("a,b;c.d") == ["a", "b", "c", "d"]

    def test_digits_kept(self):
        assert tokenize_text("2nd ed. 1983") == ["2nd", "ed", "1983"]

    def test_empty_string(self):
        assert tokenize_text("") == []

    def test_whitespace_only(self):
        assert tokenize_text("  \t\n ") == []

    def test_ellipsis_yields_nothing(self):
        assert tokenize_text("...") == []

    def test_unicode_symbols_are_separators(self):
        assert tokenize_text("naïve") == ["na", "ve"]

    def test_hyphenated_words_split(self):
        assert tokenize_text("e-mail") == ["e", "mail"]


class TestTokenizeWithSpans:
    def test_spans_point_at_source(self):
        text = "Big CATS run"
        spans = tokenize_with_spans(text)
        assert [t for t, _s, _e in spans] == ["big", "cats", "run"]
        for term, s, e in spans:
            assert text[s:e].lower() == term

    def test_phrase_matches_document_tokenization(self):
        assert tokenize_phrase("Search Engine") == tokenize_text(
            "Search Engine"
        )


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b&c>d") == "a&lt;b&amp;c&gt;d"

    def test_attr_escapes_quotes(self):
        assert escape_attr('say "hi" & bye') == "say &quot;hi&quot; &amp; bye"

    def test_plain_text_unchanged(self):
        assert escape_text("hello world") == "hello world"
