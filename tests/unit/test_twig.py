"""Unit tests for the holistic twig join (PathStack + merge)."""

import pytest

from repro.joins.twig import TwigNode, naive_twig_join, path_stack, twig_join
from repro.xmldb.store import XMLStore


def norm(matches):
    return sorted(tuple(sorted(m.items())) for m in matches)


@pytest.fixture()
def store():
    return XMLStore.from_sources({
        "d.xml": (
            "<a>"
            "<b><c>x</c><d>y</d></b>"
            "<b><e><c>z</c></e></b>"
            "<c>outside</c>"
            "</a>"
        ),
    })


class TestTwigNode:
    def test_paths_of_linear(self):
        r = TwigNode("$1", "a")
        b = r.add_child(TwigNode("$2", "b"))
        b.add_child(TwigNode("$3", "c"))
        assert [[q.label for q in p] for p in r.paths()] == \
            [["$1", "$2", "$3"]]

    def test_paths_of_branching(self):
        r = TwigNode("$1", "a")
        r.add_child(TwigNode("$2", "b"))
        r.add_child(TwigNode("$3", "c"))
        assert [[q.label for q in p] for p in r.paths()] == \
            [["$1", "$2"], ["$1", "$3"]]

    def test_nodes_preorder(self):
        r = TwigNode("$1", "a")
        b = r.add_child(TwigNode("$2", "b"))
        b.add_child(TwigNode("$3", "c"))
        r.add_child(TwigNode("$4", "d"))
        assert [q.label for q in r.nodes()] == ["$1", "$2", "$3", "$4"]


class TestPathStack:
    def test_two_level_path(self, store):
        r = TwigNode("$1", "b")
        r.add_child(TwigNode("$2", "c"))
        got = path_stack(store, r.nodes())
        assert norm(got) == norm(naive_twig_join(store, r))
        assert len(got) == 2  # b1//c1, b2//c2 (outside c has no b anc)

    def test_three_level_path(self, store):
        r = TwigNode("$1", "a")
        b = r.add_child(TwigNode("$2", "b"))
        b.add_child(TwigNode("$3", "c"))
        got = path_stack(store, r.nodes())
        assert norm(got) == norm(naive_twig_join(store, r))

    def test_single_node_path(self, store):
        r = TwigNode("$1", "c")
        got = path_stack(store, [r])
        assert len(got) == 3

    def test_no_matches(self, store):
        r = TwigNode("$1", "zzz")
        r.add_child(TwigNode("$2", "c"))
        assert path_stack(store, r.nodes()) == []

    def test_nested_same_tag(self):
        store = XMLStore.from_sources({
            "n.xml": "<a><a><b>x</b></a></a>",
        })
        r = TwigNode("$1", "a")
        r.add_child(TwigNode("$2", "b"))
        got = path_stack(store, r.nodes())
        # both a's are ancestors of b
        assert len(got) == 2


class TestTwigJoin:
    def test_branching_twig(self, store):
        r = TwigNode("$1", "b")
        r.add_child(TwigNode("$2", "c"))
        r.add_child(TwigNode("$3", "d"))
        got = twig_join(store, r)
        assert norm(got) == norm(naive_twig_join(store, r))
        assert len(got) == 1  # only the first b has both c and d

    def test_deep_branching(self, store):
        r = TwigNode("$1", "a")
        r.add_child(TwigNode("$2", "d"))
        e = r.add_child(TwigNode("$3", "e"))
        e.add_child(TwigNode("$4", "c"))
        got = twig_join(store, r)
        assert norm(got) == norm(naive_twig_join(store, r))

    def test_single_node_twig(self, store):
        r = TwigNode("$1", "b")
        assert len(twig_join(store, r)) == 2

    def test_empty_branch_kills_match(self, store):
        r = TwigNode("$1", "b")
        r.add_child(TwigNode("$2", "c"))
        r.add_child(TwigNode("$3", "zzz"))
        assert twig_join(store, r) == []

    def test_cross_document(self):
        store = XMLStore.from_sources({
            "one.xml": "<a><b>x</b></a>",
            "two.xml": "<a><b>y</b><b>z</b></a>",
        })
        r = TwigNode("$1", "a")
        r.add_child(TwigNode("$2", "b"))
        got = twig_join(store, r)
        assert len(got) == 3
        docs = {m["$1"][0] for m in got}
        assert docs == {0, 1}
        for m in got:
            assert m["$1"][0] == m["$2"][0]  # never joins across docs
