"""Unit tests for XMLStore, AccessCounters, statistics, histograms."""

import pytest

from repro.errors import DocumentNotFoundError
from repro.xmldb.stats import ScoreHistogram
from repro.xmldb.store import XMLStore


@pytest.fixture()
def two_doc_store():
    return XMLStore.from_sources({
        "a.xml": "<a><b>alpha beta</b><b>alpha</b></a>",
        "b.xml": "<x><y>beta gamma</y></x>",
    })


class TestStore:
    def test_lookup_by_name_and_id(self, two_doc_store):
        assert two_doc_store.document("a.xml").doc_id == 0
        assert two_doc_store.document(1).name == "b.xml"

    def test_missing_document(self, two_doc_store):
        with pytest.raises(DocumentNotFoundError):
            two_doc_store.document("nope.xml")
        with pytest.raises(DocumentNotFoundError):
            two_doc_store.document(7)

    def test_contains(self, two_doc_store):
        assert "a.xml" in two_doc_store
        assert "z.xml" not in two_doc_store

    def test_counts(self, two_doc_store):
        assert two_doc_store.n_documents == 2
        assert two_doc_store.n_elements == 5
        assert two_doc_store.n_words == 5

    def test_duplicate_name_rejected(self, two_doc_store):
        with pytest.raises(ValueError):
            two_doc_store.load("a.xml", "<z/>")

    def test_index_invalidated_on_load(self, two_doc_store):
        assert two_doc_store.index.frequency("alpha") == 2
        two_doc_store.load("c.xml", "<c>alpha</c>")
        assert two_doc_store.index.frequency("alpha") == 3

    def test_counters_reset_and_snapshot(self, two_doc_store):
        c = two_doc_store.counters
        c.postings_read += 5
        c.navigations += 2
        snap = c.snapshot()
        assert snap["postings_read"] == 5
        c.reset()
        assert c.snapshot()["postings_read"] == 0


class TestStatistics:
    def test_term_frequency(self, two_doc_store):
        stats = two_doc_store.stats
        assert stats.frequency("alpha") == 2
        assert stats.frequency("beta") == 2
        assert stats.frequency("missing") == 0

    def test_tag_counts(self, two_doc_store):
        assert two_doc_store.stats.tag_counts["b"] == 2

    def test_fanout_and_depth(self, two_doc_store):
        stats = two_doc_store.stats
        assert stats.max_fanout == 2
        assert stats.max_depth == 1

    def test_terms_with_frequency(self, two_doc_store):
        close = two_doc_store.stats.terms_with_frequency(2, tolerance=0.5)
        assert "alpha" in close and "beta" in close


class TestScoreHistogram:
    def test_threshold_for_top_fraction(self):
        scores = [float(i) for i in range(100)]
        hist = ScoreHistogram(scores, n_buckets=10)
        t = hist.threshold_for_top_fraction(0.2)
        # At least 20% of scores are >= t, and t is not absurdly low.
        assert sum(1 for s in scores if s >= t) >= 20
        assert t >= 60.0

    def test_count_at_least(self):
        hist = ScoreHistogram([1.0] * 50 + [9.0] * 50, n_buckets=8)
        assert hist.count_at_least(5.0) == 50
        assert hist.count_at_least(0.0) == 100

    def test_empty_histogram(self):
        hist = ScoreHistogram([])
        assert hist.threshold_for_top_fraction(0.5) == 0.0
        assert hist.count_at_least(1.0) == 0

    def test_single_value(self):
        hist = ScoreHistogram([3.0, 3.0])
        assert hist.count_at_least(3.0) == 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ScoreHistogram([1.0], n_buckets=0)
        with pytest.raises(ValueError):
            ScoreHistogram([1.0]).threshold_for_top_fraction(0.0)

    def test_bucket_bounds_cover_range(self):
        hist = ScoreHistogram([0.0, 10.0], n_buckets=5)
        lo0, _ = hist.bucket_bounds(0)
        _, hi4 = hist.bucket_bounds(4)
        assert lo0 == 0.0 and hi4 == 10.0
