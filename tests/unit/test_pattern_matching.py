"""Unit tests for scored pattern trees and embedding enumeration."""

import pytest

from repro.core.matching import find_embeddings, match_exists
from repro.core.pattern import (
    Combine,
    EdgeType,
    FromLabel,
    JoinScore,
    PatternNode,
    PhraseScore,
    ScoredPatternTree,
)
from repro.core.scoring import WeightedCountScorer
from repro.core.trees import tree_from_document
from repro.errors import PatternError
from repro.xmldb.parser import parse_document


@pytest.fixture()
def tree():
    return tree_from_document(parse_document(
        "<a><b><c>hit</c></b><b><d><c>miss</c></d></b></a>"
    ))


class TestPatternConstruction:
    def test_duplicate_label_rejected(self):
        p1 = PatternNode("$1")
        p1.add_child(PatternNode("$1"), EdgeType.PC)
        with pytest.raises(PatternError, match="duplicate"):
            ScoredPatternTree(p1)

    def test_primary_must_be_tree_node(self):
        p1 = PatternNode("$1")
        scorer = WeightedCountScorer(["x"])
        with pytest.raises(PatternError):
            ScoredPatternTree(p1, scoring={"$9": PhraseScore(scorer)})

    def test_fromlabel_must_reference_scored_label(self):
        p1 = PatternNode("$1")
        with pytest.raises(PatternError):
            ScoredPatternTree(p1, scoring={"$1": FromLabel("$none")})

    def test_cyclic_scoring_rejected(self):
        p1 = PatternNode("$1")
        p2 = p1.add_child(PatternNode("$2"), EdgeType.AD)
        pattern = ScoredPatternTree(p1, scoring={
            "$1": FromLabel("$2"),
            "$2": FromLabel("$1"),
        })
        with pytest.raises(PatternError, match="cyclic"):
            pattern.scoring_order()

    def test_scoring_order_dependencies_first(self):
        p1 = PatternNode("$1")
        p4 = p1.add_child(PatternNode("$4"), EdgeType.ADS)
        pattern = ScoredPatternTree(p1, scoring={
            "$1": FromLabel("$4"),
            "$4": PhraseScore(WeightedCountScorer(["x"])),
        })
        order = pattern.scoring_order()
        assert order.index("$4") < order.index("$1")

    def test_primary_and_ir_labels(self):
        p1 = PatternNode("$1")
        p4 = p1.add_child(PatternNode("$4"), EdgeType.ADS)
        pattern = ScoredPatternTree(p1, scoring={
            "$4": PhraseScore(WeightedCountScorer(["x"])),
            "$1": FromLabel("$4"),
        })
        assert pattern.primary_ir_labels() == ["$4"]
        assert set(pattern.ir_labels()) == {"$1", "$4"}

    def test_node_lookup(self):
        p1 = PatternNode("$1", tag="a")
        pattern = ScoredPatternTree(p1)
        assert pattern.node("$1").tag == "a"
        with pytest.raises(PatternError):
            pattern.node("$nope")
        assert pattern.parent_label("$1") is None


class TestMatching:
    def test_pc_edge(self, tree):
        p1 = PatternNode("$1", tag="a")
        p1.add_child(PatternNode("$2", tag="b"), EdgeType.PC)
        matches = find_embeddings(ScoredPatternTree(p1), tree)
        assert len(matches) == 2

    def test_pc_edge_requires_direct_child(self, tree):
        p1 = PatternNode("$1", tag="b")
        p1.add_child(PatternNode("$2", tag="c"), EdgeType.PC)
        matches = find_embeddings(ScoredPatternTree(p1), tree)
        assert len(matches) == 1  # second c is under d, not directly under b

    def test_ad_edge_strict(self, tree):
        p1 = PatternNode("$1", tag="b")
        p1.add_child(PatternNode("$2", tag="c"), EdgeType.AD)
        matches = find_embeddings(ScoredPatternTree(p1), tree)
        assert len(matches) == 2

    def test_ads_edge_includes_self(self, tree):
        p1 = PatternNode("$1", tag="a")
        p1.add_child(PatternNode("$2"), EdgeType.ADS)
        matches = find_embeddings(ScoredPatternTree(p1), tree)
        assert len(matches) == tree.n_nodes()  # every node incl. a itself

    def test_predicate_filter(self, tree):
        p1 = PatternNode("$1", tag="c",
                         predicate=lambda n: "hit" in n.words)
        matches = find_embeddings(ScoredPatternTree(p1), tree)
        assert len(matches) == 1

    def test_formula_cross_node(self, tree):
        p1 = PatternNode("$1", tag="a")
        p1.add_child(PatternNode("$2", tag="c"), EdgeType.AD)
        pattern = ScoredPatternTree(
            p1,
            formula=lambda m: "miss" in m["$2"].words,
        )
        matches = find_embeddings(pattern, tree)
        assert len(matches) == 1

    def test_no_match(self, tree):
        p1 = PatternNode("$1", tag="zzz")
        assert find_embeddings(ScoredPatternTree(p1), tree) == []

    def test_match_exists_early_exit(self, tree):
        p1 = PatternNode("$1", tag="d")
        assert match_exists(ScoredPatternTree(p1), tree)
        p2 = PatternNode("$1", tag="zzz")
        assert not match_exists(ScoredPatternTree(p2), tree)

    def test_matches_in_document_order(self, tree):
        p1 = PatternNode("$1", tag="c")
        matches = find_embeddings(ScoredPatternTree(p1), tree)
        starts = [m["$1"].order_start for m in matches]
        assert starts == sorted(starts)

    def test_sibling_pattern(self, tree):
        p1 = PatternNode("$1", tag="a")
        p1.add_child(PatternNode("$2", tag="b"), EdgeType.PC)
        p1.add_child(PatternNode("$3", tag="b"), EdgeType.PC)
        matches = find_embeddings(ScoredPatternTree(p1), tree)
        # both b's for $2 × both b's for $3 (no inequality constraint)
        assert len(matches) == 4
