"""Unit tests for the twig-accelerated pattern-matching backend."""

import pytest

from repro.core.matching import find_embeddings
from repro.core.pattern import (
    EdgeType,
    PatternNode,
    ScoredPatternTree,
)
from repro.core.trees import STree, SNode, tree_from_document
from repro.core.twigmatch import (
    applicable,
    find_embeddings_auto,
    find_embeddings_via_twig,
)
from repro.xmldb.store import XMLStore


@pytest.fixture()
def store():
    return XMLStore.from_sources({
        "d.xml": (
            "<lib><shelf><book><title>alpha</title></book>"
            "<book><box><title>beta</title></box></book></shelf>"
            "<title>stray</title></lib>"
        ),
    })


def tagged_pattern(formula=None, title_pred=None):
    p1 = PatternNode("$1", tag="shelf")
    p2 = p1.add_child(PatternNode("$2", tag="book"), EdgeType.AD)
    p2.add_child(
        PatternNode("$3", tag="title", predicate=title_pred), EdgeType.AD
    )
    return ScoredPatternTree(p1, formula=formula)


def norm(matches):
    return [
        tuple(sorted((lbl, n.source) for lbl, n in m.items()))
        for m in matches
    ]


class TestApplicability:
    def test_tagged_ad_pattern_ok(self):
        assert applicable(tagged_pattern())

    def test_untagged_node_rejected(self):
        p1 = PatternNode("$1", tag="a")
        p1.add_child(PatternNode("$2"), EdgeType.AD)
        assert not applicable(ScoredPatternTree(p1))

    def test_ads_edge_rejected(self):
        p1 = PatternNode("$1", tag="a")
        p1.add_child(PatternNode("$2", tag="b"), EdgeType.ADS)
        assert not applicable(ScoredPatternTree(p1))

    def test_pc_edge_ok(self):
        p1 = PatternNode("$1", tag="a")
        p1.add_child(PatternNode("$2", tag="b"), EdgeType.PC)
        assert applicable(ScoredPatternTree(p1))


class TestEquivalence:
    def test_ad_pattern(self, store):
        tree = tree_from_document(store.document(0))
        pattern = tagged_pattern()
        twig = find_embeddings_via_twig(store, pattern, tree)
        back = find_embeddings(pattern, tree)
        assert norm(twig) == norm(back)
        assert len(twig) == 2

    def test_pc_edge_filter(self, store):
        p1 = PatternNode("$1", tag="book")
        p1.add_child(PatternNode("$2", tag="title"), EdgeType.PC)
        pattern = ScoredPatternTree(p1)
        tree = tree_from_document(store.document(0))
        twig = find_embeddings_via_twig(store, pattern, tree)
        back = find_embeddings(pattern, tree)
        assert norm(twig) == norm(back)
        assert len(twig) == 1  # beta's title is under box, not direct

    def test_predicate_filter(self, store):
        pattern = tagged_pattern(
            title_pred=lambda n: "beta" in n.words
        )
        tree = tree_from_document(store.document(0))
        twig = find_embeddings_via_twig(store, pattern, tree)
        assert len(twig) == 1
        assert norm(twig) == norm(find_embeddings(pattern, tree))

    def test_formula_filter(self, store):
        pattern = tagged_pattern(
            formula=lambda m: "alpha" in m["$3"].words
        )
        tree = tree_from_document(store.document(0))
        twig = find_embeddings_via_twig(store, pattern, tree)
        assert len(twig) == 1

    def test_subtree_restriction(self, store):
        doc = store.document(0)
        # match only within the first book's subtree
        book = doc.find_by_tag("book")[0]
        sub = tree_from_document(doc, book)
        p1 = PatternNode("$1", tag="book")
        p1.add_child(PatternNode("$2", tag="title"), EdgeType.AD)
        pattern = ScoredPatternTree(p1)
        twig = find_embeddings_via_twig(store, pattern, sub)
        assert len(twig) == 1
        assert twig[0]["$2"].source == (0, book + 1)

    def test_inapplicable_raises(self, store):
        p1 = PatternNode("$1", tag="lib")
        p1.add_child(PatternNode("$2"), EdgeType.ADS)
        tree = tree_from_document(store.document(0))
        with pytest.raises(ValueError):
            find_embeddings_via_twig(store, ScoredPatternTree(p1), tree)

    def test_constructed_tree_raises(self, store):
        tree = STree(SNode("shelf"))
        with pytest.raises(ValueError):
            find_embeddings_via_twig(store, tagged_pattern(), tree)


class TestAuto:
    def test_auto_uses_twig_when_possible(self, store):
        tree = tree_from_document(store.document(0))
        auto = find_embeddings_auto(store, tagged_pattern(), tree)
        assert norm(auto) == norm(find_embeddings(tagged_pattern(), tree))

    def test_auto_falls_back(self, store):
        p1 = PatternNode("$1", tag="lib")
        p1.add_child(PatternNode("$2"), EdgeType.ADS)
        pattern = ScoredPatternTree(p1)
        tree = tree_from_document(store.document(0))
        auto = find_embeddings_auto(store, pattern, tree)
        assert norm(auto) == norm(find_embeddings(pattern, tree))

    def test_auto_without_store(self, store):
        tree = tree_from_document(store.document(0))
        auto = find_embeddings_auto(None, tagged_pattern(), tree)
        assert norm(auto) == norm(find_embeddings(tagged_pattern(), tree))
