"""Unit and property tests for the top-k machinery: the Threshold
Algorithm and the bounded-heap TopK operator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.topk import (
    brute_force_topk,
    threshold_algorithm,
    topk_termjoin_scores,
)
from repro.core.trees import SNode, STree
from repro.engine.base import Operator, execute
from repro.engine.operators import Limit, Sort, TopK


class _ListSource(Operator):
    name = "list-source"

    def __init__(self, trees):
        super().__init__()
        self.trees = trees

    def _open(self):
        self._i = 0

    def _next(self):
        if self._i >= len(self.trees):
            return None
        t = self.trees[self._i]
        self._i += 1
        return t


class TestThresholdAlgorithm:
    def test_simple_exact(self):
        lists = [
            [(5.0, "a"), (3.0, "b"), (1.0, "c")],
            [(4.0, "b"), (2.0, "a"), (0.5, "d")],
        ]
        top, _reads = threshold_algorithm(lists, 2)
        assert top == [(7.0, "a"), (7.0, "b")] or \
            top == [(7.0, "b"), (7.0, "a")]

    def test_early_termination_reads_prefix(self):
        # One dominant item: TA should stop before exhausting the lists.
        lists = [
            [(100.0, "hot")] + [(1.0, f"x{i}") for i in range(100)],
            [(100.0, "hot")] + [(1.0, f"y{i}") for i in range(100)],
        ]
        top, reads = threshold_algorithm(lists, 1)
        assert top[0] == (200.0, "hot")
        assert reads < 50  # far fewer than 202 entries

    def test_k_zero_and_empty(self):
        assert threshold_algorithm([[(1.0, "a")]], 0) == ([], 0)
        assert threshold_algorithm([], 3) == ([], 0)
        top, _ = threshold_algorithm([[], []], 3)
        assert top == []

    def test_k_larger_than_universe(self):
        lists = [[(2.0, "a"), (1.0, "b")]]
        top, _ = threshold_algorithm(lists, 10)
        assert [item for _s, item in top] == ["a", "b"]

    def test_missing_contributes_default(self):
        lists = [
            [(5.0, "only-left")],
            [(4.0, "only-right")],
        ]
        top, _ = threshold_algorithm(lists, 2)
        scores = dict((item, s) for s, item in top)
        assert scores == {"only-left": 5.0, "only-right": 4.0}

    @given(st.lists(
        st.lists(st.tuples(
            st.floats(min_value=0, max_value=50, allow_nan=False),
            st.integers(min_value=0, max_value=30),
        ), max_size=25),
        min_size=1, max_size=4,
    ), st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_matches_brute_force(self, raw_lists, k):
        # dedupe items within each list (a source scores an item once)
        lists = []
        for raw in raw_lists:
            seen = {}
            for score, item in raw:
                seen.setdefault(item, score)
            lists.append(list(seen.items()))
            lists[-1] = [(s, i) for i, s in seen.items()]
        ta, _reads = topk_termjoin_scores(lists, k)
        brute = brute_force_topk(lists, k)
        assert [round(s, 9) for s, _i in ta] == \
            [round(s, 9) for s, _i in brute]


class TestTopKOperator:
    def _trees(self, scores):
        return [STree(SNode(f"t{i}", score=s))
                for i, s in enumerate(scores)]

    def test_equals_sort_limit(self):
        rng = random.Random(11)
        scores = [rng.uniform(0, 5) for _ in range(50)]
        trees = self._trees(scores)
        a = execute(TopK(_ListSource(list(trees)), 7))
        b = execute(Limit(Sort(_ListSource(list(trees))), 7))
        assert [(t.root.tag, t.score) for t in a] == \
            [(t.root.tag, t.score) for t in b]

    def test_ties_stable(self):
        trees = self._trees([1.0, 1.0, 1.0, 1.0])
        out = execute(TopK(_ListSource(trees), 2))
        assert [t.root.tag for t in out] == ["t0", "t1"]

    def test_fewer_items_than_k(self):
        trees = self._trees([2.0, 1.0])
        out = execute(TopK(_ListSource(trees), 10))
        assert len(out) == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopK(_ListSource([]), 0)

    def test_none_scores_rank_last(self):
        trees = self._trees([1.0]) + [STree(SNode("unscored"))]
        out = execute(TopK(_ListSource(trees), 2))
        assert out[0].root.tag == "t0"
        assert out[1].root.tag == "unscored"
