"""Unit tests for the resilience guard: deadlines, budgets, cancellation,
degrade mode, and the install machinery."""

import time

import pytest

from repro import obs
from repro.engine import Limit, Materialize, Sort, TagScan, TermJoinScan
from repro.engine.base import Operator, execute
from repro.errors import (
    QueryAbortedError,
    QueryCancelledError,
    QueryTimeoutError,
    ResourceExhaustedError,
    TIXError,
)
from repro.exampledata import example_store
from repro.resilience import (
    GUARD,
    CancellationToken,
    NullGuard,
    QueryGuard,
    current_guard,
    execute_guarded,
    guarded,
    install_guard,
    run_query_guarded,
    uninstall_guard,
)
from repro.resilience import guard as guard_module


@pytest.fixture()
def store():
    return example_store()


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        QueryTimeoutError, ResourceExhaustedError, QueryCancelledError,
    ])
    def test_guard_errors_derive_from_aborted_and_tix(self, exc_type):
        assert issubclass(exc_type, QueryAbortedError)
        assert issubclass(exc_type, TIXError)


class TestToken:
    def test_token_starts_uncancelled(self):
        tok = CancellationToken()
        assert not tok.cancelled
        tok.cancel()
        assert tok.cancelled

    def test_cancelled_token_trips_on_tick(self):
        tok = CancellationToken()
        g = QueryGuard(token=tok)
        g.tick()  # fine while not cancelled
        tok.cancel()
        with pytest.raises(QueryCancelledError):
            g.tick()
        assert isinstance(g.tripped, QueryCancelledError)


class TestDeadline:
    def test_expired_deadline_trips(self):
        g = QueryGuard(timeout_ms=0)
        time.sleep(0.002)
        with pytest.raises(QueryTimeoutError, match="deadline"):
            g.tick()

    def test_unexpired_deadline_does_not_trip(self):
        g = QueryGuard(timeout_ms=60_000)
        for _ in range(100):
            g.tick()
        assert g.tripped is None
        assert g.remaining_ms > 0

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            QueryGuard(timeout_ms=-1)
        with pytest.raises(ValueError):
            QueryGuard(max_rows=-1)
        with pytest.raises(ValueError):
            QueryGuard(max_materialized=-1)


class TestInstall:
    def test_null_guard_default(self):
        assert isinstance(current_guard(), NullGuard)
        assert not current_guard().active
        # null guard methods are inert
        current_guard().tick()
        current_guard().count_materialized()

    def test_install_nests(self):
        g1, g2 = QueryGuard(), QueryGuard()
        install_guard(g1)
        try:
            assert guard_module.GUARD is g1
            install_guard(g2)
            assert guard_module.GUARD is g2
            uninstall_guard()
            assert guard_module.GUARD is g1
        finally:
            uninstall_guard()
        assert isinstance(guard_module.GUARD, NullGuard)

    def test_unbalanced_uninstall_raises(self):
        with pytest.raises(RuntimeError):
            uninstall_guard()

    def test_guarded_context_manager(self):
        g = QueryGuard()
        with guarded(g) as got:
            assert got is g
            assert guard_module.GUARD is g
        assert guard_module.GUARD is not g

    def test_module_level_guard_is_null_after_runs(self):
        # executors must always restore the null guard
        assert not guard_module.GUARD.active


class TestExecuteGuarded:
    def test_unguarded_semantics_preserved(self, store):
        plain = execute(TagScan(store, "p"))
        res = execute_guarded(TagScan(store, "p"), QueryGuard())
        assert not res.truncated
        assert [t.root.source for t in res.results] == \
            [t.root.source for t in plain]

    def test_row_budget_strict(self, store):
        with pytest.raises(ResourceExhaustedError, match="row budget"):
            execute_guarded(TagScan(store, "p"), QueryGuard(max_rows=1))

    def test_row_budget_degrade_returns_prefix(self, store):
        full = execute(Sort(TagScan(store, "p")))
        res = execute_guarded(
            Sort(TagScan(store, "p")), QueryGuard(max_rows=2, degrade=True)
        )
        assert res.truncated
        assert isinstance(res.error, ResourceExhaustedError)
        assert "row budget" in res.reason
        assert [t.root.source for t in res.results] == \
            [t.root.source for t in full[:2]]

    def test_zero_row_budget_degrade(self, store):
        res = execute_guarded(
            TagScan(store, "p"), QueryGuard(max_rows=0, degrade=True)
        )
        assert res.truncated and res.n_results == 0

    def test_exact_budget_still_trips(self, store):
        # The budget is a hard cap, not a LIMIT: a plan producing exactly
        # max_rows rows trips too (the governor cannot know no more rows
        # would come without computing the next one).
        n = len(execute(TagScan(store, "p")))
        res = execute_guarded(
            TagScan(store, "p"), QueryGuard(max_rows=n, degrade=True)
        )
        assert res.truncated and res.n_results == n

    def test_timeout_degrade_closes_cleanly(self, store):
        g = QueryGuard(timeout_ms=0, degrade=True)
        time.sleep(0.002)
        plan = TagScan(store, "p")
        res = execute_guarded(plan, g)
        assert res.truncated
        assert isinstance(res.error, QueryTimeoutError)
        # pipeline was closed: the operator is reusable afterwards
        assert len(execute(plan)) == 3

    def test_cancellation_mid_stream(self, store):
        tok = CancellationToken()

        class CancelAfter(Operator):
            name = "cancel-after"

            def __init__(self, child, n):
                super().__init__([child])
                self.n = n

            def _next(self):
                if self.rows_out + 1 > self.n:
                    tok.cancel()
                return self.children[0].next()

        g = QueryGuard(token=tok, degrade=True)
        res = execute_guarded(CancelAfter(TagScan(store, "p"), 1), g)
        assert res.truncated
        assert isinstance(res.error, QueryCancelledError)
        assert res.n_results >= 1

    def test_trip_inside_open_degrades_to_empty(self, store):
        # Sort drains its child inside _open(); an already-expired
        # deadline trips there, before any row reaches the sink.
        g = QueryGuard(timeout_ms=0, degrade=True)
        time.sleep(0.002)
        res = execute_guarded(Sort(TagScan(store, "p")), g)
        assert res.truncated and res.n_results == 0

    def test_guard_result_iterable(self, store):
        res = execute_guarded(TagScan(store, "p"), QueryGuard())
        assert len(list(res)) == res.n_results


class TestMaterializationBudget:
    def _scan(self, store):
        from repro.access.termjoin import TermJoin
        from repro.core.scoring import WeightedCountScorer

        scorer = WeightedCountScorer(["technologies"])
        return TermJoinScan(
            store, ["technologies"], TermJoin(store, scorer)
        )

    def test_materialize_budget_trips(self, store):
        plan = Materialize(self._scan(store), store)
        with pytest.raises(ResourceExhaustedError, match="materialization"):
            execute_guarded(plan, QueryGuard(max_materialized=0))

    def test_materialize_budget_degrade(self, store):
        plan = Materialize(self._scan(store), store)
        res = execute_guarded(
            plan, QueryGuard(max_materialized=1, degrade=True)
        )
        assert res.truncated
        assert res.n_results == 1

    def test_tagscan_counts_materializations(self, store):
        with guarded(QueryGuard()) as g:
            execute(TagScan(store, "p"))
        assert g.materialized == 3


class TestObsIntegration:
    def test_trips_and_checks_are_counted(self, store):
        with obs.collecting() as col:
            res = execute_guarded(
                TagScan(store, "p"), QueryGuard(max_rows=1, degrade=True)
            )
        assert res.truncated
        snap = col.metrics.snapshot()
        assert snap["guard.trips.rows"] == 1
        assert snap["guard.checks"] >= 1
        assert snap["guard.rows"] == 1

    def test_no_collector_no_error(self, store):
        res = execute_guarded(
            TagScan(store, "p"), QueryGuard(max_rows=1, degrade=True)
        )
        assert res.truncated  # publish() was a silent no-op


class TestRunQueryGuarded:
    QUERY = (
        'For $x in document("articles.xml")'
        '//article/descendant-or-self::* '
        'Score $x using ScoreFooExact($x, {"technologies"}) '
        'Return $x Sortby(score)'
    )

    def test_unguarded_equivalence(self, store):
        # A no-limit guard must not change what the guarded runner
        # produces (compare two guarded runs: one inert, one default).
        full = run_query_guarded(store, self.QUERY, QueryGuard())
        again = run_query_guarded(store, self.QUERY, QueryGuard())
        assert not full.truncated
        assert [t.score for t in again.results] == \
            [t.score for t in full.results]
        assert full.n_results >= 2

    def test_row_budget_prefix_is_correctly_ranked(self, store):
        full = run_query_guarded(store, self.QUERY, QueryGuard())
        res = run_query_guarded(
            store, self.QUERY, QueryGuard(max_rows=2, degrade=True)
        )
        assert res.truncated
        assert [t.score for t in res.results] == \
            [t.score for t in full.results[:2]]

    def test_strict_budget_raises(self, store):
        with pytest.raises(ResourceExhaustedError):
            run_query_guarded(store, self.QUERY, QueryGuard(max_rows=1))
