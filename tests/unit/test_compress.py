"""Unit and property tests for posting-list compression."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnknownTermError
from repro.index.compress import (
    CompressedInvertedIndex,
    decode_postings,
    encode_postings,
    read_varint,
    unzigzag,
    write_varint,
    zigzag,
)
from repro.xmldb.store import XMLStore


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**20, 2**40])
    def test_roundtrip(self, value):
        buf = bytearray()
        write_varint(value, buf)
        got, i = read_varint(bytes(buf), 0)
        assert got == value and i == len(buf)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            write_varint(-1, bytearray())

    def test_small_values_one_byte(self):
        buf = bytearray()
        write_varint(100, buf)
        assert len(buf) == 1

    @given(st.integers(min_value=-10**9, max_value=10**9))
    @settings(max_examples=100)
    def test_zigzag_roundtrip(self, v):
        assert unzigzag(zigzag(v)) == v
        assert zigzag(v) >= 0


class TestPostingCodec:
    def test_roundtrip_simple(self):
        postings = [(0, 3, 1, 0), (0, 7, 2, 1), (1, 2, 0, 0)]
        assert decode_postings(encode_postings(postings)) == postings

    def test_empty(self):
        assert decode_postings(encode_postings([])) == []

    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=5),     # doc
        st.integers(min_value=1, max_value=10000),  # pos
        st.integers(min_value=0, max_value=500),   # node
        st.integers(min_value=0, max_value=50),    # offset
    ), max_size=80))
    @settings(max_examples=100)
    def test_roundtrip_random(self, raw):
        # enforce the (doc, pos)-sorted invariant with unique pos per doc
        seen = set()
        postings = []
        for doc, pos, node, offset in sorted(raw):
            if (doc, pos) in seen:
                continue
            seen.add((doc, pos))
            postings.append((doc, pos, node, offset))
        assert decode_postings(encode_postings(postings)) == postings

    def test_compresses_real_lists(self, small_corpus):
        idx = small_corpus.index
        pl = idx.postings("alpha").postings
        blob = encode_postings(pl)
        assert len(blob) < len(pl) * 16


class TestCompressedIndex:
    def test_api_parity(self, small_corpus):
        plain = small_corpus.index
        comp = CompressedInvertedIndex.from_index(plain)
        for term in ("alpha", "beta", "solo", "zz-missing"):
            assert comp.postings(term).postings == \
                plain.postings(term).postings
            assert comp.frequency(term) == plain.frequency(term)
            assert comp.document_frequency(term) == \
                plain.document_frequency(term)
        assert comp.n_terms == plain.n_terms
        assert set(comp.vocabulary()) == set(plain.vocabulary())
        assert comp.idf("alpha") == plain.idf("alpha")
        assert comp.element_counts("alpha") == plain.element_counts("alpha")
        assert comp.terms_sorted_by_frequency()[:5] == \
            plain.terms_sorted_by_frequency()[:5]

    def test_strict_unknown_term(self, small_corpus):
        comp = CompressedInvertedIndex.from_index(small_corpus.index)
        with pytest.raises(UnknownTermError):
            comp.postings("nope", strict=True)

    def test_compression_ratio_positive(self, small_corpus):
        comp = CompressedInvertedIndex.from_index(small_corpus.index)
        assert comp.compression_ratio() > 2.0

    def test_store_flag_swaps_implementation(self):
        store = XMLStore.from_sources({"a.xml": "<a>x y x</a>"})
        store.enable_index_compression()
        assert isinstance(store.index, CompressedInvertedIndex)
        store.enable_index_compression(False)
        from repro.index.inverted import InvertedIndex

        assert isinstance(store.index, InvertedIndex)


class TestAccessMethodsOverCompressedIndex:
    def test_termjoin_identical(self, small_corpus):
        from repro.access.termjoin import TermJoin
        from repro.core.scoring import WeightedCountScorer

        scorer = WeightedCountScorer(["alpha"], ["beta"])
        plain = {
            (r.doc_id, r.node_id): r.score
            for r in TermJoin(small_corpus, scorer)
            .run(["alpha", "beta"])
        }
        small_corpus.enable_index_compression()
        try:
            comp = {
                (r.doc_id, r.node_id): r.score
                for r in TermJoin(small_corpus, scorer)
                .run(["alpha", "beta"])
            }
        finally:
            small_corpus.enable_index_compression(False)
        assert comp == plain

    def test_phrasefinder_identical(self, small_corpus):
        from repro.access.phrasefinder import PhraseFinder

        plain = [
            (m.doc_id, m.node_id, m.count)
            for m in PhraseFinder(small_corpus).run(["px", "py"])
        ]
        small_corpus.enable_index_compression()
        try:
            comp = [
                (m.doc_id, m.node_id, m.count)
                for m in PhraseFinder(small_corpus).run(["px", "py"])
            ]
        finally:
            small_corpus.enable_index_compression(False)
        assert comp == plain
