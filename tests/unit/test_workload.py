"""Unit tests for the synthetic workload generator and bench specs."""

import pytest

from repro.workload.benchspec import (
    TABLE1_FREQUENCIES,
    TABLE5_PHRASES,
    table123_spec,
    table4_spec,
    table5_spec,
)
from repro.workload.corpus import CorpusSpec, generate_corpus
from repro.workload.trees import random_scored_tree


class TestCorpusGenerator:
    def test_deterministic(self):
        spec = CorpusSpec(n_articles=3, seed=7)
        a = generate_corpus(spec)
        b = generate_corpus(spec)
        da, db = a.document(0), b.document(0)
        assert da.tags == db.tags
        assert da.word_terms == db.word_terms

    def test_different_seeds_differ(self):
        a = generate_corpus(CorpusSpec(n_articles=3, seed=1))
        b = generate_corpus(CorpusSpec(n_articles=3, seed=2))
        assert a.document(0).word_terms != b.document(0).word_terms

    def test_article_shape(self):
        store = generate_corpus(CorpusSpec(n_articles=2, seed=3))
        doc = store.document(0)
        assert doc.tags[0] == "article"
        assert "article-title" in doc.tags
        assert "chapter" in doc.tags and "p" in doc.tags
        assert doc.attr(doc.find_by_tag("author")[0], "id") == "first"

    def test_exact_term_planting(self):
        spec = CorpusSpec(
            n_articles=4,
            planted_terms={"needle": 17, "rare": 1},
            seed=5,
        )
        store = generate_corpus(spec)
        assert store.index.frequency("needle") == 17
        assert store.index.frequency("rare") == 1

    def test_phrase_planting(self):
        spec = CorpusSpec(
            n_articles=4,
            planted_phrases={("px", "py"): 9},
            seed=5,
        )
        store = generate_corpus(spec)
        from repro.access.phrasefinder import PhraseFinder

        total = sum(m.count for m in PhraseFinder(store).run(["px", "py"]))
        assert total == 9
        assert store.index.frequency("px") == 9
        assert store.index.frequency("py") == 9

    def test_planting_into_empty_corpus_rejected(self):
        spec = CorpusSpec(n_articles=0, planted_terms={"x": 1})
        with pytest.raises(ValueError):
            generate_corpus(spec)


class TestBenchSpecs:
    def test_table123_rows_cover_frequencies(self):
        spec, rows = table123_spec(scale=0.02)
        assert [r.label for r in rows["table1"]] == TABLE1_FREQUENCIES
        store = generate_corpus(spec)
        for row in rows["table1"]:
            for term, planted in zip(row.terms, row.planted):
                assert store.index.frequency(term) == planted

    def test_table123_scaling(self):
        _spec, rows = table123_spec(scale=0.1)
        row = rows["table1"][-1]
        assert row.planted == (1000, 1000)

    def test_table3_term1_fixed(self):
        _spec, rows = table123_spec(scale=0.1)
        t3 = rows["table3"]
        firsts = {r.terms[0] for r in t3}
        assert len(firsts) == 1

    def test_table4_incremental_terms(self):
        spec, rows = table4_spec(scale=0.05)
        assert [r.label for r in rows] == [2, 3, 4, 5, 6, 7]
        for prev, cur in zip(rows, rows[1:]):
            assert cur.terms[: len(prev.terms)] == prev.terms
        store = generate_corpus(spec)
        for term in rows[-1].terms:
            assert store.index.frequency(term) == 75

    def test_table5_shared_terms(self):
        _spec, rows = table5_spec(scale=0.01)
        # rows 1 and 2 share term1 (nominal frequency 121076)
        assert rows[0].terms[0] == rows[1].terms[0]
        assert len(rows) == len(TABLE5_PHRASES)

    def test_table5_term_totals(self):
        spec, rows = table5_spec(scale=0.01)
        store = generate_corpus(spec)
        for row in rows:
            for term, planted in zip(row.terms, row.planted_freqs):
                assert store.index.frequency(term) == planted

    def test_table5_scale_too_small_rejected(self):
        with pytest.raises(ValueError):
            table5_spec(scale=0.000001)


class TestRandomScoredTree:
    def test_exact_size(self):
        for n in (1, 2, 50, 500):
            assert random_scored_tree(n).n_nodes() == n

    def test_deterministic(self):
        a = random_scored_tree(100, seed=3)
        b = random_scored_tree(100, seed=3)
        assert a.sketch() == b.sketch()

    def test_all_nodes_scored(self):
        tree = random_scored_tree(200)
        assert all(n.score is not None for n in tree.nodes())

    def test_relevant_fraction_roughly_holds(self):
        tree = random_scored_tree(2000, relevant_fraction=0.3)
        rel = sum(1 for n in tree.nodes() if n.score >= 0.8)
        assert 0.2 < rel / 2000 < 0.4

    def test_fanout_bounded(self):
        tree = random_scored_tree(500, max_fanout=3)
        assert all(len(n.children) <= 3 for n in tree.nodes())

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            random_scored_tree(0)
