"""Roundtrip tests for the query unparser: parse(unparse(parse(q)))
must equal parse(q)."""

import pytest

from repro.query.parser import parse_query
from repro.query.unparse import unparse

QUERIES = [
    # simple FLWOR
    'For $a in document("d.xml")//x Return $a',
    # assign form, predicates, descendant-or-self
    '''For $a := document("articles.xml")//
         article[/author/sname/text()="Doe"]/descendant-or-self::*
       Score $a using ScoreFoo($a, {"search engine"},
                               {"internet", "information retrieval"})
       Pick $a using PickFoo($a)
       Return <result><score>{ $a/@score }</score>{ $a }</result>
       Sortby(score)
       Threshold $a/@score > 4 stop after 5''',
    # let + nested flwor + join + containment predicate
    '''Let $c := (<root>
         For $a in document("a.xml")//article
         For $b in document("r.xml")//review
         Return <tix_prod_root>
                  <simScore>ScoreSim($a, $b)</simScore>
                  { $a } { $b }
                </tix_prod_root>
         Threshold simScore > 1
       </root>)
       For $d := $c//tix_prod_root[//$e]
       Return $d''',
    # where with boolean combinations
    '''For $b in document("lib.xml")//book
       Where $b/@year > 2000 and not($b/au/text() = "Salton")
       Return $b''',
    'For $b in document("l.xml")//b Where $b/@y = 1 or $b/@y = 2 Return $b',
    # attribute and text steps, wildcard
    'For $x in document("d.xml")//a/* Return <r>{ $x/text() }</r>',
    # numeric and string literals in comparisons
    'For $x in document("d.xml")//a Where $x/v >= 2.5 Return $x',
    # element constructor with attributes and plain text
    'For $x in document("d.xml")//a Return <r kind="best">hello world</r>',
]


@pytest.mark.parametrize("source", QUERIES)
def test_roundtrip(source):
    first = parse_query(source)
    text = unparse(first)
    second = parse_query(text)
    assert second == first, f"unparsed form:\n{text}"


def test_unparse_is_readable():
    q = parse_query(
        'For $a in document("d.xml")//x '
        'Score $a using ScoreFoo($a, {"t"}) Return $a Sortby(score)'
    )
    text = unparse(q)
    assert text.splitlines()[0].startswith("For $a in")
    assert "Score $a using ScoreFoo" in text
    assert text.splitlines()[-1] == "Sortby(score)"


def test_unparse_unknown_type_raises():
    with pytest.raises(TypeError):
        from repro.query.unparse import _expr

        _expr(object())  # type: ignore[arg-type]
