"""Admission-control and store-gate unit tests: the queue → reject →
degrade → drain ladder, and pinned read visibility over mutations."""

import threading
import time

import pytest

from repro.errors import OverloadedError, ShuttingDownError
from repro.server.admission import AdmissionController, StoreGate
from repro.xmldb.store import XMLStore

DOC = "<root><a>alpha</a><a>beta</a></root>"


class TestAdmission:
    def test_admit_and_release_track_inflight(self):
        ac = AdmissionController(max_inflight=2, queue_timeout_s=0.05)
        t1 = ac.admit(generation=3)
        t2 = ac.admit()
        assert ac.inflight == 2
        assert t1.generation == 3 and not t1.degraded
        ac.release(t1)
        ac.release(t2)
        assert ac.inflight == 0
        assert ac.admitted == 2

    def test_queue_timeout_rejects_typed(self):
        ac = AdmissionController(max_inflight=1, queue_timeout_s=0.02)
        held = ac.admit()
        t0 = time.monotonic()
        with pytest.raises(OverloadedError, match="max_inflight=1"):
            ac.admit()
        assert time.monotonic() - t0 < 1.0  # bounded, not a hang
        assert ac.rejected_overload == 1
        ac.release(held)

    def test_queued_request_gets_freed_slot(self):
        ac = AdmissionController(max_inflight=1, queue_timeout_s=2.0)
        held = ac.admit()
        got = []

        def waiter():
            got.append(ac.admit())

        th = threading.Thread(target=waiter)
        th.start()
        time.sleep(0.05)
        assert not got  # still queued
        ac.release(held)
        th.join(2.0)
        assert len(got) == 1 and got[0].queued_ms > 0.0
        ac.release(got[0])

    def test_rejection_degrades_subsequent_admits(self):
        ac = AdmissionController(max_inflight=1, queue_timeout_s=0.01,
                                 pressure_window_s=5.0)
        held = ac.admit()
        with pytest.raises(OverloadedError):
            ac.admit()
        ac.release(held)
        ticket = ac.admit()
        assert ticket.degraded
        assert ac.degraded == 1
        ac.release(ticket)

    def test_pressure_window_expires(self):
        ac = AdmissionController(max_inflight=1, queue_timeout_s=0.01,
                                 pressure_window_s=0.05)
        held = ac.admit()
        with pytest.raises(OverloadedError):
            ac.admit()
        ac.release(held)
        assert ac.under_pressure()
        time.sleep(0.1)
        assert not ac.under_pressure()
        ticket = ac.admit()
        assert not ticket.degraded
        ac.release(ticket)

    def test_drain_rejects_and_waits_for_inflight(self):
        ac = AdmissionController(max_inflight=2, queue_timeout_s=0.05)
        held = ac.admit()
        assert ac.drain(timeout_s=0.02) is False  # still in flight
        with pytest.raises(ShuttingDownError):
            ac.admit()
        assert ac.rejected_shutdown == 1

        def releaser():
            time.sleep(0.05)
            ac.release(held)

        th = threading.Thread(target=releaser)
        th.start()
        assert ac.drain(timeout_s=2.0) is True
        th.join()

    def test_snapshot_shape(self):
        ac = AdmissionController(max_inflight=4)
        snap = ac.snapshot()
        assert snap["max_inflight"] == 4
        assert snap["inflight"] == 0
        assert snap["draining"] is False
        assert set(snap) >= {
            "admitted", "rejected_overload", "rejected_shutdown",
            "degraded", "under_pressure",
        }

    def test_max_inflight_validated(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)


class TestStoreGate:
    def test_read_pins_generation(self):
        store = XMLStore()
        store.load("a.xml", DOC)
        gate = StoreGate(store)
        with gate.read() as generation:
            assert generation == store.generation

    def test_writer_excludes_readers(self):
        store = XMLStore()
        store.load("a.xml", DOC)
        gate = StoreGate(store)
        reader_in = threading.Event()
        release_reader = threading.Event()
        wrote = []

        def reader():
            with gate.read():
                reader_in.set()
                release_reader.wait(5.0)

        def writer():
            with gate.write() as st:
                wrote.append(st.load("b.xml", DOC).name)

        rt = threading.Thread(target=reader)
        wt = threading.Thread(target=writer)
        rt.start()
        assert reader_in.wait(5.0)
        wt.start()
        time.sleep(0.05)
        assert not wrote  # writer blocked behind the active reader
        release_reader.set()
        wt.join(5.0)
        rt.join(5.0)
        assert wrote == ["b.xml"]

    def test_waiting_writer_blocks_new_readers(self):
        store = XMLStore()
        store.load("a.xml", DOC)
        gate = StoreGate(store)
        reader_in = threading.Event()
        release_reader = threading.Event()
        late_reader_gen = []
        write_done = threading.Event()

        def first_reader():
            with gate.read():
                reader_in.set()
                release_reader.wait(5.0)

        def writer():
            with gate.write() as st:
                st.load("b.xml", DOC)
            write_done.set()

        def late_reader():
            with gate.read() as generation:
                late_reader_gen.append(generation)

        rt = threading.Thread(target=first_reader)
        rt.start()
        assert reader_in.wait(5.0)
        wt = threading.Thread(target=writer)
        wt.start()
        time.sleep(0.05)  # writer is now queued behind the reader
        lt = threading.Thread(target=late_reader)
        lt.start()
        time.sleep(0.05)
        # no writer starvation: the late reader queues behind the writer
        assert not late_reader_gen
        gen_before = store.generation
        release_reader.set()
        wt.join(5.0)
        lt.join(5.0)
        rt.join(5.0)
        assert write_done.is_set()
        # the late reader observed the post-write generation
        assert late_reader_gen == [gen_before + 1]

    def test_writer_rebuilds_lazily_cached_structures_eagerly(self):
        store = XMLStore()
        store.load("a.xml", DOC)
        gate = StoreGate(store)
        store.index  # build once
        with gate.write() as st:
            st.load("b.xml", DOC)
            # mutation invalidated the caches inside the write section
            assert st._inverted is None and st._stats is None
        # ... and the gate rebuilt them before any reader re-entered
        assert store._inverted is not None
        assert store._structure is not None
        assert store._stats is not None

    def test_write_rebuilds_even_when_body_raises(self):
        store = XMLStore()
        store.load("a.xml", DOC)
        gate = StoreGate(store)
        with pytest.raises(RuntimeError):
            with gate.write() as st:
                st.load("b.xml", DOC)
                raise RuntimeError("mutation step failed")
        # gate still released and rebuilt; readers are not deadlocked
        assert store._inverted is not None
        with gate.read() as generation:
            assert generation == store.generation
