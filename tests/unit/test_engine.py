"""Unit tests for the pipelined engine operators."""

import pytest

from repro.access.termjoin import TermJoin
from repro.core.operators import PickCriterion
from repro.core.scoring import WeightedCountScorer
from repro.engine import (
    DocumentSource,
    Join,
    Limit,
    Materialize,
    PhraseFinderScan,
    PickOp,
    Product,
    Project,
    Select,
    Sort,
    TagScan,
    TermJoinScan,
    ThresholdOp,
    Union,
    execute,
    explain,
)
from repro.engine.base import Operator
from repro.errors import PlanError
from repro.exampledata import (
    example_store,
    pickfoo_criterion,
    query2_pattern,
)


@pytest.fixture()
def store():
    return example_store()


class TestProtocol:
    def test_next_before_open_raises(self, store):
        op = DocumentSource(store, "articles.xml")
        with pytest.raises(PlanError):
            op.next()

    def test_double_open_raises(self, store):
        op = DocumentSource(store, "articles.xml")
        op.open()
        with pytest.raises(PlanError):
            op.open()

    def test_close_before_open_raises(self, store):
        with pytest.raises(PlanError):
            DocumentSource(store, "articles.xml").close()

    def test_reopen_after_close(self, store):
        op = DocumentSource(store, "articles.xml")
        assert len(execute(op)) == 1
        assert len(execute(op)) == 1  # open/close cycle reusable

    def test_next_after_close_raises(self, store):
        op = DocumentSource(store, "articles.xml")
        op.open()
        op.close()
        with pytest.raises(PlanError, match="after close"):
            op.next()

    def test_next_before_open_message(self, store):
        with pytest.raises(PlanError, match="before open"):
            DocumentSource(store, "articles.xml").next()

    def test_double_close_raises(self, store):
        op = DocumentSource(store, "articles.xml")
        op.open()
        op.close()
        with pytest.raises(PlanError, match="close"):
            op.close()

    def test_iter_before_open_raises(self, store):
        with pytest.raises(PlanError):
            list(DocumentSource(store, "articles.xml"))

    def test_protocol_violations_raise_plan_error_not_attribute_error(
        self, store
    ):
        # The protocol errors must be PlanError (a TIXError) on every
        # operator — never an obscure AttributeError from a missing
        # buffer that only _open() would have created.
        ops = [
            TagScan(store, "p"),
            Sort(TagScan(store, "p")),
            Limit(TagScan(store, "p"), 1),
        ]
        for op in ops:
            with pytest.raises(PlanError):
                op.next()
            op.open()
            op.close()
            with pytest.raises(PlanError):
                op.next()

    def test_rows_out_counted(self, store):
        op = TagScan(store, "p")
        execute(op)
        assert op.rows_out == 3


class TestSources:
    def test_document_source_named(self, store):
        out = execute(DocumentSource(store, "articles.xml"))
        assert len(out) == 1 and out[0].root.tag == "article"

    def test_document_source_all(self, store):
        assert len(execute(DocumentSource(store))) == 2

    def test_tag_scan(self, store):
        out = execute(TagScan(store, "section"))
        assert len(out) == 3
        assert all(t.root.tag == "section" for t in out)

    def test_tag_scan_restricted_to_doc(self, store):
        out = execute(TagScan(store, "title", doc_name="reviews.xml"))
        assert len(out) == 2

    def test_termjoin_scan_lazy_nodes(self, store):
        scorer = WeightedCountScorer(["search"])
        op = TermJoinScan(store, ["search"], TermJoin(store, scorer))
        out = execute(op)
        assert all(t.root.source is not None for t in out)
        assert all(not t.root.children for t in out)

    def test_termjoin_scan_min_score(self, store):
        scorer = WeightedCountScorer(["search"])
        op = TermJoinScan(store, ["search"], TermJoin(store, scorer),
                          min_score=2.0)
        out = execute(op)
        assert all(t.score > 2.0 for t in out)

    def test_phrasefinder_scan(self, store):
        out = execute(PhraseFinderScan(store, ["search", "engine"]))
        assert len(out) > 0
        assert all(t.root.attrs.get("phrase-count") for t in out)


class TestTreeOperators:
    def test_select_streams_witnesses(self, store):
        pat = query2_pattern()
        plan = Select(DocumentSource(store, "articles.xml"), pat)
        out = execute(plan)
        assert len(out) == 20

    def test_project(self, store):
        pat = query2_pattern()
        plan = Project(DocumentSource(store, "articles.xml"), pat,
                       ["$1", "$3", "$4"])
        out = execute(plan)
        assert len(out) == 1
        assert out[0].root.tag == "article"

    def test_product_cardinality(self, store):
        plan = Product(TagScan(store, "chapter"), TagScan(store, "review"))
        out = execute(plan)
        assert len(out) == 6
        assert all(t.root.tag == "tix_prod_root" for t in out)

    def test_join_is_select_over_product(self, store):
        from repro.exampledata import query3_pattern

        plan = Join(
            TagScan(store, "article"), TagScan(store, "review"),
            query3_pattern(),
        )
        out = execute(plan)
        assert len(out) > 0
        assert all(t.root.tag == "tix_prod_root" for t in out)


class TestScoreUtilizing:
    def _scored_plan(self, store, **kw):
        pat = query2_pattern()
        return Select(DocumentSource(store, "articles.xml"), pat)

    def test_threshold_v_streams(self, store):
        plan = ThresholdOp(self._scored_plan(store), "$4", min_score=1.0)
        out = execute(plan)
        # $4-scores strictly above 1.0: p(1.4), p(1.4), section(3.6),
        # chapter(5.0), article itself (5.6)
        assert len(out) == 5
        assert all(
            any(n.score > 1.0 for n in t.nodes() if "$4" in n.labels)
            for t in out
        )

    def test_threshold_counts(self, store):
        plan = ThresholdOp(self._scored_plan(store), "$4", min_score=0.0)
        out = execute(plan)
        nonzero = [t for t in out]
        plan_all = self._scored_plan(store)
        assert len(nonzero) < len(execute(plan_all))

    def test_threshold_top_k_blocking(self, store):
        plan = ThresholdOp(self._scored_plan(store), "$4", top_k=1)
        out = execute(plan)
        assert len(out) == 1
        best = [n for n in out[0].nodes() if "$4" in n.labels][0]
        assert best.score == pytest.approx(5.6)

    def test_pick_op(self, store):
        pat = query2_pattern()
        plan = PickOp(
            Project(DocumentSource(store, "articles.xml"), pat,
                    ["$1", "$3", "$4"]),
            "$4", pickfoo_criterion(), pat,
        )
        out = execute(plan)
        assert out[0].sketch() == (
            "article[5](sname,chapter[5](section-title[0.8],"
            "p[0.8],p[1.4],p[1.4]))"
        )

    def test_sort_and_limit(self, store):
        scorer = WeightedCountScorer(["search"], ["retrieval"])
        plan = Limit(
            Sort(TermJoinScan(store, ["search", "retrieval"],
                              TermJoin(store, scorer))),
            3,
        )
        out = execute(plan)
        assert len(out) == 3
        scores = [t.score for t in out]
        assert scores == sorted(scores, reverse=True)

    def test_union(self, store):
        plan = Union([TagScan(store, "chapter"), TagScan(store, "review")])
        out = execute(plan)
        assert [t.root.tag for t in out] == [
            "chapter", "chapter", "chapter", "review", "review",
        ]

    def test_materialize(self, store):
        scorer = WeightedCountScorer(["search"])
        plan = Materialize(
            TermJoinScan(store, ["search"], TermJoin(store, scorer)),
            store,
        )
        out = execute(plan)
        biggest = max(out, key=lambda t: t.n_nodes())
        assert biggest.n_nodes() > 1
        assert biggest.score is not None


class TestExplain:
    def test_explain_shows_rows(self, store):
        plan = Limit(TagScan(store, "p"), 2)
        execute(plan)
        text = explain(plan)
        assert "limit(2) [rows=2]" in text
        assert "tag-scan(<p>) [rows=" in text
