"""EXPLAIN ANALYZE and operator-instrumentation tests: per-operator
stats collection, recursive reset on re-execution, the open() error
path, and the zero-overhead-when-disabled contract."""

import time

import pytest

from repro import obs
from repro.access.termjoin import TermJoin
from repro.core.scoring import WeightedCountScorer
from repro.engine import (
    Limit,
    Sort,
    TagScan,
    TermJoinScan,
    execute,
    explain,
)
from repro.engine.base import Operator, plan_stats
from repro.errors import PlanError
from repro.exampledata import example_store


@pytest.fixture()
def store():
    return example_store()


def _scorer(terms):
    return WeightedCountScorer([terms[0]], list(terms[1:]))


def _plan(store):
    return Limit(
        Sort(TermJoinScan(store, ["search"],
                          TermJoin(store, _scorer(["search"]))),
             key=lambda t: -t.score),
        2,
    )


class TestExplainAnalyze:
    def test_default_format_unchanged(self, store):
        plan = _plan(store)
        execute(plan)
        text = explain(plan)
        assert "[rows=" in text
        assert "time=" not in text and "loops=" not in text

    def test_analyze_line_format(self, store):
        plan = _plan(store)
        with obs.collecting():
            execute(plan)
        text = explain(plan, analyze=True)
        for op_line in text.splitlines():
            assert "time=" in op_line
            assert "rows=" in op_line
            assert "loops=" in op_line

    def test_analyze_shows_access_method_counters(self, store):
        plan = TermJoinScan(store, ["search"],
                            TermJoin(store, _scorer(["search"])))
        with obs.collecting():
            execute(plan)
        text = explain(plan, analyze=True)
        assert "postings_scanned=" in text
        assert "stack_pushes=" in text

    def test_counters_kept_without_collector(self, store):
        # rows and access-method counters are exact on every run;
        # timings/loops need a collector.
        plan = _plan(store)
        execute(plan)
        scan = plan.children[0].children[0]
        assert scan.stats.counters["postings_scanned"] > 0
        assert scan.stats.loops == 0
        assert scan.stats.total_ns == 0

    def test_plan_stats_tree(self, store):
        plan = _plan(store)
        with obs.collecting():
            execute(plan)
        stats = plan_stats(plan)
        assert stats["operator"] == "limit"
        assert stats["rows"] == 2
        assert stats["time_ms"] >= stats["self_time_ms"] >= 0.0
        (sort_stats,) = stats["children"]
        (scan_stats,) = sort_stats["children"]
        assert scan_stats["operator"] == "termjoin-scan"
        assert scan_stats["counters"]["postings_scanned"] > 0

    def test_stats_reset_recursively_on_reexecution(self, store):
        plan = _plan(store)
        with obs.collecting():
            execute(plan)

        def collect(op):
            yield op
            for c in op.children:
                for x in collect(c):
                    yield x

        first = {id(op): (op.stats.loops, dict(op.stats.counters),
                          op.rows_out) for op in collect(plan)}
        with obs.collecting():
            execute(plan)
        for op in collect(plan):
            loops, counters, rows = first[id(op)]
            assert op.stats.loops == loops, op.name       # not doubled
            assert op.stats.counters == counters, op.name
            assert op.rows_out == rows, op.name


class _FailingOpen(Operator):
    name = "failing-open"

    def _open(self):
        raise RuntimeError("boom")

    def _next(self):
        return None


class _CloseTracking(Operator):
    name = "close-tracking"

    def __init__(self, children=()):
        super().__init__(children)
        self.closes = 0

    def _next(self):
        return None

    def _close(self):
        self.closes += 1


class TestOpenErrorPath:
    def test_failed_open_closes_opened_children(self):
        ok = _CloseTracking()
        parent = _FailingOpen([ok])
        with pytest.raises(RuntimeError, match="boom"):
            parent.open()
        assert ok.closes == 1             # opened child was closed again
        assert not ok._opened
        assert not parent._opened

    def test_failed_child_open_closes_earlier_siblings(self):
        first = _CloseTracking()
        bad = _FailingOpen()
        parent = _CloseTracking([first, bad])
        with pytest.raises(RuntimeError):
            parent.open()
        assert first.closes == 1
        assert not parent._opened
        # next()/close() on the unopened tree still raise cleanly.
        with pytest.raises(PlanError):
            parent.next()
        with pytest.raises(PlanError):
            parent.close()

    def test_tree_reusable_after_failed_open(self):
        bad = _FailingOpen()
        first = _CloseTracking()
        parent = _CloseTracking([first, bad])
        with pytest.raises(RuntimeError):
            parent.open()
        bad._open = lambda: None          # "fix" the failure
        assert execute(parent) == []
        assert first.closes == 2          # error path + normal close

    def test_failed_open_under_collector(self):
        with obs.collecting() as col:
            with pytest.raises(RuntimeError):
                _FailingOpen([_CloseTracking()]).open()
        # spans were closed despite the exception
        assert not col.tracer._local.stack


class _SeedTermJoin(TermJoin):
    """``TermJoin.run`` exactly as it was before the observability layer
    landed (copied from the seed commit): the baseline against which the
    disabled-instrumentation overhead is asserted."""

    def run(self, terms):
        from repro.access.results import ScoredElement
        from repro.access.termjoin import _StackEntry
        from repro.index.inverted import P_DOC, P_NODE, P_OFFSET, P_POS

        index = self.store.index
        counters = self.store.counters
        track = self.complex_scoring

        merged = []
        for term in terms:
            postings = index.postings(term)
            counters.index_lookups += 1
            counters.postings_read += len(postings)
            merged.extend(
                (p[P_DOC], p[P_POS], p[P_NODE], p[P_OFFSET], term)
                for p in postings
            )
        merged.sort()

        out = []
        stack = []
        cur_doc = None
        cur_doc_id = -1
        parents = []
        ends = []

        def pop_and_emit():
            popped = stack.pop()
            if stack:
                top = stack[-1]
                for t, c in popped.counts.items():
                    top.counts[t] = top.counts.get(t, 0) + c
                if track:
                    top.occs.extend(popped.occs)
                top.relevant_children += 1
            if track:
                n_children = self._child_count(cur_doc, popped.node_id)
                popped.occs.sort(key=lambda o: (o[1], o[2]))
                score = self.scorer.score_from_occurrences(
                    popped.occs, n_children, popped.relevant_children
                )
            else:
                score = self.scorer.score_from_counts(popped.counts)
            out.append(ScoredElement(cur_doc_id, popped.node_id, score))

        for doc_id, pos, node_id, offset, term in merged:
            if doc_id != cur_doc_id:
                while stack:
                    pop_and_emit()
                cur_doc = self.store.document(doc_id)
                cur_doc_id = doc_id
                parents = cur_doc.parents
                ends = cur_doc.ends
            while stack and ends[stack[-1].node_id] < pos:
                pop_and_emit()
            top_node = stack[-1].node_id if stack else -1
            chain = []
            cur = node_id
            while cur != -1 and cur != top_node:
                chain.append(cur)
                cur = parents[cur]
            for nid in reversed(chain):
                stack.append(_StackEntry(nid, track))
            top = stack[-1]
            top.counts[term] = top.counts.get(term, 0) + 1
            if track:
                top.occs.append((term, node_id, offset))

        while stack:
            pop_and_emit()
        return out


class TestDisabledOverhead:
    """The zero-overhead contract: with no collector installed, the
    instrumented TermJoin (the Table-1 workhorse) must stay within 5%
    of its seed version on a Table-1-shaped query."""

    def test_disabled_overhead_under_five_percent(self):
        from repro.workload import generate_corpus, table123_spec

        assert not obs.RECORDER.enabled
        spec, rows = table123_spec(scale=0.05, n_articles=200)
        store = generate_corpus(spec)
        store.index                         # build outside the timings
        row = max(rows["table1"], key=lambda r: r.label)
        terms = list(row.terms)
        scorer = _scorer(terms)
        inst = TermJoin(store, scorer)
        seed = _SeedTermJoin(store, scorer)
        assert [(e.node_id, e.score) for e in inst.run(terms)] == \
               [(e.node_id, e.score) for e in seed.run(terms)]

        def best_of(method, reps=5):
            best = float("inf")
            for _ in range(reps):
                t0 = time.perf_counter()
                method.run(terms)
                best = min(best, time.perf_counter() - t0)
            return best

        # Timing comparisons are noisy: accept the first attempt whose
        # best-of-5 ratio is under the bound rather than averaging noise
        # into a flake.
        ratios = []
        for _ in range(5):
            ratio = best_of(inst) / best_of(seed)
            ratios.append(ratio)
            if ratio < 1.05:
                return
        pytest.fail(
            "disabled instrumentation overhead >= 5% in every attempt: "
            + ", ".join(f"{r:.3f}" for r in ratios)
        )

