"""End-to-end tests of the query server and pooled client over real
sockets: typed error round trips, guard budgets across the wire, the
overload ladder, draining shutdown, pool reuse, and the breaker."""

import socket
import struct
import threading
import time

import pytest

from repro import obs
from repro.errors import (
    CircuitOpenError,
    OverloadedError,
    ProtocolError,
    QuerySyntaxError,
    ResourceExhaustedError,
    TIXError,
)
from repro.exampledata import example_store
from repro.query import run_query
from repro.resilience.run import GuardedResult
from repro.server import (
    CircuitBreaker,
    Connection,
    PooledClient,
    QueryServer,
    run_loadtest,
)
from repro.server.protocol import read_frame, request, write_frame

QUERY = (
    'For $x in document("articles.xml")//section '
    'Score $x using ScoreFoo($x, {"search engine"}, {"internet"}) '
    'Return $x Sortby(score)'
)


@pytest.fixture()
def server():
    srv = QueryServer(example_store(), port=0)
    srv.start()
    yield srv
    srv.close(drain_s=2.0)


@pytest.fixture()
def client(server):
    with PooledClient(server.host, server.port,
                      call_timeout_s=10.0) as cl:
        yield cl


class _GatedRunner:
    """Deterministic slow runner: blocks until released, honouring the
    guard's cancellation token and degrade flag like the real engine."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()

    def __call__(self, source, guard):
        self.started.set()
        while not self.release.wait(0.01):
            try:
                guard.tick()
            except Exception as exc:
                if guard.degrade:
                    return GuardedResult(
                        [], truncated=True, reason=str(exc), error=exc,
                    )
                raise
        return GuardedResult(["<done/>"])


class TestQueryRoundTrip:
    def test_results_match_local_run(self, server, client):
        local = run_query(server.store, QUERY)
        remote = client.query(QUERY, with_scores=False)
        assert remote.n_results == len(local)
        assert not remote.truncated and not remote.degraded
        assert remote.generation == server.store.generation
        assert [r.xml for r in remote.rows] \
            == [t.to_xml(with_scores=False) for t in local]

    def test_scores_cross_the_wire(self, server, client):
        local = run_query(server.store, QUERY)
        remote = client.query(QUERY)
        assert [r.score for r in remote.rows] \
            == [t.score for t in local]

    def test_syntax_error_reraises_typed(self, client):
        with pytest.raises(QuerySyntaxError):
            client.query("For $x in nonsense ((( Return $x")

    def test_strict_row_budget_trips_typed(self, client):
        with pytest.raises(ResourceExhaustedError, match="row budget"):
            client.query(QUERY, max_rows=1, degrade=False)

    def test_degrade_returns_truncated_prefix(self, server, client):
        local = run_query(server.store, QUERY)
        remote = client.query(QUERY, max_rows=1, degrade=True)
        assert remote.truncated and "row budget" in remote.reason
        assert remote.n_results == 1
        assert remote.rows[0].xml == local[0].to_xml(with_scores=False)

    def test_ping_and_stats(self, client):
        assert client.ping()
        stats = client.stats()
        assert stats["draining"] is False
        assert stats["admitted"] >= 0

    def test_sequential_calls_reuse_the_pooled_connection(
            self, server, client):
        col = obs.Collector()
        obs.install(col)
        try:
            for _ in range(3):
                assert client.query(QUERY).n_results > 0
            snapshot = col.metrics.snapshot()
            # one TCP connection total, three requests over it
            assert snapshot.get("server.connections", 0) <= 1
            assert snapshot.get("server.requests.query", 0) == 3
        finally:
            obs.uninstall()


class TestBadRequests:
    def _raw(self, server, frame):
        with socket.create_connection(
                (server.host, server.port), timeout=5.0) as sock:
            write_frame(sock, frame)
            return read_frame(sock)

    def test_unsupported_version(self, server):
        resp = self._raw(server, {"v": 99, "id": 1, "op": "ping"})
        assert resp["ok"] is False
        assert resp["error"]["code"] == "BAD_REQUEST"

    def test_unknown_op(self, server):
        resp = self._raw(server, request("drop_tables", 1))
        assert resp["error"]["code"] == "BAD_REQUEST"

    def test_query_without_text(self, server):
        resp = self._raw(server, request("query", 1, q="   "))
        assert resp["error"]["code"] == "BAD_REQUEST"

    def test_torn_frame_answered_typed_then_closed(self, server):
        with socket.create_connection(
                (server.host, server.port), timeout=5.0) as sock:
            sock.sendall(struct.pack("!I", 64) + b'{"v":')
            sock.shutdown(socket.SHUT_WR)
            resp = read_frame(sock)
            assert resp["ok"] is False
            assert resp["error"]["code"] == "BAD_FRAME"
            assert read_frame(sock) is None  # server closed cleanly

    def test_oversized_frame_rejected(self):
        srv = QueryServer(example_store(), port=0, max_frame_bytes=512)
        srv.start()
        try:
            with socket.create_connection(
                    (srv.host, srv.port), timeout=5.0) as sock:
                payload = b'{"pad":"' + b"x" * 600 + b'"}'
                sock.sendall(struct.pack("!I", len(payload)) + payload)
                resp = read_frame(sock)
                assert resp["error"]["code"] == "BAD_FRAME"
        finally:
            srv.close(drain_s=1.0)


class TestOverloadLadder:
    def test_second_query_rejected_overloaded(self):
        runner = _GatedRunner()
        srv = QueryServer(example_store(), port=0, max_inflight=1,
                          queue_timeout_ms=30.0, runner=runner)
        srv.start()
        c1 = PooledClient(srv.host, srv.port, call_timeout_s=10.0)
        c2 = PooledClient(srv.host, srv.port, call_timeout_s=10.0)
        try:
            first = []
            th = threading.Thread(
                target=lambda: first.append(client_query(c1)))
            th.start()
            assert runner.started.wait(5.0)
            with pytest.raises(OverloadedError):
                c2.query(QUERY)
            runner.release.set()
            th.join(5.0)
            assert first and first[0].n_results == 1
            # the rejection marked the overload sustained: the next
            # admitted query is degraded
            res = c2.query(QUERY)
            assert res.degraded
        finally:
            c1.close()
            c2.close()
            srv.close(drain_s=1.0)

    def test_draining_close_answers_inflight(self):
        runner = _GatedRunner()
        srv = QueryServer(example_store(), port=0, runner=runner)
        srv.start()
        cl = PooledClient(srv.host, srv.port, call_timeout_s=10.0)
        results = []
        try:
            th = threading.Thread(
                target=lambda: results.append(client_query(cl)))
            th.start()
            assert runner.started.wait(5.0)
            releaser = threading.Timer(0.1, runner.release.set)
            releaser.start()
            drained = srv.close(drain_s=5.0)
            th.join(5.0)
            assert drained is True
            assert results and results[0].n_results == 1
        finally:
            cl.close()

    def test_drain_timeout_cancels_via_guard_token(self):
        runner = _GatedRunner()  # never released: must be cancelled
        srv = QueryServer(example_store(), port=0, runner=runner)
        srv.start()
        cl = PooledClient(srv.host, srv.port, call_timeout_s=10.0,
                          retries=1)
        outcome = []

        def call():
            try:
                outcome.append(cl.query(QUERY, degrade=True))
            except (TIXError, OSError) as exc:
                outcome.append(exc)

        th = threading.Thread(target=call)
        th.start()
        try:
            assert runner.started.wait(5.0)
            drained = srv.close(drain_s=0.1, cancel_grace_s=2.0)
            th.join(5.0)
            assert not th.is_alive()
            # cancelled cooperatively within the grace period: the
            # degrade-mode request was still *answered* (truncated)
            assert drained is True
            assert outcome and not isinstance(outcome[0], Exception)
            assert outcome[0].truncated
            assert "cancelled" in outcome[0].reason
        finally:
            cl.close()


def client_query(cl, **kw):
    return cl.query(QUERY, **kw)


class TestPoolAndBreaker:
    def test_breaker_opens_after_consecutive_connect_failures(self):
        # grab a port with nothing listening on it
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        cl = PooledClient("127.0.0.1", port, retries=1,
                          breaker_threshold=2, breaker_cooldown_s=30.0,
                          connect_timeout_s=0.2)
        try:
            for _ in range(2):
                with pytest.raises(OSError):
                    cl.query(QUERY)
            assert cl.breaker.state == "open"
            t0 = time.monotonic()
            with pytest.raises(CircuitOpenError):
                cl.query(QUERY)
            # fail-fast: no connect attempt, no timeout wait
            assert time.monotonic() - t0 < 0.2
        finally:
            cl.close()

    def test_breaker_half_open_probe_closes_on_success(self, server):
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.05)
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        time.sleep(0.1)
        assert breaker.state == "half-open"
        assert breaker.allow()      # exactly one probe
        assert not breaker.allow()  # the second is refused
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_client_retries_transient_failure_on_fresh_connection(
            self, server):
        cl = PooledClient(server.host, server.port, retries=3,
                          retry_base_s=0.001, call_timeout_s=10.0,
                          seed=7)
        try:
            first = cl.query(QUERY)
            assert first.n_results > 0
            # poison the pooled socket: the server never sees a valid
            # frame on it again, so the next call's first attempt dies
            # and the retry must succeed on a fresh connection
            with cl._lock:
                assert cl._idle
                cl._idle[0]._sock.close()
            second = cl.query(QUERY)
            assert second.n_results == first.n_results
        finally:
            cl.close()

    def test_non_oserror_probe_failure_does_not_wedge_breaker(
            self, monkeypatch):
        # Regression: a non-OSError escaping Connection.connect during
        # the half-open probe must hand the probe token back.  Before
        # the BaseException handler in _connect, ``_probing`` stayed
        # True forever and no thread was ever allowed to probe again.
        cl = PooledClient("127.0.0.1", 1, retries=1,
                          breaker_threshold=1, breaker_cooldown_s=0.05)
        monkeypatch.setattr(
            Connection, "connect",
            staticmethod(lambda *a, **kw: (_ for _ in ()).throw(
                RuntimeError("boom"))))
        try:
            with pytest.raises(RuntimeError):
                cl._connect()
            assert cl.breaker.state == "open"
            time.sleep(0.1)
            assert cl.breaker.state == "half-open"
            with pytest.raises(RuntimeError):
                cl._connect()  # the probe itself fails non-OSError
            time.sleep(0.1)
            # The breaker still grants a probe after each cooldown —
            # it has not wedged.
            assert cl.breaker.allow()
        finally:
            cl.breaker.record_failure()  # return the probe token
            cl.close()

    def test_half_open_grants_exactly_one_probe_under_contention(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.02)
        for _ in range(20):
            breaker.record_failure()
            time.sleep(0.04)
            assert breaker.state == "half-open"
            grants = []
            barrier = threading.Barrier(8)

            def contender():
                barrier.wait()
                if breaker.allow():
                    grants.append(threading.get_ident())

            threads = [threading.Thread(target=contender)
                       for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(5.0)
            # The unlocked read-modify-write on ``_probing`` would let
            # several contenders through here.
            assert len(grants) == 1
        breaker.record_success()
        assert breaker.state == "closed"

    def test_connection_rejects_mismatched_response_id(self):
        ours, theirs = socket.socketpair()

        def fake_server():
            req = read_frame(theirs)
            write_frame(theirs, {"v": 1, "id": req["id"] + 7,
                                 "ok": True, "pong": True})

        th = threading.Thread(target=fake_server)
        th.start()
        conn = Connection(ours, call_timeout_s=5.0)
        try:
            with pytest.raises(ProtocolError, match="does not match"):
                conn.call("ping")
        finally:
            th.join(5.0)
            conn.close()
            theirs.close()

    def test_loadtest_smoke(self, server):
        report = run_loadtest(server.host, server.port, [QUERY],
                              clients=2, total=6, seed=3)
        assert report.sent == 6
        assert report.n_ok == 6
        assert report.n_transport_errors == 0
        d = report.to_dict()
        assert d["sent"] == 6 and d["clients"] == 2
        assert "loadtest: 6 requests" in report.render()
