"""Wire-protocol unit tests: framing round trips, torn/oversized/
malformed frame hardening, and the error-code taxonomy."""

import json
import socket
import struct

import pytest

from repro.errors import (
    CircuitOpenError,
    DocumentNotFoundError,
    OverloadedError,
    PlanError,
    ProtocolError,
    QueryCancelledError,
    QuerySyntaxError,
    QueryTimeoutError,
    ResourceExhaustedError,
    ShuttingDownError,
    TIXError,
)
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    error_code,
    error_response,
    exception_for,
    ok_response,
    raise_for_error,
    read_frame,
    request,
    write_frame,
)


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_round_trip(self, pair):
        a, b = pair
        frame = request("query", 7, q="For $x in X Return $x",
                        timeout_ms=50.0)
        write_frame(a, frame)
        got = read_frame(b)
        assert got == frame
        assert got["v"] == PROTOCOL_VERSION and got["id"] == 7

    def test_many_frames_in_order(self, pair):
        a, b = pair
        for i in range(5):
            write_frame(a, ok_response(i, n=i))
        for i in range(5):
            got = read_frame(b)
            assert got["id"] == i and got["n"] == i

    def test_clean_close_reads_none(self, pair):
        a, b = pair
        a.close()
        assert read_frame(b) is None

    def test_torn_frame_mid_body(self, pair):
        a, b = pair
        a.sendall(struct.pack("!I", 100) + b'{"tru')
        a.close()
        with pytest.raises(ProtocolError, match="torn frame"):
            read_frame(b)

    def test_torn_frame_mid_header(self, pair):
        a, b = pair
        a.sendall(b"\x00\x00")
        a.close()
        with pytest.raises(ProtocolError, match="torn frame"):
            read_frame(b)

    def test_oversized_frame_rejected_before_allocation(self, pair):
        a, b = pair
        # A hostile length prefix alone must trip the limit — no body
        # is ever sent, so a vulnerable reader would block or allocate.
        a.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            read_frame(b)

    def test_write_respects_max_bytes(self, pair):
        a, _b = pair
        with pytest.raises(ProtocolError, match="exceeds"):
            write_frame(a, {"blob": "x" * 2048}, max_bytes=1024)

    def test_non_json_body(self, pair):
        a, b = pair
        body = b"not json at all"
        a.sendall(struct.pack("!I", len(body)) + body)
        with pytest.raises(ProtocolError, match="not valid JSON"):
            read_frame(b)

    def test_non_object_body(self, pair):
        a, b = pair
        body = json.dumps([1, 2, 3]).encode()
        a.sendall(struct.pack("!I", len(body)) + body)
        with pytest.raises(ProtocolError, match="JSON object"):
            read_frame(b)


class TestErrorTaxonomy:
    @pytest.mark.parametrize("exc,code", [
        (QueryTimeoutError("t"), "TIMEOUT"),
        (QueryCancelledError("c"), "CANCELLED"),
        (ResourceExhaustedError("r"), "RESOURCE_EXHAUSTED"),
        (QuerySyntaxError("s"), "SYNTAX"),
        (PlanError("p"), "PLAN"),
        (DocumentNotFoundError("d"), "NOT_FOUND"),
        (OverloadedError("o"), "OVERLOADED"),
        (ShuttingDownError("sd"), "SHUTTING_DOWN"),
        (CircuitOpenError("co"), "CIRCUIT_OPEN"),
        (ProtocolError("pf"), "BAD_FRAME"),
        (TIXError("e"), "ENGINE"),
        (ValueError("v"), "INTERNAL"),
    ])
    def test_error_code_mapping(self, exc, code):
        assert error_code(exc) == code

    def test_exception_for_inverts_the_mapping(self):
        for exc in (QueryTimeoutError("x"), OverloadedError("x"),
                    QuerySyntaxError("x"), ShuttingDownError("x")):
            code = error_code(exc)
            back = exception_for(code, "msg")
            assert type(back) is type(exc)

    def test_unknown_code_falls_back_to_tixerror(self):
        exc = exception_for("SOME_FUTURE_CODE", "m")
        assert type(exc) is TIXError

    def test_envelope_round_trip(self):
        resp = error_response(42, QueryTimeoutError("too slow"))
        assert resp["ok"] is False and resp["id"] == 42
        env = resp["error"]
        assert env["code"] == "TIMEOUT"
        assert env["type"] == "QueryTimeoutError"
        with pytest.raises(QueryTimeoutError, match="too slow"):
            raise_for_error(resp)

    def test_code_override(self):
        resp = error_response(1, ProtocolError("bad v"),
                              code="BAD_REQUEST")
        assert resp["error"]["code"] == "BAD_REQUEST"
        # unknown wire code → generic engine error client-side
        with pytest.raises(TIXError, match="bad v"):
            raise_for_error(resp)

    def test_ok_response_passes_through(self):
        resp = ok_response(9, rows=[], n=0)
        assert raise_for_error(resp) is resp
