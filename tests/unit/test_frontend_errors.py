"""Front-end error-path coverage: malformed extended-XQuery and NEXI
inputs must fail with positioned ``QuerySyntaxError`` /
``QueryCompileError`` — never a raw ``IndexError`` / ``AttributeError``
from deep inside the lexer or parser — and the ``UnknownTermError``
strict/non-strict contract must be consistent across every access
method."""

import pytest

from repro.errors import (
    QueryCompileError,
    QuerySyntaxError,
    TIXError,
    UnknownTermError,
)
from repro.exampledata import example_store


@pytest.fixture(scope="module")
def store():
    return example_store()


# A corpus of malformed extended-XQuery inputs: each is a distinct way a
# query can be broken (truncation, bad nesting, missing keywords, stray
# tokens, malformed constructors).
BAD_XQUERY = [
    "",                                        # empty input
    "For",                                     # truncated after keyword
    "For $a",                                  # missing in/:=
    "For $a in",                               # missing source expr
    "For $a in document(",                     # unclosed call
    'For $a in document("d.xml")//',           # dangling path step
    "For $a in $b/x",                          # missing Return
    "For $a in $b/x Return",                   # missing return expr
    "For $a in $b/x Return $a extra",          # trailing garbage
    "For $a in $b/x Score $a Return $a",       # Score without using
    "For $a in $b/x Return <r>{ $a }</s>",     # mismatched ctor close
    "For $a in $b/x Return <r { $a }</r>",     # malformed ctor open
    "Let $a Return $a",                        # Let without :=
    "For $a in $b/x Sortby() Return $a",       # clause out of order
    "For $a in $b/x Return $a Threshold",      # truncated Threshold
]


class TestXQuerySyntaxErrors:
    @pytest.mark.parametrize("src", BAD_XQUERY)
    def test_bad_query_raises_positioned_syntax_error(self, src):
        from repro.query import parse_query

        with pytest.raises(QuerySyntaxError) as ei:
            parse_query(src)
        # never a bare parser crash: the error is a TIXError with
        # 1-based position attributes
        assert isinstance(ei.value, TIXError)
        assert ei.value.line >= 0 and ei.value.column >= 0

    def test_position_points_at_offending_line(self):
        from repro.query import parse_query

        with pytest.raises(QuerySyntaxError) as ei:
            parse_query("For $a in $b/x\nReturn <r>{ $a }</s>")
        assert ei.value.line == 2
        assert ei.value.column > 0
        assert "line 2" in str(ei.value)


class TestNexiSyntaxErrors:
    @pytest.mark.parametrize("src", [
        "", "//", "//a[", "//a[]", "//a[about]", "//a[about(]",
        "//a[about(., )]", "//a[about(x, y)]", "//a[about(., x)",
        "//a[about(., x) and]", "//a[about(., x) junk]",
    ])
    def test_bad_nexi_raises_syntax_error(self, src):
        from repro.nexi import parse_nexi

        with pytest.raises(QuerySyntaxError):
            parse_nexi(src)

    def test_nexi_error_carries_column(self):
        from repro.nexi import parse_nexi

        with pytest.raises(QuerySyntaxError) as ei:
            parse_nexi("//a[about(x, y)]")
        assert ei.value.line == 1
        assert ei.value.column == 11  # the 'x' where '.' was expected

    def test_nexi_bad_character_column(self):
        from repro.nexi import parse_nexi

        with pytest.raises(QuerySyntaxError) as ei:
            parse_nexi("//a[about(., x$)]")
        assert ei.value.column == 15  # the '$'


class TestCompileErrors:
    @pytest.mark.parametrize("src, match", [
        ('<x>hi</x>', "FLWOR"),
        ('For $a in document("articles.xml")//p '
         'Score $a using ScoreFooExact($a, {"x"}) Return $a Sortby(score)',
         "descendant-or-self"),
        ('For $a in document("articles.xml")'
         '//p/descendant-or-self::* '
         'Score $a using ScoreFooExact($a, {"x"}) '
         'Pick $a using PickFoo($a) Return $a',
         "not compilable"),
    ])
    def test_non_compilable_raises_compile_error(self, store, src, match):
        from repro.query import parse_query
        from repro.query.compiler import compile_query

        with pytest.raises(QueryCompileError, match=match):
            compile_query(store, parse_query(src))


class TestUnknownTermContract:
    """index.postings, TermJoin, and PhraseFinder must agree: unknown
    terms are empty posting lists by default and ``UnknownTermError``
    under ``strict=True``."""

    MISSING = "zzz_not_in_any_document"

    def test_index_default_empty(self, store):
        assert len(store.index.postings(self.MISSING)) == 0

    def test_index_strict_raises(self, store):
        with pytest.raises(UnknownTermError, match=self.MISSING):
            store.index.postings(self.MISSING, strict=True)

    def test_termjoin_default_scores_known_terms_only(self, store):
        from repro.access.termjoin import TermJoin
        from repro.core.scoring import WeightedCountScorer

        scorer = WeightedCountScorer(["search", self.MISSING])
        out = TermJoin(store, scorer).run(["search", self.MISSING])
        assert out  # the known term still produces results

    def test_termjoin_strict_raises(self, store):
        from repro.access.termjoin import TermJoin
        from repro.core.scoring import WeightedCountScorer

        scorer = WeightedCountScorer(["search", self.MISSING])
        tj = TermJoin(store, scorer, strict=True)
        with pytest.raises(UnknownTermError, match=self.MISSING):
            tj.run(["search", self.MISSING])

    def test_phrasefinder_default_empty(self, store):
        from repro.access.phrasefinder import PhraseFinder

        assert PhraseFinder(store).run(["search", self.MISSING]) == []

    def test_phrasefinder_strict_raises(self, store):
        from repro.access.phrasefinder import PhraseFinder

        pf = PhraseFinder(store, strict=True)
        with pytest.raises(UnknownTermError, match=self.MISSING):
            pf.run([self.MISSING, "engine"])

    def test_strict_and_default_agree_on_known_terms(self, store):
        from repro.access.termjoin import TermJoin
        from repro.core.scoring import WeightedCountScorer

        scorer = WeightedCountScorer(["search"])
        default = TermJoin(store, scorer).run(["search"])
        strict = TermJoin(store, scorer, strict=True).run(["search"])
        assert [(r.doc_id, r.node_id, r.score) for r in default] == \
            [(r.doc_id, r.node_id, r.score) for r in strict]
