"""Unit tests for the probabilistic-XML scoring adapter."""

import pytest

from repro.core.operators import scored_selection, threshold
from repro.core.pattern import (
    EdgeType,
    PatternNode,
    ScoredPatternTree,
)
from repro.core.probability import (
    ProbabilityScore,
    combine_independent,
    combine_mutually_exclusive,
    existence_probability,
    node_probability,
    prune_below,
)
from repro.core.trees import tree_from_document
from repro.xmldb.parser import parse_document

PROB_DOC = """
<person prob="1.0">
  <address prob="0.8">
    <city prob="0.5">ann arbor</city>
  </address>
  <phone prob="0.9">5551234</phone>
  <nickname>jag</nickname>
</person>
"""


@pytest.fixture()
def tree():
    return tree_from_document(parse_document(PROB_DOC))


class TestPrimitives:
    def test_node_probability(self, tree):
        addr = tree.root.find_by_tag("address")[0]
        assert node_probability(addr) == pytest.approx(0.8)

    def test_missing_prob_is_one(self, tree):
        nick = tree.root.find_by_tag("nickname")[0]
        assert node_probability(nick) == 1.0

    def test_invalid_prob_is_one(self):
        t = tree_from_document(parse_document('<a prob="oops"/>'))
        assert node_probability(t.root) == 1.0

    def test_clamping(self):
        t = tree_from_document(parse_document('<a prob="1.7"/>'))
        assert node_probability(t.root) == 1.0

    def test_existence_is_path_product(self, tree):
        city = tree.root.find_by_tag("city")[0]
        assert existence_probability(tree, city) == \
            pytest.approx(1.0 * 0.8 * 0.5)

    def test_root_existence(self, tree):
        assert existence_probability(tree, tree.root) == 1.0


class TestCombiners:
    def test_independent_noisy_or(self):
        assert combine_independent(0.5, 0.5) == pytest.approx(0.75)
        assert combine_independent() == 0.0
        assert combine_independent(1.0, 0.3) == 1.0

    def test_mutually_exclusive_sum(self):
        assert combine_mutually_exclusive(0.3, 0.4) == pytest.approx(0.7)
        assert combine_mutually_exclusive(0.8, 0.8) == 1.0


class TestAsScores:
    def test_selection_with_probability_scores(self, tree):
        p1 = PatternNode("$1", tag="person")
        p1.add_child(PatternNode("$2", tag="city"), EdgeType.AD)
        pattern = ScoredPatternTree(p1, scoring={
            "$2": ProbabilityScore(tree),
        })
        out = scored_selection([tree], pattern)
        assert len(out) == 1
        city = [n for n in out[0].nodes() if "$2" in n.labels][0]
        assert city.score == pytest.approx(0.4)

    def test_threshold_on_probability(self, tree):
        p1 = PatternNode("$1", tag="person")
        p1.add_child(PatternNode("$2"), EdgeType.AD)
        pattern = ScoredPatternTree(p1, scoring={
            "$2": ProbabilityScore(tree),
        })
        out = scored_selection([tree], pattern)
        confident = threshold(out, "$2", min_score=0.5)
        tags = set()
        for t in confident:
            tags.update(
                n.tag for n in t.nodes() if "$2" in n.labels
            )
        assert "city" not in tags       # 0.4 < 0.5
        assert "phone" in tags          # 0.9
        assert "address" in tags        # 0.8


class TestPrune:
    def test_prune_drops_uncertain_subtrees(self, tree):
        pruned = prune_below(tree, 0.5)
        tags = {n.tag for n in pruned.nodes()}
        assert "city" not in tags   # absolute 0.4
        assert "address" in tags
        assert "phone" in tags

    def test_prune_scores_are_absolute(self, tree):
        pruned = prune_below(tree, 0.0)
        city = pruned.root.find_by_tag("city")[0]
        assert city.score == pytest.approx(0.4)

    def test_prune_root_below_threshold(self):
        t = tree_from_document(parse_document('<a prob="0.1"/>'))
        assert prune_below(t, 0.5) is None
