"""Unit tests for the repro.perf cache hierarchy: LRU semantics, the
postings-cache accounting contract, plan/result tiers, and — the part
that keeps the whole design honest — generation-based invalidation:
after a document add or remove, a stale answer must be unreachable."""

import pytest

from repro import obs
from repro.errors import ResourceExhaustedError, UnknownTermError
from repro.perf import (
    CachingIndex,
    LRUCache,
    QueryCache,
    normalize_query,
)
from repro.perf.lru import LRUCache as _LRU
from repro.query.parser import parse_query
from repro.resilience import QueryGuard
from repro.xmldb.parser import parse_document
from repro.xmldb.store import XMLStore


def make_store(extra_terms=""):
    store = XMLStore()
    store.load("a.xml", f"<article><t>alpha beta</t>"
                        f"<sec>alpha gamma {extra_terms}</sec></article>")
    return store


COMPILABLE = (
    'For $x in document("a.xml")//article/descendant-or-self::* '
    'Score $x using ScoreFooExact($x, {"alpha"}, {"beta"}) '
    "Return $x Sortby(score)"
)
EVALUATOR_ONLY = (
    'For $x in document("a.xml")//article/descendant-or-self::* '
    'Score $x using ScoreFoo($x, {"alpha"}, {"beta"}) '
    "Return $x Sortby(score)"
)


class TestLRUCache:
    def test_hit_miss_and_recency(self):
        c = LRUCache(capacity=3)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)
        assert c.get("a") == 1       # refreshes a
        c.put("d", 4)                # evicts b (LRU)
        assert c.get("b") is None
        assert c.get("a") == 1 and c.get("d") == 4
        assert c.evictions == 1

    def test_weight_bound_not_entry_bound(self):
        c = LRUCache(capacity=10)
        c.put("big", "x", weight=7)
        c.put("small", "y", weight=3)
        assert len(c) == 2 and c.weight == 10
        c.put("more", "z", weight=1)  # evicts "big"
        assert "big" not in c and c.weight == 4

    def test_oversized_value_bypasses_cache(self):
        c = LRUCache(capacity=5)
        c.put("keep", 1, weight=2)
        c.put("huge", 2, weight=6)
        assert "huge" not in c
        assert c.get("keep") == 1  # working set untouched

    def test_get_or_create_runs_factory_once_per_miss(self):
        c = LRUCache(capacity=10)
        calls = []
        factory = lambda: (calls.append(1) or "v", 1)  # noqa: E731
        assert c.get_or_create("k", factory) == "v"
        assert c.get_or_create("k", factory) == "v"
        assert len(calls) == 1

    def test_metrics_emitted_only_when_collecting(self):
        c = LRUCache(capacity=4, metric_prefix="cache.test")
        c.put("a", 1)
        c.get("a")
        with obs.collecting() as col:
            c.get("a")
            c.get("nope")
        snap = col.metrics.snapshot()
        assert snap["cache.test.hits"] == 1
        assert snap["cache.test.misses"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            _LRU(0)


class TestCachingIndex:
    def test_shares_cached_posting_lists(self):
        store = make_store()
        store.enable_postings_cache(capacity=1000)
        idx = store.index
        assert isinstance(idx, CachingIndex)
        assert idx.postings("alpha") is idx.postings("alpha")
        assert idx.cache.hits == 1 and idx.cache.misses == 1

    def test_agrees_with_unwrapped_index(self):
        plain = make_store()
        cached = make_store()
        cached.enable_postings_cache(capacity=1000)
        for term in ("alpha", "beta", "gamma", "missing"):
            assert (cached.index.postings(term).postings
                    == plain.index.postings(term).postings)
        assert cached.index.frequency("alpha") == \
            plain.index.frequency("alpha")
        assert cached.index.idf("beta") == plain.index.idf("beta")

    def test_strict_unknown_term_still_raises_after_misses(self):
        store = make_store()
        store.enable_postings_cache(capacity=1000)
        assert store.index.postings("missing").postings == []
        with pytest.raises(UnknownTermError):
            store.index.postings("missing", strict=True)

    def test_accounting_contract(self):
        """The fixed contract: postings_returned/bytes_read/decodes are
        cold-path only; a warm hit adds one posting_fetch + one
        cache_hit and nothing else (the old single-term cache in the
        compressed index double-counted postings_returned on hits)."""
        store = make_store()
        store.enable_index_compression()
        store.enable_postings_cache(capacity=1000)
        store.index  # build outside the collector
        with obs.collecting() as col:
            store.index.postings("alpha")   # cold
            store.index.postings("alpha")   # warm
            store.index.postings("alpha")   # warm
        snap = col.metrics.snapshot()
        assert snap["index.posting_fetches"] == 3
        assert snap["index.cache_hits"] == 2
        assert snap["index.posting_decodes"] == 1
        assert snap["index.postings_returned"] == \
            len(store.index.postings("alpha"))  # counted once, not 3x
        assert snap["cache.postings.hits"] == 2
        assert snap["cache.postings.misses"] == 1

    def test_compressed_index_rereads_without_inner_cache(self):
        """The compressed index itself decodes every call now — its old
        internal single-term cache is gone."""
        store = make_store()
        store.enable_index_compression()
        store.index
        with obs.collecting() as col:
            store.index.postings("alpha")
            store.index.postings("alpha")
        snap = col.metrics.snapshot()
        assert snap["index.posting_decodes"] == 2
        assert "index.cache_hits" not in snap


class TestNormalization:
    def test_spellings_normalize_equal(self):
        messy = COMPILABLE.replace(" Score", "\n\n   Score")
        assert normalize_query(messy).text == \
            normalize_query(COMPILABLE).text

    def test_different_queries_normalize_different(self):
        other = COMPILABLE.replace('"alpha"', '"gamma"')
        assert normalize_query(other).text != \
            normalize_query(COMPILABLE).text


class TestQueryCache:
    def test_result_tier_hits(self):
        store = make_store()
        cache = QueryCache(store)
        a = cache.run_query(COMPILABLE)
        b = cache.run_query(COMPILABLE)
        assert [t.score for t in a] == [t.score for t in b]
        assert cache.results.hits == 1
        assert b is not a  # callers get their own list

    def test_plan_tier_pools_and_reuses(self):
        store = make_store()
        cache = QueryCache(store, results=False)
        cache.run_query(COMPILABLE)
        cache.run_query(COMPILABLE)
        cache.run_query(COMPILABLE)
        assert cache.plans.misses == 1  # one compile
        assert cache.plans.hits == 2

    def test_plan_tally_survives_concurrent_counting(self):
        # Regression: hits/misses are bumped by batch-executor worker
        # threads; the unlocked ``+= 1`` lost increments under load.
        import threading

        store = make_store()
        cache = QueryCache(store, results=False)
        cache.run_query(COMPILABLE)  # prime: one compile
        per_thread, n_threads = 25, 4
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for _ in range(per_thread):
                cache.run_query(COMPILABLE)

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30.0)
        total = cache.plans.hits + cache.plans.misses
        assert total == per_thread * n_threads + 1

    def test_non_compilable_verdict_is_cached(self):
        store = make_store()
        cache = QueryCache(store, results=False)
        cache.run_query(EVALUATOR_ONLY)
        cache.run_query(EVALUATOR_ONLY)
        assert cache.plans.misses == 1  # the compiler ran once
        assert cache.plans.hits == 1    # the "no plan" verdict hit

    def test_custom_registry_bypasses_caching(self):
        from repro.query.functions import default_registry

        store = make_store()
        cache = QueryCache(store)
        reg = default_registry()
        a = cache.run_query(COMPILABLE, registry=reg)
        cache.run_query(COMPILABLE, registry=reg)
        assert a
        assert cache.results.hits == 0 and cache.plans.misses == 0

    def test_guarded_hit_enforces_row_budget(self):
        store = make_store()
        cache = QueryCache(store)
        full = cache.run_query(COMPILABLE)
        assert len(full) > 1
        res = cache.run_query_guarded(
            COMPILABLE, QueryGuard(max_rows=1, degrade=True)
        )
        assert res.truncated and len(res.results) == 1
        with pytest.raises(ResourceExhaustedError):
            cache.run_query_guarded(
                COMPILABLE, QueryGuard(max_rows=1, degrade=False)
            )

    def test_truncated_run_is_never_cached(self):
        store = make_store()
        cache = QueryCache(store)
        res = cache.run_query_guarded(
            COMPILABLE, QueryGuard(max_rows=1, degrade=True)
        )
        assert res.truncated
        assert len(cache.results._lru) == 0
        full = cache.run_query(COMPILABLE)
        assert len(full) > 1


class TestGenerationInvalidation:
    """Warm every cache tier, change the corpus, prove fresh answers."""

    def add_doc(self, store, text="alpha alpha alpha"):
        doc = parse_document(f"<article><t>{text}</t></article>",
                             name=f"new{store.generation}.xml",
                             doc_id=store.n_documents)
        store.add_document(doc)

    def test_generation_bumps_on_add_and_remove(self):
        store = make_store()
        g0 = store.generation
        self.add_doc(store)
        assert store.generation == g0 + 1
        store.remove_document("new" + str(g0) + ".xml")
        assert store.generation == g0 + 2

    def test_remove_document_renumbers(self):
        store = XMLStore()
        store.load("a.xml", "<r><x>alpha</x></r>")
        store.load("b.xml", "<r><x>beta</x></r>")
        store.load("c.xml", "<r><x>gamma</x></r>")
        store.remove_document("b.xml")
        assert [d.name for d in store.documents()] == ["a.xml", "c.xml"]
        assert [d.doc_id for d in store.documents()] == [0, 1]
        assert store.document("c.xml").doc_id == 1
        assert store.index.postings("gamma").postings[0][0] == 1

    def test_postings_cache_discarded_with_index(self):
        store = make_store()
        store.enable_postings_cache(capacity=1000)
        before = store.index.postings("alpha")
        self.add_doc(store, "alpha alpha")
        after = store.index.postings("alpha")
        assert len(after) == len(before) + 2  # fresh index, fresh cache

    def replace_queried_doc(self, store):
        """The stale-answer scenario: the document the warm queries were
        answered from is replaced by a richer version under the same
        name (remove + reload)."""
        store.remove_document("a.xml")
        store.load("a.xml", "<article><t>alpha beta</t>"
                            "<sec>alpha gamma</sec>"
                            "<sec>alpha beta alpha</sec></article>")

    def test_result_cache_cannot_serve_stale(self):
        store = make_store()
        cache = QueryCache(store)
        warm = cache.run_query(COMPILABLE)
        assert cache.results.hits == 0
        cache.run_query(COMPILABLE)
        assert cache.results.hits == 1  # the warm path really is warm
        self.replace_queried_doc(store)
        fresh = cache.run_query(COMPILABLE)
        assert len(fresh) > len(warm)

    def test_plan_cache_cannot_serve_stale(self):
        store = make_store()
        cache = QueryCache(store, results=False)
        warm = cache.run_query(COMPILABLE)
        self.replace_queried_doc(store)
        fresh = cache.run_query(COMPILABLE)
        assert len(fresh) > len(warm)
        assert cache.plans.misses == 2  # recompiled for the new key

    def test_evaluator_path_cannot_serve_stale(self):
        store = make_store()
        cache = QueryCache(store)
        warm = cache.run_query(EVALUATOR_ONLY)
        self.replace_queried_doc(store)
        fresh = cache.run_query(EVALUATOR_ONLY)
        assert len(fresh) > len(warm)

    def test_reference_results_match_after_invalidation(self):
        from repro.resilience import NullGuard, run_query_guarded

        store = make_store()
        cache = QueryCache(store)
        cache.run_query(COMPILABLE)
        self.replace_queried_doc(store)
        cached = cache.run_query(COMPILABLE)
        reference = run_query_guarded(
            store, COMPILABLE, NullGuard()
        ).results
        assert [t.score for t in cached] == [t.score for t in reference]
