"""Unit tests for the IR metrics and the scoring-quality workload."""

import pytest

from repro.bench.metrics import (
    average_precision,
    dcg_at_k,
    mean_average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)


class TestPrecisionRecall:
    def test_precision_at_k(self):
        ranked = ["a", "b", "c", "d"]
        rel = {"a", "c", "z"}
        assert precision_at_k(ranked, rel, 2) == 0.5
        assert precision_at_k(ranked, rel, 4) == 0.5
        assert precision_at_k(ranked, rel, 10) == pytest.approx(0.2)

    def test_recall_at_k(self):
        ranked = ["a", "b", "c"]
        rel = {"a", "c", "z"}
        assert recall_at_k(ranked, rel, 1) == pytest.approx(1 / 3)
        assert recall_at_k(ranked, rel, 3) == pytest.approx(2 / 3)

    def test_empty_relevant(self):
        assert recall_at_k(["a"], set(), 1) == 0.0
        assert average_precision(["a"], set()) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k(["a"], {"a"}, 0)
        with pytest.raises(ValueError):
            ndcg_at_k(["a"], {"a": 1.0}, 0)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision(["a", "b"], {"a", "b"}) == 1.0

    def test_known_value(self):
        # relevant at ranks 1 and 3 of {a,c}: (1/1 + 2/3)/2
        ap = average_precision(["a", "b", "c"], {"a", "c"})
        assert ap == pytest.approx((1.0 + 2 / 3) / 2)

    def test_unretrieved_counts_zero(self):
        ap = average_precision(["a"], {"a", "zz"})
        assert ap == pytest.approx(0.5)

    def test_map(self):
        m = mean_average_precision(
            [["a"], ["b"]], [{"a"}, {"zz"}]
        )
        assert m == pytest.approx(0.5)
        with pytest.raises(ValueError):
            mean_average_precision([["a"]], [])


class TestNDCG:
    def test_dcg_known(self):
        assert dcg_at_k([3.0, 2.0], 2) == \
            pytest.approx(3.0 + 2.0 / 1.584962500721156)

    def test_perfect_ndcg(self):
        gain = {"a": 3.0, "b": 1.0}
        assert ndcg_at_k(["a", "b"], gain, 2) == pytest.approx(1.0)

    def test_inverted_less_than_one(self):
        gain = {"a": 3.0, "b": 1.0}
        assert ndcg_at_k(["b", "a"], gain, 2) < 1.0

    def test_no_gains(self):
        assert ndcg_at_k(["a"], {}, 5) == 0.0


class TestReciprocalRank:
    def test_first_hit(self):
        assert reciprocal_rank(["x", "a"], {"a"}) == 0.5
        assert reciprocal_rank(["a"], {"a"}) == 1.0
        assert reciprocal_rank(["x"], {"a"}) == 0.0


class TestRelevanceWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        from repro.workload.relevance import build_relevance_workload

        return build_relevance_workload(
            n_articles=20, n_relevant=8, n_distractors=16, seed=5
        )

    def test_ground_truth_sizes(self, workload):
        assert len(workload.relevant) == 8
        assert len(workload.distractors) == 16
        assert not workload.relevant & workload.distractors

    def test_planted_terms_present(self, workload):
        idx = workload.store.index
        assert idx.frequency("topiqa") > 0
        assert idx.frequency("topiqb") > 0

    def test_complex_beats_simple(self, workload):
        from repro.workload.relevance import score_quality_experiment

        simple, complex_ = score_quality_experiment(workload)
        assert simple.scorer_name == "simple"
        assert complex_.average_precision > simple.average_precision
        assert complex_.precision_at_10 >= simple.precision_at_10
        # the paper's motivating case: complex recovers the buried-vs-
        # topical distinction essentially perfectly
        assert complex_.average_precision > 0.9

    def test_simple_is_fooled_by_buried_distractors(self, workload):
        from repro.workload.relevance import (
            WeightedCountScorer,
            rank_sections,
        )

        ta, tb = workload.query_terms
        ranked = rank_sections(
            workload, WeightedCountScorer([ta], [tb]), False
        )
        # distractors contain more occurrences, so the very top of the
        # simple ranking is a distractor
        assert ranked[0] in workload.distractors
