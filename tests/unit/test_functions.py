"""Unit tests for the user-function registry."""

import pytest

from repro.core.pick import PickCriterion
from repro.core.trees import tree_from_text
from repro.errors import QueryCompileError
from repro.exampledata import example_store
from repro.query import run_query
from repro.query.functions import (
    FunctionRegistry,
    QueryContext,
    default_registry,
    pick_foo_factory,
    score_bar_fn,
    score_foo_fn,
    score_sim_fn,
    tfidf_fn,
)


class TestDefaultRegistry:
    def test_paper_functions_present(self):
        reg = default_registry()
        for name in ("ScoreFoo", "ScoreFooExact", "ScoreSim",
                     "ScoreBar", "TfIdf"):
            assert reg.has_score(name)
        assert reg.has_pick("PickFoo")

    def test_context_flags(self):
        reg = default_registry()
        assert reg.needs_context("TfIdf")
        assert not reg.needs_context("ScoreFoo")
        assert not reg.needs_context("NoSuch")

    def test_unknown_lookups_raise(self):
        reg = default_registry()
        with pytest.raises(QueryCompileError):
            reg.score_function("NoSuch")
        with pytest.raises(QueryCompileError):
            reg.pick_criterion("NoSuch")
        with pytest.raises(QueryCompileError):
            reg.score_factory("ScoreFoo")  # no factory for stemmed fn


class TestPaperFunctions:
    def test_score_foo_counts_phrases(self):
        node = tree_from_text("p", "search engines and the internet").root
        s = score_foo_fn(node, ["search engine"], ["internet"])
        assert s == pytest.approx(1.4)  # stemmed plural counts

    def test_score_sim(self):
        a = tree_from_text("t", "internet technologies").root
        b = tree_from_text("t", "internet basics").root
        assert score_sim_fn(a, b) == 1.0

    def test_score_bar(self):
        assert score_bar_fn(2.0, 1.0) == 3.0
        assert score_bar_fn(2.0, 0.0) == 0.0

    def test_pick_foo_defaults(self):
        crit = pick_foo_factory()
        assert isinstance(crit, PickCriterion)
        assert crit.relevance_threshold == 0.8
        assert crit.ignore_zero_children

    def test_tfidf_uses_store_idf(self):
        store = example_store()
        ctx = QueryContext(store)
        doc = store.document("articles.xml")
        from repro.core.trees import tree_from_document

        tree = tree_from_document(doc)
        score = tfidf_fn(ctx, tree.root, ["search"])
        assert score > 0


class TestCustomRegistration:
    def test_custom_score_function(self):
        reg = default_registry()
        reg.register_score("Constant", lambda node: 42.0)
        store = example_store()
        out = run_query(store, '''
            For $a in document("articles.xml")//article
            Score $a using Constant($a)
            Return <r><score>{ $a/@score }</score></r>
        ''', registry=reg)
        assert out[0].score == 42.0

    def test_custom_context_function(self):
        reg = default_registry()
        reg.register_score(
            "VocabSize",
            lambda ctx, node: float(ctx.index.n_terms),
            needs_context=True,
        )
        store = example_store()
        out = run_query(store, '''
            For $a in document("articles.xml")//article
            Score $a using VocabSize($a)
            Return <r><score>{ $a/@score }</score></r>
        ''', registry=reg)
        assert out[0].score == float(store.index.n_terms)

    def test_custom_pick_criterion(self):
        reg = default_registry()
        reg.register_pick(
            "PickAll", lambda *a: PickCriterion(relevance_threshold=0.0)
        )
        store = example_store()
        out = run_query(store, '''
            For $a in document("articles.xml")//article/p
            Score $a using ScoreFoo($a, {"search"})
            Pick $a using PickAll($a)
            Return $a
        ''', registry=reg)
        # p elements are not direct children of article; empty is fine —
        # the point is that the custom criterion resolved without error.
        assert isinstance(out, list)

    def test_tfidf_in_query_ranks_reasonably(self):
        store = example_store()
        out = run_query(store, '''
            For $a in document("articles.xml")//article/descendant-or-self::*
            Score $a using TfIdf($a, {"search", "retrieval"})
            Return <r><score>{ $a/@score }</score>{ $a }</r>
            Sortby(score)
            Threshold $a/@score > 0 stop after 3
        ''')
        assert len(out) == 3
        scores = [t.score for t in out]
        assert scores == sorted(scores, reverse=True)
