"""Unit tests for the plan compiler: compilable shapes, rejections, and
evaluator equivalence."""

import pytest

from repro.errors import QueryCompileError
from repro.query import parse_query, run_query
from repro.query.compiler import compile_query, explain_query, run_compiled
from repro.xmldb.store import XMLStore


@pytest.fixture()
def store():
    return XMLStore.from_sources({
        "d.xml": (
            "<lib>"
            "<shelf kind='db'><b><t>relational databases</t>"
            "<body>tables and queries</body></b></shelf>"
            "<shelf kind='ir'><b><t>retrieval</t>"
            "<body>ranking queries and scores</body></b></shelf>"
            "</lib>"
        ),
    })


COMPILABLE = '''
For $a in document("d.xml")//shelf/descendant-or-self::*
Score $a using ScoreFooExact($a, {"queries"}, {"ranking"})
Return <r><score>{ $a/@score }</score>{ $a }</r>
Sortby(score)
Threshold $a/@score > 0.5 stop after 3
'''


class TestCompilation:
    def test_compiles_and_explains(self, store):
        text = explain_query(store, parse_query(COMPILABLE))
        assert "termjoin-scan" in text
        assert "structural-filter" in text
        assert "top-k(3)" in text  # Sortby + stop-after fuse to a heap

    def test_matches_evaluator(self, store):
        ev = run_query(store, COMPILABLE)
        ev_scores = sorted(t.score for t in ev)
        comp = run_compiled(store, parse_query(COMPILABLE))
        comp_scores = sorted(t.score for t in comp)
        assert ev_scores == pytest.approx(comp_scores)
        assert len(comp) == len(ev)

    def test_structural_filter_restricts(self, store):
        query = '''
        For $a in document("d.xml")//shelf/descendant-or-self::*
        Score $a using ScoreFooExact($a, {"ranking"})
        Return $a
        Sortby(score)
        Threshold $a/@score > 0 stop after 10
        '''
        comp = run_compiled(store, parse_query(query))
        # 'ranking' appears only under the second shelf
        doc = store.document("d.xml")
        for t in comp:
            assert t.root.source is not None
            # every result node is within a shelf region
            nid = t.root.source[1]
            anc_tags = [doc.tags[a] for a in doc.ancestors(nid)]
            assert "shelf" in anc_tags or doc.tags[nid] == "shelf"

    def test_materializes_subtrees(self, store):
        comp = run_compiled(store, parse_query(COMPILABLE))
        assert any(t.n_nodes() > 1 for t in comp)


class TestRejections:
    def reject(self, store, query, match):
        with pytest.raises(QueryCompileError, match=match):
            compile_query(store, parse_query(query))

    def test_pick_not_compilable(self, store):
        self.reject(store, '''
            For $a in document("d.xml")//shelf/descendant-or-self::*
            Score $a using ScoreFooExact($a, {"queries"})
            Pick $a using PickFoo($a)
            Return $a
        ''', "not compilable")

    def test_needs_descendant_or_self_tail(self, store):
        self.reject(store, '''
            For $a in document("d.xml")//shelf
            Score $a using ScoreFooExact($a, {"queries"})
            Return $a
        ''', "descendant-or-self")

    def test_needs_document_root(self, store):
        self.reject(store, '''
            For $a in $b/descendant-or-self::*
            Score $a using ScoreFooExact($a, {"queries"})
            Return $a
        ''', "document")

    def test_multiword_phrase_uses_phrasejoin(self, store):
        # multi-word phrases lower onto PhraseJoin instead of TermJoin
        text = explain_query(store, parse_query('''
            For $a in document("d.xml")//shelf/descendant-or-self::*
            Score $a using ScoreFooExact($a, {"relational databases"})
            Return $a
            Sortby(score)
        '''))
        assert "PhraseJoin" in text

    def test_multiword_phrase_results(self, store):
        comp = run_compiled(store, parse_query('''
            For $a in document("d.xml")//shelf/descendant-or-self::*
            Score $a using ScoreFooExact($a, {"relational databases"})
            Return $a
            Sortby(score)
            Threshold $a/@score > 0 stop after 5
        '''))
        assert comp
        # only the db shelf's subtree contains the phrase
        tags = sorted(t.root.tag for t in comp)
        assert tags == ["b", "shelf", "t"]

    def test_score_without_factory_rejected(self, store):
        self.reject(store, '''
            For $a in document("d.xml")//shelf/descendant-or-self::*
            Score $a using ScoreFoo($a, {"queries"})
            Return $a
        ''', "factory")

    def test_missing_score_clause(self, store):
        self.reject(store, '''
            For $a in document("d.xml")//shelf/descendant-or-self::*
            Return $a
        ''', "For \\+ Score")

    def test_complex_threshold_rejected(self, store):
        self.reject(store, '''
            For $a in document("d.xml")//shelf/descendant-or-self::*
            Score $a using ScoreFooExact($a, {"queries"})
            Return $a
            Threshold $a/pages > 4
        ''', "Threshold")

    def test_non_flwor_rejected(self, store):
        with pytest.raises(QueryCompileError, match="FLWOR"):
            compile_query(store, parse_query('<x>hi</x>'))
