"""Unit tests for the XML tokenizer and parser."""

import pytest

from repro.errors import XMLParseError
from repro.xmldb.parser import parse_document, parse_fragment
from repro.xmldb.tokenizer import decode_entities


class TestBasicParsing:
    def test_single_element(self):
        doc = parse_document("<a/>")
        assert doc.tags == ["a"]
        assert doc.parents == [-1]

    def test_nested_elements(self):
        doc = parse_document("<a><b><c/></b><d/></a>")
        assert doc.tags == ["a", "b", "c", "d"]
        assert doc.parents == [-1, 0, 1, 0]

    def test_text_content_words(self):
        doc = parse_document("<a>Hello Brave World</a>")
        assert doc.direct_words(0) == ["hello", "brave", "world"]

    def test_mixed_content_order_preserved(self):
        doc = parse_document("<a>one<b>two</b>three</a>")
        assert doc.subtree_words(0) == ["one", "two", "three"]
        assert doc.direct_words(0) == ["one", "three"]
        assert doc.direct_words(1) == ["two"]

    def test_attributes(self):
        doc = parse_document('<a x="1" y="two words"/>')
        assert doc.attr(0, "x") == "1"
        assert doc.attr(0, "y") == "two words"
        assert doc.attr(0, "missing") is None

    def test_single_quoted_attributes(self):
        doc = parse_document("<a x='val'/>")
        assert doc.attr(0, "x") == "val"

    def test_self_closing_with_following_sibling(self):
        doc = parse_document("<a><b/><c>t</c></a>")
        assert doc.tags == ["a", "b", "c"]
        assert doc.parents == [-1, 0, 0]


class TestMarkupForms:
    def test_xml_declaration_skipped(self):
        doc = parse_document('<?xml version="1.0"?><a/>')
        assert doc.tags == ["a"]

    def test_comments_skipped(self):
        doc = parse_document("<a><!-- hidden words --><b/></a>")
        assert doc.tags == ["a", "b"]
        assert doc.subtree_words(0) == []

    def test_cdata_is_text(self):
        doc = parse_document("<a><![CDATA[raw <stuff> here]]></a>")
        assert doc.direct_words(0) == ["raw", "stuff", "here"]

    def test_doctype_skipped(self):
        doc = parse_document("<!DOCTYPE a [<!ELEMENT a ANY>]><a/>")
        assert doc.tags == ["a"]

    def test_processing_instruction_skipped(self):
        doc = parse_document("<a><?target data?><b/></a>")
        assert doc.tags == ["a", "b"]

    def test_entities_decoded(self):
        doc = parse_document("<a>fish &amp; chips &lt;now&gt;</a>")
        assert doc.direct_text(0) == "fish & chips <now>"

    def test_numeric_character_references(self):
        assert decode_entities("&#65;&#x42;") == "AB"

    def test_entities_in_attributes(self):
        doc = parse_document('<a t="a &amp; b"/>')
        assert doc.attr(0, "t") == "a & b"


class TestErrors:
    @pytest.mark.parametrize("source", [
        "<a>",                      # unclosed
        "<a></b>",                  # mismatch
        "</a>",                     # stray close
        "<a/><b/>",                 # two roots
        "text only",               # no root
        "<a><b></a></b>",           # interleaved
        "<a x=1/>",                 # unquoted attribute
        '<a x="1" x="2"/>',         # duplicate attribute
        "<a>&nosuch;</a>",          # unknown entity
        "",                         # empty
        "<a><!-- unterminated",     # unterminated comment
    ])
    def test_malformed_raises(self, source):
        with pytest.raises(XMLParseError):
            parse_document(source)

    def test_error_carries_position(self):
        with pytest.raises(XMLParseError) as exc:
            parse_document("<a>\n<b></c></a>")
        assert exc.value.line == 2


class TestRegionNumbering:
    def test_regions_nest(self):
        doc = parse_document("<a>x<b>y z</b>w</a>")
        a, b = doc.node(0), doc.node(1)
        assert a.start < b.start < b.end < a.end

    def test_words_inside_owner_region(self):
        doc = parse_document("<a>x<b>y z</b>w</a>")
        for i in range(doc.n_words):
            w = doc.word_occurrence(i)
            node = doc.node(w.node_id)
            assert node.start < w.pos < node.end

    def test_word_offsets_count_direct_text(self):
        doc = parse_document("<a>one<b>skip</b>two three</a>")
        occs = [doc.word_occurrence(i) for i in range(doc.n_words)]
        mine = [(o.term, o.offset) for o in occs if o.node_id == 0]
        assert mine == [("one", 0), ("two", 1), ("three", 2)]

    def test_levels(self):
        doc = parse_document("<a><b><c/></b></a>")
        assert doc.levels == [0, 1, 2]


class TestSerialization:
    def test_roundtrip_preserves_text(self):
        src = '<a x="1">Hello<b>nested &amp; escaped</b>tail</a>'
        doc = parse_document(src)
        again = parse_document(doc.serialize())
        assert again.subtree_words(0) == doc.subtree_words(0)
        assert again.tags == doc.tags

    def test_serialize_subtree(self):
        doc = parse_document("<a><b>x</b><c>y</c></a>")
        assert doc.serialize(2) == "<c>y</c>"

    def test_empty_element_self_closes(self):
        doc = parse_document("<a><b></b></a>")
        assert "<b/>" in doc.serialize()


class TestFragment:
    def test_fragment_wraps_in_root(self):
        doc = parse_fragment("<a/><b/>")
        assert doc.tags == ["root", "a", "b"]
