"""Unit tests for the distributed-trace layer: context propagation
parsing, tail-based retention verdicts, the bounded trace store, span
detachment, partial-span Chrome export, and histogram exemplars."""

import json
import threading

import pytest

from repro import obs
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer, chrome_trace_events
from repro.obs.tracestore import (
    RetentionPolicy,
    Trace,
    TraceContext,
    TraceStore,
    chrome_trace_from_dict,
    new_span_id,
    new_trace_id,
)


class TestTraceContext:
    def test_mint_and_wire_round_trip(self):
        ctx = TraceContext.mint()
        assert len(ctx.trace_id) == 16
        assert len(ctx.parent_span_id) == 16
        back = TraceContext.from_wire(ctx.to_wire())
        assert back is not None
        assert back.trace_id == ctx.trace_id
        assert back.parent_span_id == ctx.parent_span_id
        assert back.attempt == 0

    def test_wire_field_shape(self):
        ctx = TraceContext("abc123", parent_span_id="def456", attempt=2)
        assert ctx.to_wire() == {
            "id": "abc123", "span": "def456", "attempt": 2,
        }

    @pytest.mark.parametrize("bad", [
        None, "a-string", 7, [], {}, {"span": "x"}, {"id": ""},
        {"id": 5}, {"id": None},
    ])
    def test_malformed_wire_values_parse_to_none(self, bad):
        # Tolerance is the back-compat contract: an old or buggy
        # client must never poison the serving path.
        assert TraceContext.from_wire(bad) is None

    def test_partial_wire_values_clamp(self):
        ctx = TraceContext.from_wire({"id": "t1", "attempt": -3})
        assert ctx is not None
        assert ctx.trace_id == "t1"
        assert ctx.parent_span_id == ""
        assert ctx.attempt == 0
        ctx = TraceContext.from_wire({"id": "t2", "span": 9,
                                      "attempt": "x"})
        assert ctx.parent_span_id == ""
        assert ctx.attempt == 0

    def test_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64
        assert len({new_span_id() for _ in range(64)}) == 64


def _completed(store, **kw):
    t = store.begin(op="query")
    store.complete(t, **kw)
    return t


class TestRetentionPolicy:
    def _trace(self, wall_ms=0.0):
        t = Trace(new_trace_id())
        t.end_ns = t.start_ns + int(wall_ms * 1e6)
        return t

    def test_error_wins_over_everything(self):
        pol = RetentionPolicy(slow_ms=0.0)
        t = self._trace(wall_ms=100.0)
        t.outcome = "error"
        t.degraded = True
        assert pol.verdict(t) == "error"

    def test_degraded_and_truncated_force_retention(self):
        pol = RetentionPolicy(slow_ms=None)
        t = self._trace()
        t.outcome = "ok"
        t.degraded = True
        assert pol.verdict(t) == "degraded"
        t2 = self._trace()
        t2.outcome = "truncated"
        t2.truncated = True
        assert pol.verdict(t2) == "degraded"

    def test_slow_threshold(self):
        pol = RetentionPolicy(slow_ms=50.0)
        slow = self._trace(wall_ms=60.0)
        slow.outcome = "ok"
        fast = self._trace(wall_ms=10.0)
        fast.outcome = "ok"
        assert pol.verdict(slow) == "slow"
        assert pol.verdict(fast) == ""

    def test_head_sample_is_latency_independent(self):
        # The sampled verdict comes from the flag drawn at begin(),
        # not from anything measured at completion.
        pol = RetentionPolicy(slow_ms=None, sample_rate=0.5)
        t = self._trace(wall_ms=1.0)
        t.outcome = "ok"
        t.head_sampled = True
        assert pol.verdict(t) == "sampled"
        t.head_sampled = False
        assert pol.verdict(t) == ""

    def test_head_sample_deterministic_under_seed(self):
        a = RetentionPolicy(sample_rate=0.5, seed=7)
        b = RetentionPolicy(sample_rate=0.5, seed=7)
        draws_a = [a.head_sample() for _ in range(100)]
        draws_b = [b.head_sample() for _ in range(100)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_sample_rate_edges(self):
        assert RetentionPolicy(sample_rate=1.0).head_sample() is True
        assert RetentionPolicy(sample_rate=0.0).head_sample() is False
        with pytest.raises(ValueError):
            RetentionPolicy(sample_rate=1.5)

    def test_retention_can_be_disabled_per_class(self):
        pol = RetentionPolicy(slow_ms=None, retain_errors=False,
                              retain_degraded=False)
        t = self._trace()
        t.outcome = "error"
        t.degraded = True
        assert pol.verdict(t) == ""


class TestTraceStore:
    def test_begin_without_context_mints_root(self):
        store = TraceStore()
        t = store.begin(op="query", query_sha256="abc")
        assert len(t.trace_id) == 16
        assert t.attempt == 0
        assert not t.completed
        assert store.get(t.trace_id) is t
        assert [x.trace_id for x in store.inflight()] == [t.trace_id]

    def test_begin_with_context_continues_client_trace(self):
        store = TraceStore()
        ctx = TraceContext("c" * 16, parent_span_id="p" * 16, attempt=1)
        t = store.begin(ctx, op="query")
        assert t.trace_id == "c" * 16
        assert t.parent_span_id == "p" * 16
        assert t.attempt == 1

    def test_complete_applies_policy_and_moves_to_retained(self):
        store = TraceStore(policy=RetentionPolicy(slow_ms=0.0))
        t = store.begin(op="query")
        reason = store.complete(t, outcome="ok")
        assert reason == "slow"
        assert t.retained_for == "slow"
        assert t.completed
        assert store.inflight() == []
        assert store.get(t.trace_id) is t

    def test_fast_success_is_dropped_at_sample_zero(self):
        store = TraceStore(policy=RetentionPolicy(slow_ms=10_000.0))
        t = store.begin(op="query")
        assert store.complete(t, outcome="ok") == ""
        assert store.get(t.trace_id) is None
        assert store.stats()["retained"] == 0

    def test_eviction_is_oldest_first_and_counted(self):
        store = TraceStore(capacity=3,
                           policy=RetentionPolicy(slow_ms=0.0))
        traces = [_completed(store) for _ in range(5)]
        st = store.stats()
        assert st["retained"] == 3
        assert st["retained_total"] == 5
        assert st["dropped"] == 2
        kept = [t.trace_id for t in store.retained()]
        assert kept == [t.trace_id for t in traces[2:]]
        # Evicted ids are gone; survivors still resolvable.
        assert store.get(traces[0].trace_id) is None
        assert store.get(traces[4].trace_id) is traces[4]

    def test_retry_collision_keeps_both_trees(self):
        store = TraceStore(policy=RetentionPolicy(slow_ms=0.0))
        ctx0 = TraceContext("t" * 16, attempt=0)
        ctx1 = TraceContext("t" * 16, attempt=1)
        a = store.begin(ctx0, op="query")
        b = store.begin(ctx1, op="query")
        assert a.store_key != b.store_key
        assert len(store.inflight()) == 2
        store.complete(a, outcome="ok")
        store.complete(b, outcome="error", error_code="TIMEOUT")
        assert store.stats() == {
            "capacity": 256, "started": 2, "completed": 2,
            "inflight": 0, "retained": 2, "retained_total": 2,
            "dropped": 0,
        }

    def test_snapshot_shape_and_ordering(self):
        store = TraceStore(policy=RetentionPolicy(slow_ms=0.0))
        done = [_completed(store) for _ in range(3)]
        live = store.begin(op="query")
        snap = store.snapshot(limit=2)
        assert set(snap) == {"stats", "inflight", "retained"}
        assert [t["trace_id"] for t in snap["inflight"]] == [live.trace_id]
        # Newest first, capped at the limit.
        assert [t["trace_id"] for t in snap["retained"]] == [
            done[2].trace_id, done[1].trace_id,
        ]
        row = snap["retained"][0]
        assert row["status"] == "completed"
        assert row["retained_for"] == "slow"
        json.dumps(snap)  # wire/HTTP payload must be serializable

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceStore(capacity=0)

    def test_metrics_emitted_through_recorder(self):
        col = obs.Collector()
        obs.install(col)
        try:
            store = TraceStore(capacity=1,
                               policy=RetentionPolicy(slow_ms=0.0))
            _completed(store)
            _completed(store)          # evicts the first
            t = store.begin(op="query")
            snap = col.metrics.snapshot()
            assert snap["trace.started"] == 3
            assert snap["trace.completed"] == 2
            assert snap["trace.inflight"] == 1
            assert snap["trace.retained.slow"] == 2
            assert snap["trace.dropped"] == 1
            store.complete(t, outcome="error")
            assert col.metrics.snapshot()["trace.retained.error"] == 1
        finally:
            obs.uninstall()

    def test_concurrent_begin_complete_is_consistent(self):
        store = TraceStore(capacity=8,
                           policy=RetentionPolicy(slow_ms=0.0))

        def worker():
            for _ in range(50):
                store.complete(store.begin(op="query"), outcome="ok")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        st = store.stats()
        assert st["started"] == st["completed"] == 200
        assert st["inflight"] == 0
        assert st["retained"] == 8
        assert st["retained_total"] == 200
        assert st["dropped"] == 192


class TestTraceObject:
    def test_summary_of_inflight_trace_reports_running_wall(self):
        t = Trace(new_trace_id(), op="query", query_sha256="beef")
        s = t.summary()
        assert s["status"] == "inflight"
        assert s["wall_ms"] >= 0.0
        assert s["outcome"] == ""
        assert s["n_spans"] == 0

    def test_to_dict_includes_span_tree(self):
        tracer = Tracer()
        root = tracer.begin("server.request")
        with tracer.span("parse"):
            pass
        tracer.end(root)
        t = Trace(new_trace_id())
        t.root = root
        d = t.to_dict()
        assert d["spans"]["name"] == "server.request"
        assert [c["name"] for c in d["spans"]["children"]] == ["parse"]
        assert t.n_spans == 2

    def test_chrome_trace_of_empty_trace(self):
        t = Trace(new_trace_id())
        assert t.to_chrome_trace() == {"traceEvents": []}


class TestPartialSpanExport:
    """Satellite (a): exports must stay well-formed while spans are
    still open (an in-flight query snapshotted mid-execution)."""

    def test_open_span_renders_partial_not_zero(self):
        tracer = Tracer()
        root = tracer.begin("server.request")
        tracer.begin("execute.guarded")  # left open
        out = chrome_trace_events([root])
        events = out["traceEvents"]
        assert len(events) == 2
        for ev in events:
            assert ev["ph"] == "X"
            assert ev["args"]["open"] is True
            assert ev["dur"] > 0.0

    def test_shared_now_keeps_snapshot_consistent(self):
        tracer = Tracer()
        root = tracer.begin("a")
        child = tracer.begin("b")
        now_ns = root.start_ns + 5_000_000
        d = root.to_dict(now_ns)
        assert d["open"] is True
        assert d["duration_ns"] == 5_000_000
        assert d["children"][0]["open"] is True
        assert child.duration_ns_at(now_ns) <= d["duration_ns"]

    def test_closed_spans_do_not_carry_open_flag(self):
        tracer = Tracer()
        with tracer.span("done"):
            pass
        (ev,) = chrome_trace_events(tracer.roots)["traceEvents"]
        assert "open" not in ev["args"]
        d = tracer.roots[0].to_dict()
        assert "open" not in d

    def test_chrome_trace_from_dict_round_trip(self):
        tracer = Tracer()
        root = tracer.begin("server.request")
        with tracer.span("parse"):
            pass
        tracer.begin("execute.guarded")  # still open
        t = Trace(new_trace_id())
        t.root = root
        live = t.to_chrome_trace()
        revived = chrome_trace_from_dict(
            json.loads(json.dumps(t.to_dict()))
        )
        assert [e["name"] for e in revived["traceEvents"]] == \
            [e["name"] for e in live["traceEvents"]]
        open_flags = [e["args"].get("open") for e in
                      revived["traceEvents"]]
        assert open_flags == [True, None, True]

    def test_chrome_trace_from_dict_tolerates_missing_spans(self):
        assert chrome_trace_from_dict({}) == {"traceEvents": []}
        assert chrome_trace_from_dict({"spans": None}) == \
            {"traceEvents": []}


class TestDetach:
    def test_detach_frees_roots_and_span_budget(self):
        tracer = Tracer()
        root = tracer.begin("server.request")
        with tracer.span("child"):
            pass
        tracer.end(root)
        assert tracer.n_spans == 2
        assert tracer.detach(root) is True
        assert tracer.roots == []
        assert tracer.n_spans == 0
        # The subtree itself survives for the trace store.
        assert root.n_spans() == 2

    def test_detach_rejects_non_roots_and_none(self):
        tracer = Tracer()
        root = tracer.begin("r")
        child = tracer.begin("c")
        tracer.end(child)
        tracer.end(root)
        assert tracer.detach(None) is False
        assert tracer.detach(child) is False
        assert tracer.detach(Span("other", 0)) is False
        assert tracer.n_spans == 2

    def test_detach_lets_a_long_running_server_reuse_budget(self):
        tracer = Tracer(max_spans=2)
        for _ in range(10):
            root = tracer.begin("req")
            tracer.end(root)
            assert root is not None
            assert tracer.detach(root) is True
        assert tracer.dropped == 0


class TestHistogramExemplars:
    def test_exemplars_ring_and_max(self):
        h = Histogram("server.request_ms")
        h.observe(99.0, exemplar="tmax")
        for i in range(6):
            h.observe(float(i), exemplar=f"t{i}")
        h.observe(1.0, exemplar="tlast")  # tmax now aged out of the ring
        ex = h.exemplars()
        ids = [e["trace_id"] for e in ex]
        assert "tlast" in ids
        maxes = [e for e in ex if e.get("max")]
        assert len(maxes) == 1
        assert maxes[0]["trace_id"] == "tmax"
        assert maxes[0]["value"] == 99.0
        assert len([e for e in ex if not e.get("max")]) \
            <= Histogram.EXEMPLAR_SLOTS

    def test_snapshot_shape_unchanged_without_exemplars(self):
        h = Histogram("plain")
        h.observe(1.0)
        assert "exemplars" not in h.snapshot()

    def test_registry_passthrough(self):
        reg = MetricsRegistry()
        reg.observe("lat_ms", 5.0, exemplar="abc")
        snap = reg.snapshot()["lat_ms"]
        assert snap["exemplars"][0]["trace_id"] == "abc"
