"""Unit tests for the inverted index and the structure index."""

import pytest

from repro.errors import UnknownTermError
from repro.index.inverted import P_DOC, P_NODE, P_OFFSET, P_POS
from repro.xmldb.store import XMLStore


@pytest.fixture()
def idx_store():
    return XMLStore.from_sources({
        "a.xml": "<a><b>red red green</b><c>red</c></a>",
        "b.xml": "<x>green <y>blue</y></x>",
    })


class TestInvertedIndex:
    def test_frequency(self, idx_store):
        idx = idx_store.index
        assert idx.frequency("red") == 3
        assert idx.frequency("green") == 2
        assert idx.frequency("blue") == 1
        assert idx.frequency("nope") == 0

    def test_postings_sorted_by_doc_pos(self, idx_store):
        pl = idx_store.index.postings("green").postings
        assert pl == sorted(pl)
        assert [p[P_DOC] for p in pl] == [0, 1]

    def test_posting_fields(self, idx_store):
        pl = idx_store.index.postings("blue")
        (p,) = list(pl)
        doc = idx_store.document(p[P_DOC])
        assert doc.tags[p[P_NODE]] == "y"
        assert p[P_OFFSET] == 0
        assert doc.node(p[P_NODE]).start < p[P_POS] <= doc.node(p[P_NODE]).end

    def test_offsets_within_node(self, idx_store):
        pl = idx_store.index.postings("red")
        b_offsets = [p[P_OFFSET] for p in pl if p[P_DOC] == 0 and p[P_NODE] == 1]
        assert b_offsets == [0, 1]

    def test_unknown_term_lenient_and_strict(self, idx_store):
        assert len(idx_store.index.postings("zz")) == 0
        with pytest.raises(UnknownTermError):
            idx_store.index.postings("zz", strict=True)

    def test_contains(self, idx_store):
        assert "red" in idx_store.index
        assert "zz" not in idx_store.index

    def test_document_frequency_and_idf(self, idx_store):
        idx = idx_store.index
        assert idx.document_frequency("green") == 2
        assert idx.document_frequency("blue") == 1
        assert idx.idf("blue") > idx.idf("green") > 0

    def test_element_counts(self, idx_store):
        counts = idx_store.index.element_counts("red")
        assert counts[(0, 1)] == 2
        assert counts[(0, 2)] == 1

    def test_for_document_slice(self, idx_store):
        pl = idx_store.index.postings("green")
        only_b = pl.for_document(1)
        assert len(only_b) == 1 and only_b[0][P_DOC] == 1

    def test_terms_sorted_by_frequency(self, idx_store):
        pairs = idx_store.index.terms_sorted_by_frequency()
        assert pairs[0][0] == "red"
        freqs = [f for _t, f in pairs]
        assert freqs == sorted(freqs, reverse=True)

    def test_vocabulary(self, idx_store):
        assert set(idx_store.index.vocabulary()) == {"red", "green", "blue"}
        assert idx_store.index.n_terms == 3


class TestStructureIndex:
    def test_parent(self, idx_store):
        si = idx_store.structure
        assert si.parent(0, 1) == 0
        assert si.parent(0, 0) == -1

    def test_fanout(self, idx_store):
        si = idx_store.structure
        assert si.fanout(0, 0) == 2
        assert si.fanout(0, 1) == 0

    def test_parent_and_fanout(self, idx_store):
        si = idx_store.structure
        parent, fanout = si.parent_and_fanout(0, 1)
        assert (parent, fanout) == (0, 2)
        assert si.parent_and_fanout(0, 0) == (-1, 0)

    def test_elements_with_tag_in_order(self, idx_store):
        refs = idx_store.structure.elements_with_tag("b")
        assert len(refs) == 1 and refs[0][4] == 1
        assert idx_store.structure.elements_with_tag("nope") == []

    def test_all_elements_sorted(self, idx_store):
        refs = idx_store.structure.all_elements()
        keys = [(r[0], r[1]) for r in refs]
        assert keys == sorted(keys)
        assert len(refs) == idx_store.n_elements

    def test_tags(self, idx_store):
        assert set(idx_store.structure.tags()) == {"a", "b", "c", "x", "y"}
