"""Unit tests for Document navigation and the DocumentBuilder."""

import pytest

from repro.errors import TIXError
from repro.xmldb.builder import DocumentBuilder
from repro.xmldb.parser import parse_document

SRC = """<article>
  <title>Internet Technologies</title>
  <chapter><ct>Caching</ct><p>web caching works</p></chapter>
  <chapter><ct>Video</ct><p>streaming video here</p></chapter>
</article>"""


@pytest.fixture()
def doc():
    return parse_document(SRC)


class TestNavigation:
    def test_children(self, doc):
        assert [doc.tags[c] for c in doc.children(0)] == [
            "title", "chapter", "chapter",
        ]

    def test_n_children(self, doc):
        assert doc.n_children(0) == 3
        assert doc.n_children(1) == 0

    def test_parent(self, doc):
        ct = doc.find_by_tag("ct")[0]
        assert doc.tags[doc.parent(ct)] == "chapter"
        assert doc.parent(0) == -1

    def test_ancestors_root_first(self, doc):
        p = doc.find_by_tag("p")[1]
        assert [doc.tags[a] for a in doc.ancestors(p)] == [
            "article", "chapter",
        ]

    def test_descendants_contiguous(self, doc):
        ch1 = doc.find_by_tag("chapter")[0]
        desc = list(doc.descendants(ch1))
        assert [doc.tags[d] for d in desc] == ["ct", "p"]

    def test_subtree_includes_self(self, doc):
        ch1 = doc.find_by_tag("chapter")[0]
        assert list(doc.subtree(ch1))[0] == ch1

    def test_last_descendant_of_leaf_is_self(self, doc):
        title = doc.find_by_tag("title")[0]
        assert doc.last_descendant(title) == title

    def test_is_ancestor(self, doc):
        ch = doc.find_by_tag("chapter")[0]
        p = doc.find_by_tag("p")[0]
        assert doc.is_ancestor(0, p)
        assert doc.is_ancestor(ch, p)
        assert not doc.is_ancestor(p, ch)
        assert not doc.is_ancestor(ch, ch)  # strict

    def test_node_at_pos_finds_deepest(self, doc):
        for i in range(doc.n_words):
            occ = doc.word_occurrence(i)
            assert doc.node_at_pos(occ.pos) == occ.node_id

    def test_ancestors_of_pos(self, doc):
        occ = doc.word_occurrence(doc.n_words - 1)
        chain = doc.ancestors_of_pos(occ.pos)
        assert chain[0] == 0
        assert chain[-1] == occ.node_id


class TestTextAccess:
    def test_alltext(self, doc):
        assert "caching" in doc.alltext(0)

    def test_subtree_words_of_chapter(self, doc):
        ch = doc.find_by_tag("chapter")[0]
        assert doc.subtree_words(ch) == ["caching", "web", "caching", "works"]

    def test_word_slice_bounds(self, doc):
        lo, hi = doc.word_slice(0)
        assert (lo, hi) == (0, doc.n_words)

    def test_direct_text_raw(self, doc):
        ct = doc.find_by_tag("ct")[0]
        assert doc.direct_text(ct) == "Caching"


class TestBuilderErrors:
    def test_unclosed_element_at_finish(self):
        b = DocumentBuilder()
        b.start_element("a")
        with pytest.raises(TIXError, match="unclosed"):
            b.finish("x.xml")

    def test_text_outside_element(self):
        b = DocumentBuilder()
        with pytest.raises(TIXError):
            b.text("orphan")

    def test_end_without_start(self):
        b = DocumentBuilder()
        with pytest.raises(TIXError):
            b.end_element()

    def test_two_roots_rejected(self):
        b = DocumentBuilder()
        b.element("a")
        with pytest.raises(TIXError):
            b.start_element("b")

    def test_empty_document_rejected(self):
        with pytest.raises(TIXError):
            DocumentBuilder().finish("x.xml")

    def test_reuse_after_finish_rejected(self):
        b = DocumentBuilder()
        b.element("a")
        b.finish("x.xml")
        with pytest.raises(TIXError):
            b.start_element("b")

    def test_element_shorthand(self):
        b = DocumentBuilder()
        b.start_element("r")
        nid = b.element("leaf", "some text", {"k": "v"})
        b.end_element()
        doc = b.finish("x.xml")
        assert doc.tags[nid] == "leaf"
        assert doc.attr(nid, "k") == "v"
        assert doc.direct_words(nid) == ["some", "text"]
