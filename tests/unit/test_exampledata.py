"""Unit tests for the Figure 1 example fixtures (node-id mapping and
scorer construction)."""

import pytest

from repro.exampledata import (
    A,
    example_store,
    pickfoo_criterion,
    query1_pattern,
    query2_pattern,
    query3_pattern,
    score_foo,
)


class TestExampleStore:
    def test_node_mapping_covers_paper_ids(self):
        store = example_store()
        doc = store.document("articles.xml")
        assert doc.tags[A[1]] == "article"
        assert doc.tags[A[5]] == "sname"
        assert doc.tags[A[10]] == "chapter"
        assert doc.tags[A[18]] == "p"
        assert doc.tags[A[20]] == "p"

    def test_elided_text_adds_no_terms(self):
        store = example_store()
        doc = store.document("articles.xml")
        # "search engine" phrase occurrences come only from the places
        # the paper shows them
        assert store.index.frequency("newsinessence") == 1

    def test_reviews_ratings(self):
        store = example_store()
        doc = store.document("reviews.xml")
        ratings = [doc.alltext(n) for n in doc.find_by_tag("rating")]
        assert ratings == ["5", "3"]


class TestScorers:
    def test_score_foo_weights(self):
        scorer = score_foo()
        assert scorer.score_words("search engine".split()) == \
            pytest.approx(0.8)
        assert scorer.score_words("the internet".split()) == \
            pytest.approx(0.6)
        assert scorer.score_words(
            "information retrieval search engines".split()
        ) == pytest.approx(1.4)

    def test_pickfoo_criterion(self):
        crit = pickfoo_criterion()
        assert crit.relevance_threshold == 0.8
        assert crit.qualification == 0.5


class TestPatterns:
    def test_query1_pattern_structure(self):
        pat = query1_pattern()
        assert pat.root.tag == "article"
        assert pat.primary_ir_labels() == ["$4"]

    def test_query2_adds_author_constraint(self):
        pat = query2_pattern()
        assert pat.has_node("$2") and pat.has_node("$3")
        assert pat.node("$3").tag == "sname"

    def test_query3_pattern_scoring(self):
        pat = query3_pattern()
        assert "$joinScore" in pat.scoring
        assert pat.node("$1").tag == "tix_prod_root"
        order = pat.scoring_order()
        assert order.index("$joinScore") < order.index("$1")
        assert order.index("$6") < order.index("$1")
