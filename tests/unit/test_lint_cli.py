"""``tix lint`` CLI behaviour, the JSON report contract, and the
self-check: the real source tree must lint clean.

The JSON shape asserted here is versioned
(:data:`repro.analysis.JSON_VERSION`) — CI consumers parse it, so field
removals or renames must bump the version.
"""

import json
import textwrap

import pytest

from repro.analysis import (
    JSON_VERSION,
    default_root,
    findings_from_payload,
    lint,
    render_human,
    render_json,
    rule_classes,
    to_dict,
)
from repro.cli import main

EXPECTED_RULES = {
    "blocking-under-lock",
    "fault-point-drift",
    "guard-hook",
    "lock-discipline",
    "lock-order",
    "metric-drift",
    "operator-contract",
    "planner-registry-drift",
    "resource-safety",
    "shared-state-race",
}


def write_tree(tmp_path, files):
    root = tmp_path / "src"
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return root

# The CLI runs every rule, and the cross-file rules demand their
# registries exist — fixture trees carry empty ones.
_REGISTRIES = {
    "repro/obs/catalog.py": "CATALOG = {}\n",
    "repro/resilience/faultinject.py": "FAULT_POINTS = {}\n",
    "repro/access/registry.py": "ACCESS_METHODS = {}\n",
}

_BAD_TREE = {
    **_REGISTRIES,
    "repro/xmldb/io.py": """
        def read(path):
            f = open(path)
            return f.read()
    """,
}

_CLEAN_TREE = {
    **_REGISTRIES,
    "repro/xmldb/io.py": """
        def read(path):
            with open(path) as f:
                return f.read()
    """,
}


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def test_all_engine_rules_registered():
    assert set(rule_classes()) == EXPECTED_RULES


def test_rules_carry_descriptions_and_severities():
    for name, cls in rule_classes().items():
        assert cls.description, name
        assert cls.severity.name in ("warning", "error"), name


# ----------------------------------------------------------------------
# JSON report contract
# ----------------------------------------------------------------------

def test_json_report_schema(tmp_path):
    root = write_tree(tmp_path, _BAD_TREE)
    result = lint(root=root, rules=["resource-safety"])
    payload = json.loads(render_json(result))
    assert payload == to_dict(result)
    assert payload["version"] == JSON_VERSION == 2
    assert set(payload) == {
        "version", "root", "files_checked", "rules_run", "findings",
        "suppressed", "summary",
    }
    assert payload["files_checked"] == len(_BAD_TREE)
    assert payload["rules_run"] == ["resource-safety"]
    assert payload["summary"] == {
        "error": 1, "warning": 0, "suppressed": 0,
    }
    (finding,) = payload["findings"]
    assert set(finding) == {
        "rule", "severity", "path", "line", "col", "message",
        "witness",
    }
    assert finding["rule"] == "resource-safety"
    assert finding["severity"] == "error"
    assert finding["path"] == "repro/xmldb/io.py"
    assert finding["line"] >= 1 and finding["col"] >= 1
    assert finding["witness"] == []


def test_report_reader_is_version_tolerant(tmp_path):
    # The v2 reader digests archived v1 reports (no witness field)
    # next to v2 ones — the audit-log v1/v2 precedent.
    root = write_tree(tmp_path, _BAD_TREE)
    result = lint(root=root, rules=["resource-safety"])
    v2 = json.loads(render_json(result))
    v1 = json.loads(render_json(result))
    v1["version"] = 1
    for f in v1["findings"]:
        del f["witness"]
    for payload in (v1, v2):
        (finding,) = findings_from_payload(payload)
        assert finding.rule == "resource-safety"
        assert finding.witness == ()
    with pytest.raises(ValueError, match="unsupported"):
        findings_from_payload({"version": 99, "findings": []})


def test_human_report_summary_line(tmp_path):
    root = write_tree(tmp_path, _BAD_TREE)
    result = lint(root=root, rules=["resource-safety"])
    text = render_human(result)
    assert "1 error(s), 0 warning(s), 0 suppressed" in text
    assert "repro/xmldb/io.py" in text.splitlines()[0]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    root = write_tree(tmp_path, _CLEAN_TREE)
    assert main(["lint", str(root)]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out


def test_cli_exit_one_on_findings(tmp_path, capsys):
    root = write_tree(tmp_path, _BAD_TREE)
    assert main(["lint", str(root)]) == 1
    out = capsys.readouterr().out
    assert "resource-safety" in out


def test_cli_fail_on_warning_threshold(tmp_path):
    # A clean tree stays 0 even at the stricter threshold.
    root = write_tree(tmp_path, _CLEAN_TREE)
    assert main(["lint", str(root), "--fail-on", "warning"]) == 0


def test_cli_json_output(tmp_path, capsys):
    root = write_tree(tmp_path, _BAD_TREE)
    assert main(["lint", "--json", str(root)]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == JSON_VERSION
    assert payload["summary"]["error"] == 1


def test_cli_rule_selection(tmp_path):
    root = write_tree(tmp_path, _BAD_TREE)
    assert main(["lint", str(root), "--rule", "guard-hook"]) == 0
    assert main(["lint", str(root), "--rule", "resource-safety"]) == 1


def test_cli_unknown_rule_exits_with_message(tmp_path, capsys):
    root = write_tree(tmp_path, _CLEAN_TREE)
    with pytest.raises(SystemExit, match="unknown rule"):
        main(["lint", str(root), "--rule", "bogus"])


def test_cli_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in EXPECTED_RULES:
        assert name in out


def test_cli_suppressed_shown_only_when_verbose(tmp_path, capsys):
    files = {
        **_REGISTRIES,
        "repro/xmldb/io.py": """
            def read(path):
                f = open(path)  # tix-lint: disable=resource-safety
                return f.read()
        """,
    }
    root = write_tree(tmp_path, files)
    assert main(["lint", str(root)]) == 0
    quiet = capsys.readouterr().out
    assert "1 suppressed" in quiet
    assert "suppressed:" not in quiet
    assert main(["lint", "--verbose", str(root)]) == 0
    loud = capsys.readouterr().out
    assert "suppressed:" in loud


# ----------------------------------------------------------------------
# self-check: the shipped source tree obeys its own invariants
# ----------------------------------------------------------------------

def test_real_source_tree_lints_clean():
    result = lint()
    assert result.rules_run == sorted(EXPECTED_RULES)
    assert result.files_checked > 50
    assert result.findings == [], render_human(result)


def test_real_source_tree_docs_in_sync():
    from repro.obs.catalog import check_docs

    docs = default_root().parent / "docs" / "observability.md"
    if not docs.is_file():  # pragma: no cover - installed-package run
        pytest.skip("docs/ not present (not a checkout)")
    assert check_docs(docs.read_text(encoding="utf-8")) is None


def test_catalog_entries_are_well_formed():
    from repro.obs.catalog import CATALOG, KINDS

    for name, (kind, doc) in CATALOG.items():
        assert kind in KINDS, name
        assert doc.strip(), name
        assert name == name.strip() and " " not in name, name
