"""Unit tests for the query lexer and parser."""

import pytest

from repro.errors import QuerySyntaxError
from repro.query.ast import (
    Comparison,
    ContainsVar,
    DocCall,
    ElementCtor,
    FLWOR,
    ForClause,
    FuncCall,
    LetClause,
    Literal,
    PathExpr,
    PickClause,
    ScoreClause,
    TermSet,
    VarRef,
    WhereClause,
)
from repro.query.lexer import tokenize_query
from repro.query.parser import parse_query


class TestLexer:
    def test_keywords_vs_names(self):
        toks = tokenize_query("For $a in foo Return $a")
        kinds = [(t.type, t.value) for t in toks[:-1]]
        assert kinds == [
            ("keyword", "For"), ("var", "a"), ("keyword", "in"),
            ("name", "foo"), ("keyword", "Return"), ("var", "a"),
        ]

    def test_strings_both_quotes(self):
        toks = tokenize_query("\"double\" 'single'")
        assert [t.value for t in toks[:-1]] == ["double", "single"]

    def test_string_escapes(self):
        toks = tokenize_query(r'"say \"hi\""')
        assert toks[0].value == 'say "hi"'

    def test_numbers(self):
        toks = tokenize_query("4 4.5")
        assert [t.value for t in toks[:-1]] == ["4", "4.5"]

    def test_symbols(self):
        toks = tokenize_query(":= // :: >= {")
        assert [t.value for t in toks[:-1]] == [":=", "//", "::", ">=", "{"]

    def test_comment_skipped(self):
        toks = tokenize_query("For (: note :) $a")
        assert [t.value for t in toks[:-1]] == ["For", "a"]

    def test_positions(self):
        toks = tokenize_query("For\n  $a")
        assert toks[1].line == 2 and toks[1].column == 3

    def test_unknown_char(self):
        with pytest.raises(QuerySyntaxError):
            tokenize_query("For § $a")


class TestParserBasics:
    def test_minimal_flwor(self):
        q = parse_query("For $a in document(\"d.xml\")//x Return $a")
        flwor = q.body
        assert isinstance(flwor, FLWOR)
        assert isinstance(flwor.clauses[0], ForClause)
        assert isinstance(flwor.return_expr, VarRef)

    def test_for_with_assign(self):
        q = parse_query('For $a := document("d")//x Return $a')
        assert isinstance(q.body.clauses[0], ForClause)

    def test_let_clause(self):
        q = parse_query('Let $c := document("d")//x Return $c')
        assert isinstance(q.body.clauses[0], LetClause)

    def test_where_clause(self):
        q = parse_query(
            'For $a in document("d")//x Where $a/@score > 2 Return $a'
        )
        assert isinstance(q.body.clauses[1], WhereClause)

    def test_score_clause(self):
        q = parse_query(
            'For $a in document("d")//x '
            'Score $a using ScoreFoo($a, {"t1"}, {"t2", "t3"}) '
            'Return $a'
        )
        score = q.body.clauses[1]
        assert isinstance(score, ScoreClause)
        assert score.function.name == "ScoreFoo"
        assert score.function.args[1] == TermSet(("t1",))
        assert score.function.args[2] == TermSet(("t2", "t3"))

    def test_pick_clause(self):
        q = parse_query(
            'For $a in document("d")//x Pick $a using PickFoo($a) '
            'Return $a'
        )
        assert isinstance(q.body.clauses[1], PickClause)

    def test_sortby_and_threshold(self):
        q = parse_query(
            'For $a in document("d")//x Return $a '
            'Sortby(score) Threshold $a/@score > 4 stop after 5'
        )
        assert q.body.sortby.key == "score"
        assert q.body.threshold.stop_after == 5
        assert isinstance(q.body.threshold.condition, Comparison)

    def test_threshold_before_sortby_accepted(self):
        q = parse_query(
            'For $a in document("d")//x Return $a '
            'Threshold $a/@score > 1 Sortby(score)'
        )
        assert q.body.sortby is not None and q.body.threshold is not None


class TestPaths:
    def path(self, text):
        q = parse_query(f'For $a in {text} Return $a')
        return q.body.clauses[0].source

    def test_document_root(self):
        p = self.path('document("articles.xml")//article')
        assert p.root == DocCall("articles.xml")
        assert p.steps[0].axis == "descendant"
        assert p.steps[0].test == "article"

    def test_child_steps(self):
        p = self.path('$b/author/sname')
        assert p.root == VarRef("b")
        assert [s.axis for s in p.steps] == ["child", "child"]

    def test_descendant_or_self(self):
        p = self.path('document("d")//article/descendant-or-self::*')
        assert p.steps[-1].axis == "descendant-or-self"

    def test_attribute_step(self):
        p = self.path('$b/@score')
        assert p.steps[0].axis == "attribute"
        assert p.steps[0].test == "score"

    def test_text_step(self):
        p = self.path('$b/text()')
        assert p.steps[0].axis == "text"

    def test_predicate_with_relative_path(self):
        p = self.path('document("d")//article[/author/sname/text()="Doe"]')
        (pred,) = p.steps[0].predicates
        assert isinstance(pred, Comparison)
        assert isinstance(pred.left, PathExpr)
        assert pred.left.root is None
        assert pred.right == Literal("Doe")

    def test_contains_var_predicate(self):
        p = self.path('$c//tix_prod_root[//$d]')
        (pred,) = p.steps[0].predicates
        assert pred == ContainsVar("d")

    def test_wildcard_step(self):
        p = self.path('$b/*')
        assert p.steps[0].test == "*"

    def test_unsupported_axis_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query('For $a in $b/ancestor::* Return $a')


class TestConstructors:
    def test_simple_ctor(self):
        q = parse_query('For $a in $b/x Return <r>{ $a }</r>')
        ctor = q.body.return_expr
        assert isinstance(ctor, ElementCtor)
        assert ctor.tag == "r"
        assert ctor.content == (VarRef("a"),)

    def test_nested_ctor_with_attrs(self):
        q = parse_query(
            'For $a in $b/x Return <r kind="best"><s>{ $a }</s></r>'
        )
        ctor = q.body.return_expr
        assert ctor.attrs == (("kind", "best"),)
        assert isinstance(ctor.content[0], ElementCtor)

    def test_func_call_in_content(self):
        q = parse_query(
            'For $a in $b/x Return <s>ScoreSim($a, $a)</s>'
        )
        (call,) = q.body.return_expr.content
        assert isinstance(call, FuncCall) and call.name == "ScoreSim"

    def test_text_content(self):
        q = parse_query('For $a in $b/x Return <r>hello world</r>')
        (txt,) = q.body.return_expr.content
        assert txt.text == "hello world"

    def test_mismatched_close_rejected(self):
        with pytest.raises(QuerySyntaxError, match="mismatched"):
            parse_query('For $a in $b/x Return <r>{ $a }</s>')

    def test_nested_flwor_in_ctor(self):
        q = parse_query(
            'Let $c := (<root> For $a in $b/x Return <y>{ $a }</y> </root>) '
            'Return $c'
        )
        let = q.body.clauses[0]
        inner = let.source.content[0]
        assert isinstance(inner, FLWOR)


class TestErrors:
    @pytest.mark.parametrize("src", [
        "For $a Return $a",                 # missing in/:=
        "Return",                           # missing expr
        "For $a in $b/x Return $a extra",   # trailing input
        "For $a in $b/x",                   # missing Return
        'For $a in $b/x Score $a Return $a',  # missing using
    ])
    def test_syntax_errors(self, src):
        with pytest.raises(QuerySyntaxError):
            parse_query(src)

    def test_error_has_position(self):
        with pytest.raises(QuerySyntaxError) as exc:
            parse_query("For $a\nReturn $a")
        assert exc.value.line == 2
