"""Unit tests for the production telemetry pipeline (PR 5).

Covers the thread-safe obs core (8-worker counter parity with a
sequential run, cross-thread Chrome-trace validity), the query audit
log (schema, nesting, sampling determinism, slow-query force-log), the
time-series snapshotter (ring eviction, windowed rate/quantile math),
the OpenMetrics exporter and its validating parser, the HTTP serve
surface on an ephemeral port, and the bench artifact envelope + diff.
"""

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs import events
from repro.obs.export import (
    OpenMetricsError,
    metric_name,
    parse_openmetrics,
    render_openmetrics,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    bucket_upper_bound,
    quantile_from_buckets,
)
from repro.obs.serve import ObsServer
from repro.obs.snapshot import Snapshotter
from repro.perf import QueryCache, execute_batch
from repro.resilience.guard import QueryGuard
from repro.resilience.run import run_query_guarded
from repro.xmldb.store import XMLStore


def make_store(n_docs: int = 3) -> XMLStore:
    store = XMLStore()
    for d in range(n_docs):
        store.load(
            f"doc{d}.xml",
            f"<article><t>alpha beta doc{d}</t>"
            f"<sec>alpha gamma</sec><sec>beta alpha beta</sec></article>",
        )
    return store


def query_for(doc: int) -> str:
    return (
        f'For $x in document("doc{doc}.xml")'
        "//article/descendant-or-self::* "
        'Score $x using ScoreFooExact($x, {"alpha"}, {"beta"}) '
        "Return $x Sortby(score)"
    )


# ----------------------------------------------------------------------
# Thread-safe obs core
# ----------------------------------------------------------------------

class TestConcurrentMetrics:
    """The tentpole concurrency regression: one collector driven by an
    8-worker batch must land *identical* counter totals to the same
    batch run sequentially, and its trace must stay well-formed."""

    N_REPEAT = 4

    def _run_batch(self, workers: int):
        store = make_store(4)
        sources = [query_for(d % 4) for d in range(4 * self.N_REPEAT)]
        with obs.collecting() as col:
            result = execute_batch(store, sources, max_workers=workers)
        assert result.n_failed == 0
        return col

    def test_8_worker_counters_equal_sequential(self):
        seq = self._run_batch(workers=1)
        par = self._run_batch(workers=8)
        seq_counters = {
            n: m.value for n, m in seq.metrics.items()
            if hasattr(m, "inc")
        }
        par_counters = {
            n: m.value for n, m in par.metrics.items()
            if hasattr(m, "inc")
        }
        assert seq_counters == par_counters
        assert seq_counters["batch.queries"] == 4 * self.N_REPEAT

    def test_concurrent_histogram_observation_count(self):
        hist = Histogram("h")
        n, per = 8, 2000

        def work():
            for i in range(per):
                hist.observe(float(i % 50))

        threads = [threading.Thread(target=work) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert hist.count == n * per
        zero, buckets = hist.bucket_counts()
        assert zero + sum(buckets.values()) == n * per

    def test_chrome_trace_valid_across_threads(self):
        col = self._run_batch(workers=8)
        trace = col.tracer.to_chrome_trace()
        assert trace["traceEvents"], "batch produced no spans"
        tids = set()
        for ev in trace["traceEvents"]:
            assert ev["ph"] == "X"
            assert ev["dur"] >= 0, f"negative duration in {ev['name']}"
            assert ev["ts"] >= 0
            tids.add(ev["tid"])
        # compacted tids are small and stable
        assert tids == set(range(len(tids)))

    def test_span_children_stay_on_their_thread(self):
        col = self._run_batch(workers=8)

        def check(span):
            for child in span.children:
                assert child.tid == span.tid, (
                    f"span {child.name!r} adopted across threads"
                )
                assert child.start_ns >= span.start_ns
                check(child)

        for root in col.tracer.roots:
            check(root)

    def test_end_on_wrong_thread_raises(self):
        t = obs.Tracer()
        span = t.begin("outer")
        err = []

        def other():
            try:
                t.end(span)
            except ValueError as exc:
                err.append(exc)

        th = threading.Thread(target=other)
        th.start()
        th.join()
        assert err and "not open on this thread" in str(err[0])
        t.end(span)  # still closable on the owning thread


# ----------------------------------------------------------------------
# Audit log
# ----------------------------------------------------------------------

class TestAuditLogSchema:
    def _one_record(self, **sink_kwargs):
        store = make_store(1)
        buf = io.StringIO()
        with events.logging_queries(buf, **sink_kwargs):
            run_query_guarded(store, query_for(0),
                              QueryGuard(max_rows=100, degrade=True))
        lines = buf.getvalue().splitlines()
        assert len(lines) == 1
        return json.loads(lines[0])

    def test_versioned_fields(self):
        r = self._one_record()
        assert r["v"] == events.SCHEMA_VERSION == 3
        for field in ("ts", "kind", "query_sha256", "outcome",
                      "wall_ms", "rows", "truncated", "reason",
                      "error_type", "cache", "plan_cache", "guard",
                      "ops", "slow", "trace_id"):
            assert field in r, f"missing field {field}"
        # Untraced local execution: the v3 trace_id field is present
        # but empty (the query server fills it per request).
        assert r["trace_id"] == ""
        assert r["kind"] == "query"
        assert r["outcome"] == "ok"
        assert r["rows"] > 0
        assert r["query_sha256"] == events.query_hash(query_for(0))
        assert len(r["query_sha256"]) == 16
        assert query_for(0) not in json.dumps(r), \
            "query text must never be logged"
        assert r["guard"] == {
            "active": True, "degraded": True, "trip": "",
        }
        # compilable query → top operators attached, with the v2
        # estimator columns populated (compiled plans are annotated)
        assert r["ops"] and all(
            set(op) == {"operator", "rows", "est_rows", "q_error",
                        "time_ms"}
            for op in r["ops"]
        )
        assert all(op["est_rows"] is not None and op["q_error"] >= 1.0
                   for op in r["ops"])

    def test_error_outcome(self):
        store = make_store(1)
        buf = io.StringIO()
        with events.logging_queries(buf):
            with pytest.raises(Exception):
                run_query_guarded(store, "not a query (",
                                  QueryGuard(degrade=True))
        r = json.loads(buf.getvalue().splitlines()[0])
        assert r["outcome"] == "error"
        assert r["error_type"] == "QuerySyntaxError"

    def test_nested_entry_points_emit_one_record(self):
        """batch → cache → guarded run is ONE query: one record, with
        the inner layers' annotations folded in."""
        store = make_store(2)
        buf = io.StringIO()
        cache = QueryCache(store)
        with events.logging_queries(buf):
            execute_batch(store, [query_for(0), query_for(1),
                                  query_for(0)],
                          max_workers=2, max_rows=100, cache=cache)
        records = [json.loads(x) for x in buf.getvalue().splitlines()]
        assert len(records) == 3
        assert all(r["kind"] == "batch" for r in records)
        by_hash = {}
        for r in records:
            by_hash.setdefault(r["query_sha256"], []).append(r)
        dup = by_hash[events.query_hash(query_for(0))]
        assert len(dup) == 2
        assert sorted(r["cache"] for r in dup) == ["hit", "miss"]

    def test_no_sink_yields_null_observation(self):
        assert not events.SINK.enabled
        cm = events.observe_query("whatever")
        with cm as ev:
            assert ev is None
            assert events.current_event() is None


class TestAuditLogSampling:
    def _emit_n(self, sink, n, wall_ms=1.0):
        for i in range(n):
            ev = events.QueryEvent(f"q{i}")
            ev.wall_ms = wall_ms
            sink.emit(ev)

    def test_sampling_deterministic_under_seed(self):
        decisions = []
        for _ in range(2):
            buf = io.StringIO()
            sink = events.JsonlSink(buf, sample_rate=0.3, seed=42)
            self._emit_n(sink, 200)
            kept = {json.loads(x)["query_sha256"]
                    for x in buf.getvalue().splitlines()}
            decisions.append(kept)
            assert sink.emitted + sink.sampled_out == 200
            assert 0 < sink.emitted < 200
        assert decisions[0] == decisions[1]

    def test_sampling_decisions_independent_of_latency(self):
        """One RNG draw per event whether slow or not: flipping some
        events to slow must not change which *other* events survive."""
        base, mixed = [], []
        for flip_slow in (False, True):
            buf = io.StringIO()
            sink = events.JsonlSink(buf, sample_rate=0.3, seed=7,
                                    slow_ms=100.0)
            for i in range(100):
                ev = events.QueryEvent(f"q{i}")
                ev.wall_ms = 500.0 if (flip_slow and i % 10 == 0) \
                    else 1.0
                sink.emit(ev)
            kept = {json.loads(x)["query_sha256"]
                    for x in buf.getvalue().splitlines()}
            (mixed if flip_slow else base).append(kept)
        # the untouched (never-slow) events must keep identical
        # sampling decisions whether or not other events were slow
        untouched = {events.query_hash(f"q{i}")
                     for i in range(100) if i % 10 != 0}
        assert base[0] & untouched == mixed[0] & untouched

    def test_slow_queries_survive_sampling(self):
        buf = io.StringIO()
        sink = events.JsonlSink(buf, sample_rate=0.0, seed=1,
                                slow_ms=10.0)
        self._emit_n(sink, 50, wall_ms=1.0)    # all sampled out
        self._emit_n(sink, 5, wall_ms=50.0)    # all force-logged
        records = [json.loads(x) for x in buf.getvalue().splitlines()]
        assert len(records) == 5
        assert all(r["slow"] for r in records)
        assert sink.slow_forced == 5
        assert sink.sampled_out == 50

    def test_sample_rate_validated(self):
        with pytest.raises(ValueError):
            events.JsonlSink(io.StringIO(), sample_rate=1.5)

    def test_iter_and_filter_events(self):
        buf = io.StringIO()
        sink = events.JsonlSink(buf, slow_ms=10.0)
        self._emit_n(sink, 3, wall_ms=1.0)
        self._emit_n(sink, 2, wall_ms=20.0)
        records = list(events.iter_events(
            io.StringIO(buf.getvalue())
        ))
        assert len(records) == 5
        assert len(list(events.filter_events(records,
                                             slow_only=True))) == 2
        assert len(list(events.filter_events(records,
                                             min_wall_ms=10.0))) == 2
        with pytest.raises(ValueError, match="line 1"):
            list(events.iter_events(["not json"]))


# ----------------------------------------------------------------------
# Snapshotter
# ----------------------------------------------------------------------

class TestSnapshotter:
    def test_ring_eviction(self):
        reg = MetricsRegistry()
        snap = Snapshotter(reg, capacity=4)
        for _ in range(10):
            snap.tick()
        assert len(snap) == 4
        assert snap.stats()["ticks"] == 10

    def test_rate_and_delta_over_window(self):
        reg = MetricsRegistry()
        now = [0.0]
        snap = Snapshotter(reg, capacity=100, clock=lambda: now[0])
        reg.count("q", 10)
        snap.tick()
        now[0] = 10.0
        reg.count("q", 40)
        snap.tick()
        assert snap.delta("q", 60.0) == 40.0
        assert snap.rate("q", 60.0) == pytest.approx(4.0)
        # the window selects the oldest snapshot *inside* it
        now[0] = 15.0
        reg.count("q", 5)
        snap.tick()
        assert snap.delta("q", 6.0) == 5.0      # only the last interval
        assert snap.delta("q", 60.0) == 45.0    # the whole history

    def test_insufficient_ticks_return_zero(self):
        reg = MetricsRegistry()
        snap = Snapshotter(reg, capacity=10)
        assert snap.rate("q", 60.0) == 0.0
        snap.tick()
        assert snap.rate("q", 60.0) == 0.0
        assert snap.quantile_over("h", 0.5, 60.0) == 0.0

    def test_hit_rate(self):
        reg = MetricsRegistry()
        now = [0.0]
        snap = Snapshotter(reg, capacity=10, clock=lambda: now[0])
        snap.tick()
        reg.count("hits", 30)
        reg.count("misses", 10)
        now[0] = 1.0
        snap.tick()
        assert snap.hit_rate("hits", "misses", 60.0) == \
            pytest.approx(0.75)
        assert snap.hit_rate("absent", "gone", 60.0) == 0.0

    def test_windowed_quantile_ages_out_old_spikes(self):
        reg = MetricsRegistry()
        now = [0.0]
        snap = Snapshotter(reg, capacity=10, clock=lambda: now[0])
        for _ in range(100):
            reg.observe("lat", 1000.0)          # old spike
        snap.tick()
        now[0] = 50.0
        for _ in range(100):
            reg.observe("lat", 2.0)             # recent traffic
        snap.tick()
        recent = snap.quantile_over("lat", 0.9, 60.0)
        lifetime = reg.histogram("lat").quantile(0.9)
        assert recent == pytest.approx(2.0, rel=0.15)
        assert lifetime > 100.0                 # spike still dominates

    def test_quantile_from_buckets_matches_histogram(self):
        hist = Histogram("h")
        for v in [1.0, 2.0, 4.0, 8.0, 16.0]:
            hist.observe(v)
        zero, buckets = hist.bucket_counts()
        est = quantile_from_buckets(zero, buckets, 0.5)
        # same bucket the histogram's own estimator picks, minus the
        # min/max clamp: within half a bucket of the true median
        assert est == pytest.approx(4.0, rel=0.2)

    def test_background_thread_ticks(self):
        reg = MetricsRegistry()
        with Snapshotter(reg, interval_s=0.02, capacity=50) as snap:
            deadline = time.time() + 2.0
            while len(snap) < 3 and time.time() < deadline:
                time.sleep(0.01)
        assert len(snap) >= 3
        assert snap._thread is None  # stopped cleanly

    def test_tick_emits_metric_when_collecting(self):
        reg = MetricsRegistry()
        snap = Snapshotter(reg, capacity=5)
        with obs.collecting() as col:
            snap.tick()
        assert col.metrics.counter("obs.snapshot.ticks").value == 1

    def test_constructor_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            Snapshotter(reg, interval_s=0.0)
        with pytest.raises(ValueError):
            Snapshotter(reg, capacity=1)


# ----------------------------------------------------------------------
# OpenMetrics exporter
# ----------------------------------------------------------------------

class TestOpenMetrics:
    def make_registry(self):
        reg = MetricsRegistry()
        reg.count("cache.plan.hits", 7)
        reg.set_gauge("index.n_terms", 123)
        for v in [0.0, 0.5, 2.0, 100.0, 100.0]:
            reg.observe("batch.query_ms", v)
        return reg

    def test_render_parse_roundtrip(self):
        text = render_openmetrics(self.make_registry())
        fams = parse_openmetrics(text)
        assert set(fams) == {
            "tix_cache_plan_hits", "tix_index_n_terms",
            "tix_batch_query_ms",
        }
        assert fams["tix_cache_plan_hits"]["type"] == "counter"
        (name, labels, value), = fams["tix_cache_plan_hits"]["samples"]
        assert name == "tix_cache_plan_hits_total" and value == 7
        assert fams["tix_index_n_terms"]["samples"][0][2] == 123
        hist = fams["tix_batch_query_ms"]
        assert hist["type"] == "histogram"
        count = [s for s in hist["samples"]
                 if s[0] == "tix_batch_query_ms_count"][0]
        assert count[2] == 5
        # catalog help text flows into # HELP
        assert "plan-tier hits" in str(
            fams["tix_cache_plan_hits"]["help"]
        )

    def test_histogram_buckets_cumulative_and_bounded(self):
        text = render_openmetrics(self.make_registry())
        fams = parse_openmetrics(text)  # parser enforces monotonicity
        buckets = [s for s in fams["tix_batch_query_ms"]["samples"]
                   if s[0] == "tix_batch_query_ms_bucket"]
        assert buckets[0][1]["le"] == "0.0" and buckets[0][2] == 1
        assert buckets[-1][1]["le"] == "+Inf" and buckets[-1][2] == 5
        # every finite le is a real geometric bucket bound
        for _, labels, _ in buckets[1:-1]:
            le = float(labels["le"])
            assert any(
                abs(le - bucket_upper_bound(i)) < 1e-9
                for i in range(-40, 40)
            )

    def test_empty_registry_renders_eof_only(self):
        text = render_openmetrics(MetricsRegistry())
        assert text == "# EOF\n"
        assert parse_openmetrics(text) == {}

    def test_metric_name_mapping(self):
        assert metric_name("cache.plan.hits") == "tix_cache_plan_hits"
        assert metric_name("a.b", prefix="x_") == "x_a_b"

    @pytest.mark.parametrize("bad,msg", [
        ("tix_x_total 1\n", "EOF"),
        ("tix_x_total 1\n# EOF", "outside its family"),
        ("# TYPE tix_x counter\ntix_x 1\n# EOF", "lacks _total"),
        ("# TYPE tix_x gauge\ntix_x_total 1\n# EOF", "has a suffix"),
        ("# TYPE tix_x wat\n# EOF", "unknown type"),
        ("# TYPE tix_x counter\ntix_x_total nan-ish\n# EOF",
         "bad sample value"),
    ])
    def test_parser_rejects_malformed(self, bad, msg):
        with pytest.raises(OpenMetricsError, match=msg):
            parse_openmetrics(bad)

    def test_parser_rejects_noncumulative_histogram(self):
        bad = "\n".join([
            "# TYPE tix_h histogram",
            'tix_h_bucket{le="1.0"} 5',
            'tix_h_bucket{le="2.0"} 3',   # decreasing!
            'tix_h_bucket{le="+Inf"} 5',
            "tix_h_count 5",
            "tix_h_sum 9.0",
            "# EOF",
        ])
        with pytest.raises(OpenMetricsError, match="cumulative"):
            parse_openmetrics(bad)


# ----------------------------------------------------------------------
# HTTP serve surface
# ----------------------------------------------------------------------

class TestObsServer:
    def test_endpoints(self):
        col = obs.Collector()
        obs.install(col)
        try:
            col.metrics.count("batch.queries", 3)
            snap = Snapshotter(col.metrics, capacity=5)
            snap.tick()
            snap.tick()
            with ObsServer(col.metrics, snapshotter=snap) as srv:
                base = srv.url
                assert srv.port > 0
                body = urllib.request.urlopen(
                    base + "/healthz", timeout=5).read()
                assert body == b"ok\n"
                text = urllib.request.urlopen(
                    base + "/metrics", timeout=5).read().decode()
                fams = parse_openmetrics(text)
                assert fams["tix_batch_queries"]["samples"][0][2] == 3
                varz = json.loads(urllib.request.urlopen(
                    base + "/varz", timeout=5).read().decode())
                assert "metrics" in varz and "uptime_s" in varz
                assert set(varz["snapshot"]["windows"]) == {"1m", "5m"}
                # the server observes itself: next scrape sees the
                # serve.* metrics of the previous requests
                text2 = urllib.request.urlopen(
                    base + "/metrics", timeout=5).read().decode()
                fams2 = parse_openmetrics(text2)
                assert "tix_serve_requests_metrics" in fams2
                assert "tix_serve_request_ms" in fams2
                with pytest.raises(urllib.error.HTTPError) as exc:
                    urllib.request.urlopen(base + "/nope", timeout=5)
                assert exc.value.code == 404
        finally:
            obs.uninstall()


class TestObsServerShutdown:
    """Regression tests for the draining stop(): a stalled client must
    not hang shutdown (ThreadingMixIn's unbounded handler join), and an
    in-flight scrape must complete before the socket teardown."""

    def test_stop_bounded_with_stalled_client(self):
        import socket

        col = obs.Collector()
        srv = ObsServer(col.metrics)
        srv.start()
        # a slowloris peer: connects, sends half a request line, stalls
        stall = socket.create_connection(("127.0.0.1", srv.port),
                                         timeout=5.0)
        stall.sendall(b"GET /met")
        time.sleep(0.1)  # let the handler thread block in recv
        t0 = time.monotonic()
        srv.stop(timeout=1.0)
        elapsed = time.monotonic() - t0
        stall.close()
        # without the bounded drain this join never returns (the
        # handler sits in a 30 s socket read)
        assert elapsed < 5.0

    def test_stop_drains_inflight_scrape(self, monkeypatch):
        col = obs.Collector()
        col.metrics.count("batch.queries", 1)
        srv = ObsServer(col.metrics)
        slow = threading.Event()

        def slow_varz():
            slow.set()
            time.sleep(0.3)
            return {"uptime_s": 0.0, "metrics": {}}

        monkeypatch.setattr(srv, "varz", slow_varz)
        srv.start()
        got = []

        def scrape():
            body = urllib.request.urlopen(
                srv.url + "/varz", timeout=10).read()
            got.append(json.loads(body.decode()))

        th = threading.Thread(target=scrape)
        th.start()
        assert slow.wait(5.0)  # the scrape is now in flight
        srv.stop(timeout=5.0)
        th.join(5.0)
        # the in-flight response completed despite the shutdown
        assert got and "metrics" in got[0]

    def test_stop_idempotent_after_drain(self):
        col = obs.Collector()
        srv = ObsServer(col.metrics)
        srv.start()
        body = urllib.request.urlopen(
            srv.url + "/healthz", timeout=5).read()
        assert body == b"ok\n"
        srv.stop()
        srv.stop()  # second stop must not raise


# ----------------------------------------------------------------------
# Disabled-path overhead (extends the zero-overhead contract to the
# event log and snapshotter; see test_explain_analyze's TermJoin test)
# ----------------------------------------------------------------------

class TestDisabledTelemetryOverhead:
    """With the null recorder installed and no audit sink, the
    telemetry hooks a query crosses (observe_query enter/exit plus the
    current_event annotation probes) must cost under 5% of a
    Table-1-shaped guarded query; an idle (never-started) snapshotter
    must not add anything at all to the query path."""

    N_HOOK_ITERS = 2000

    def _hook_cost_per_query(self) -> float:
        """Seconds of pure disabled-path hook work one query pays:
        one observe_query context + the annotation probes the wired
        entry points make (guard, plan, caches, result)."""
        best = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            for _ in range(self.N_HOOK_ITERS):
                with events.observe_query("q") as ev:
                    assert ev is None
                    for _ in range(6):
                        events.current_event()
            best = min(best, time.perf_counter() - t0)
        return best / self.N_HOOK_ITERS

    def test_disabled_hooks_under_five_percent(self):
        assert not obs.RECORDER.enabled
        assert not events.SINK.enabled
        store = make_store(4)
        source = query_for(0)
        guard_kwargs = dict(max_rows=10_000, degrade=True)
        run_query_guarded(store, source,
                          QueryGuard(**guard_kwargs))  # warm up

        def best_query_time(reps=5):
            best = float("inf")
            for _ in range(reps):
                t0 = time.perf_counter()
                run_query_guarded(store, source,
                                  QueryGuard(**guard_kwargs))
                best = min(best, time.perf_counter() - t0)
            return best

        # Accept the first attempt under the bound (timing comparisons
        # are noisy; mirrors TestDisabledOverhead's retry pattern).
        ratios = []
        for _ in range(5):
            ratio = self._hook_cost_per_query() / best_query_time()
            ratios.append(ratio)
            if ratio < 0.05:
                return
        pytest.fail(
            "disabled telemetry hooks >= 5% of a guarded query in "
            "every attempt: " + ", ".join(f"{r:.4f}" for r in ratios)
        )

    def test_idle_snapshotter_touches_nothing_on_query_path(self):
        """A constructed-but-not-started snapshotter takes no locks and
        samples nothing unless ticked — the query path never sees it."""
        reg = MetricsRegistry()
        snap = Snapshotter(reg, interval_s=60.0, capacity=10)
        store = make_store(1)
        run_query_guarded(store, query_for(0),
                          QueryGuard(max_rows=100, degrade=True))
        assert len(snap) == 0
        assert snap.stats()["ticks"] == 0
        assert snap._thread is None


# ----------------------------------------------------------------------
# Bench artifacts
# ----------------------------------------------------------------------

class TestBenchArtifact:
    def make(self, rows):
        from repro.bench.artifact import make_artifact
        from repro.bench.harness import BenchResult

        result = BenchResult("t", ["param", "A", "B"],
                             [list(r) for r in rows])
        return make_artifact(result, table="table1", scale=0.05,
                             runs=3)

    def test_envelope_and_load(self, tmp_path):
        from repro.bench.artifact import SCHEMA_VERSION, load_artifact

        art = self.make([[20, 1.0, 2.0]])
        assert art["schema_version"] == SCHEMA_VERSION
        assert art["kind"] == "tix-bench"
        path = tmp_path / "a.json"
        path.write_text(json.dumps(art))
        assert load_artifact(str(path))["table"] == "table1"
        path.write_text(json.dumps({"kind": "other"}))
        with pytest.raises(ValueError, match="not a tix-bench"):
            load_artifact(str(path))
        art["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(art))
        with pytest.raises(ValueError, match="newer"):
            load_artifact(str(path))

    def test_diff_flags_10_percent_regressions(self):
        from repro.bench.artifact import diff_artifacts

        old = self.make([[20, 1.00, 2.00], [100, 5.00, 1.00]])
        new = self.make([[20, 1.20, 2.05], [100, 4.00, 1.00]])
        diffs = diff_artifacts(old, new, threshold=0.10)
        flagged = {(d.row, d.column): d for d in diffs}
        assert set(flagged) == {("20", "A"), ("100", "A")}
        assert flagged[("20", "A")].regression          # 20% slower
        assert not flagged[("100", "A")].regression     # 20% faster
        assert diffs[0].regression                      # sorted first

    def test_committed_baseline_is_valid(self):
        from repro.bench.artifact import diff_artifacts, load_artifact

        art = load_artifact("BENCH_PR5.json")
        assert art["table"] == "table1"
        assert diff_artifacts(art, art) == []  # self-diff is clean
