"""Unit tests for scored trees (SNode/STree) and hierarchy rebuilding."""

import pytest

from repro.core.trees import (
    SNode,
    STree,
    build_minimal_hierarchy,
    snode_from_document,
    tree_from_document,
    tree_from_text,
)
from repro.xmldb.parser import parse_document


def make_tree():
    root = SNode("a")
    b = root.add_child(SNode("b", words=["one", "two"]))
    c = root.add_child(SNode("c"))
    d = c.add_child(SNode("d", words=["three"]))
    return STree(root), (root, b, c, d)


class TestSNode:
    def test_preorder_document_order(self):
        tree, (root, b, c, d) = make_tree()
        assert [n.tag for n in tree.nodes()] == ["a", "b", "c", "d"]

    def test_subtree_words(self):
        tree, _ = make_tree()
        assert tree.root.subtree_words() == ["one", "two", "three"]

    def test_alltext(self):
        tree, (_r, _b, c, _d) = make_tree()
        assert c.alltext() == "three"

    def test_find_by_tag(self):
        tree, _ = make_tree()
        assert len(tree.root.find_by_tag("d")) == 1

    def test_n_nodes(self):
        tree, _ = make_tree()
        assert tree.n_nodes() == 4

    def test_shallow_copy_independent(self):
        tree, (_r, b, *_rest) = make_tree()
        b.score = 1.5
        b.labels = {"$1"}
        copy = b.shallow_copy()
        assert copy.score == 1.5 and copy.labels == {"$1"}
        copy.words.append("extra")
        assert b.words == ["one", "two"]

    def test_deep_copy_detached(self):
        tree, _ = make_tree()
        clone = tree.deep_copy()
        clone.root.children[0].words.append("mutated")
        assert tree.root.children[0].words == ["one", "two"]

    def test_is_ancestor_after_renumber(self):
        tree, (root, b, c, d) = make_tree()
        assert root.is_ancestor_of(d)
        assert c.is_ancestor_of(d)
        assert not b.is_ancestor_of(d)
        assert not d.is_ancestor_of(d)

    def test_sketch(self):
        tree, (_r, b, *_rest) = make_tree()
        b.score = 0.8
        assert tree.sketch() == "a(b[0.8],c(d))"

    def test_to_xml_with_scores(self):
        tree, (_r, b, *_rest) = make_tree()
        b.score = 0.8
        xml = tree.to_xml(with_scores=True)
        assert 'score="0.8"' in xml
        assert "<d>three</d>" in xml


class TestDocumentConversion:
    def test_snode_mirrors_document(self):
        doc = parse_document('<a x="1">t<b>u</b></a>')
        node = snode_from_document(doc, 0)
        assert node.tag == "a"
        assert node.attrs == {"x": "1"}
        assert node.source == (0, 0)
        assert node.words == ["t"]
        assert node.children[0].words == ["u"]

    def test_tree_from_subtree(self):
        doc = parse_document("<a><b>x y</b><c/></a>")
        tree = tree_from_document(doc, 1)
        assert tree.root.tag == "b"
        assert tree.n_nodes() == 1

    def test_tree_from_text(self):
        tree = tree_from_text("p", "Hello World")
        assert tree.root.words == ["hello", "world"]


class TestMinimalHierarchy:
    def test_rebuild_skips_middle(self):
        tree, (root, _b, _c, d) = make_tree()
        roots = build_minimal_hierarchy([d, root])
        assert len(roots) == 1
        assert roots[0].tag == "a"
        assert [c.tag for c in roots[0].children] == ["d"]

    def test_duplicates_merged(self):
        tree, (root, b, *_rest) = make_tree()
        roots = build_minimal_hierarchy([b, root, b])
        assert len(roots) == 1
        assert len(roots[0].children) == 1

    def test_forest_when_no_common_ancestor_included(self):
        tree, (_root, b, _c, d) = make_tree()
        roots = build_minimal_hierarchy([b, d])
        assert [r.tag for r in roots] == ["b", "d"]

    def test_order_is_document_order(self):
        tree, (root, b, c, d) = make_tree()
        roots = build_minimal_hierarchy([c, b, root])
        assert [k.tag for k in roots[0].children] == ["b", "c"]

    def test_copies_carry_order_intervals(self):
        tree, (root, _b, _c, d) = make_tree()
        roots = build_minimal_hierarchy([root, d])
        copy_d = roots[0].children[0]
        assert copy_d.order_start == d.order_start
        assert copy_d.order_end == d.order_end
