"""Unit tests for the scoring-function library."""

import math

import pytest

from repro.core.scoring import (
    ProximityScorer,
    TfIdfScorer,
    WeightedCountScorer,
    cosine_similarity,
    count_phrase,
    s_stem,
    score_bar,
    score_sim,
)
from repro.core.trees import SNode, STree, tree_from_text


class TestCountPhrase:
    def test_single_term(self):
        assert count_phrase(["a", "b", "a"], ["a"]) == 2

    def test_two_term_phrase(self):
        assert count_phrase(["x", "a", "b", "a", "b"], ["a", "b"]) == 2

    def test_overlapping(self):
        assert count_phrase(["a", "a", "a"], ["a", "a"]) == 2

    def test_no_match(self):
        assert count_phrase(["a", "b"], ["b", "a"]) == 0

    def test_phrase_longer_than_text(self):
        assert count_phrase(["a"], ["a", "b"]) == 0

    def test_empty_phrase(self):
        assert count_phrase(["a"], []) == 0


class TestSStem:
    def test_plural_stripped(self):
        assert s_stem("engines") == "engine"

    def test_short_words_kept(self):
        assert s_stem("was") == "was"

    def test_double_s_kept(self):
        assert s_stem("class") == "class"

    def test_non_plural_unchanged(self):
        assert s_stem("engine") == "engine"


class TestWeightedCountScorer:
    def test_paper_weights(self):
        scorer = WeightedCountScorer(
            primary=["search engine"],
            secondary=["internet", "information retrieval"],
        )
        s = scorer.score_words(
            "search engine newsinessence uses a new information "
            "retrieval technology".split()
        )
        assert s == pytest.approx(1.4)

    def test_stemming_recovers_plural_phrase(self):
        scorer = WeightedCountScorer(primary=["search engine"], stem=True)
        assert scorer.score_words(["some", "search", "engines"]) == \
            pytest.approx(0.8)
        unstemmed = WeightedCountScorer(primary=["search engine"])
        assert unstemmed.score_words(["some", "search", "engines"]) == 0.0

    def test_custom_weights(self):
        scorer = WeightedCountScorer(["a"], ["b"], primary_weight=2.0,
                                     secondary_weight=0.5)
        assert scorer.score_words(["a", "b", "b"]) == pytest.approx(3.0)

    def test_score_node_uses_subtree(self):
        root = SNode("r", words=["internet"])
        root.add_child(SNode("c", words=["internet"]))
        STree(root)
        scorer = WeightedCountScorer([], ["internet"])
        assert scorer.score_node(root) == pytest.approx(1.2)

    def test_score_from_counts_matches_score_words(self):
        scorer = WeightedCountScorer(["a"], ["b"])
        words = ["a", "b", "a", "c"]
        assert scorer.score_from_counts({"a": 2, "b": 1}) == \
            pytest.approx(scorer.score_words(words))

    def test_term_weights_single_terms_only(self):
        scorer = WeightedCountScorer(["a", "two words"], ["b"])
        assert scorer.term_weights() == {"a": 0.8, "b": 0.6}


class TestTfIdf:
    def test_normalization_by_length(self):
        scorer = TfIdfScorer(["x"], idf={"x": 2.0})
        short = scorer.score_words(["x"])
        long_ = scorer.score_words(["x"] + ["pad"] * 3)
        assert short == pytest.approx(2.0)
        assert long_ == pytest.approx(2.0 / math.sqrt(4))

    def test_empty_words(self):
        assert TfIdfScorer(["x"], {}).score_words([]) == 0.0

    def test_counts_entry_point(self):
        scorer = TfIdfScorer(["x"], idf={"x": 3.0})
        assert scorer.score_from_counts({"x": 2}, subtree_len=4) == \
            pytest.approx(6.0 / 2.0)
        assert scorer.score_from_counts({"x": 2}, subtree_len=0) == 0.0


class TestProximityScorer:
    def test_same_node_distance(self):
        scorer = ProximityScorer(["a", "b"])
        # adjacent in the same text node: d=1 → bonus 1/2
        s = scorer.score_from_occurrences(
            [("a", 5, 0), ("b", 5, 1)], n_children=0,
            n_relevant_children=0,
        )
        assert s == pytest.approx(2.0 + 0.5)

    def test_cross_node_distance(self):
        scorer = ProximityScorer(["a", "b"], node_distance=20)
        s = scorer.score_from_occurrences(
            [("a", 5, 0), ("b", 6, 0)], 0, 0
        )
        assert s == pytest.approx(2.0 + 1.0 / 21.0)

    def test_same_term_pairs_no_bonus(self):
        scorer = ProximityScorer(["a", "b"])
        s = scorer.score_from_occurrences(
            [("a", 5, 0), ("a", 5, 1)], 0, 0
        )
        assert s == pytest.approx(2.0)

    def test_child_ratio_scales(self):
        scorer = ProximityScorer(["a"])
        occ = [("a", 1, 0)]
        full = scorer.score_from_occurrences(occ, 2, 2)
        half = scorer.score_from_occurrences(occ, 2, 1)
        assert half == pytest.approx(full / 2)

    def test_score_node_matches_occurrence_path(self):
        root = SNode("r")
        c1 = root.add_child(SNode("c", words=["a", "x", "b"]))
        root.add_child(SNode("c", words=["none"]))
        STree(root)
        scorer = ProximityScorer(["a", "b"])
        expected = scorer.score_from_occurrences(
            [("a", 1, 0), ("b", 1, 2)], n_children=2,
            n_relevant_children=1,
        )
        assert scorer.score_node(root) == pytest.approx(expected)

    def test_empty_occurrences(self):
        assert ProximityScorer(["a"]).score_from_occurrences([], 3, 0) == 0.0


class TestJoinScoring:
    def test_score_sim_distinct_common_words(self):
        a = tree_from_text("t", "internet technologies").root
        b = tree_from_text("t", "internet technologies").root
        assert score_sim(a, b) == 2.0

    def test_score_sim_no_overlap(self):
        a = tree_from_text("t", "alpha").root
        b = tree_from_text("t", "beta").root
        assert score_sim(a, b) == 0.0

    def test_score_bar_gates_on_second(self):
        assert score_bar(2.0, 0.8) == pytest.approx(2.8)
        assert score_bar(2.0, 0.0) == 0.0
        assert score_bar(2.0, -1.0) == 0.0

    def test_cosine_similarity(self):
        assert cosine_similarity(["a", "b"], ["a", "b"]) == pytest.approx(1.0)
        assert cosine_similarity(["a"], ["b"]) == 0.0
        assert cosine_similarity([], ["b"]) == 0.0
        assert 0 < cosine_similarity(["a", "b"], ["a"]) < 1
