"""Unit tests for the §5.2 score-modifying engine operators (ValueJoin,
ScoredUnion) and the histogram-driven Pick criterion (§5.3)."""

import pytest

from repro.core.pick import PickCriterion, criterion_from_histogram
from repro.core.trees import SNode, STree
from repro.engine import ScoredUnion, ValueJoin, execute
from repro.engine.base import Operator


class _ListSource(Operator):
    name = "list-source"

    def __init__(self, trees):
        super().__init__()
        self.trees = trees

    def _open(self):
        self._i = 0

    def _next(self):
        if self._i >= len(self.trees):
            return None
        t = self.trees[self._i]
        self._i += 1
        return t


def tree(tag, score, words=(), source=None):
    node = SNode(tag, score=score, words=list(words), source=source)
    return STree(node)


class TestValueJoin:
    def test_similarity_condition(self):
        left = [tree("l1", 1.0, ["apple", "pie"]),
                tree("l2", 2.0, ["kiwi"])]
        right = [tree("r1", 3.0, ["apple", "tart"]),
                 tree("r2", 4.0, ["pear"])]
        plan = ValueJoin(
            _ListSource(left), _ListSource(right),
            condition=lambda a, b: bool(
                set(a.root.words) & set(b.root.words)
            ),
        )
        out = execute(plan)
        assert len(out) == 1
        assert out[0].root.tag == "tix_prod_root"
        assert out[0].score == pytest.approx(4.0)  # 1.0 + 3.0

    def test_weights_and_custom_fn(self):
        left = [tree("l", 1.0, ["k"])]
        right = [tree("r", 2.0, ["k"])]
        plan = ValueJoin(
            _ListSource(left), _ListSource(right),
            condition=lambda a, b: True,
            score_fn=lambda a, b: max(a, b),
            w1=10.0, w2=1.0,
        )
        out = execute(plan)
        assert out[0].score == pytest.approx(10.0)

    def test_no_matches(self):
        plan = ValueJoin(
            _ListSource([tree("l", 1.0)]),
            _ListSource([tree("r", 2.0)]),
            condition=lambda a, b: False,
        )
        assert execute(plan) == []

    def test_cartesian_cardinality(self):
        left = [tree("l", 1.0) for _ in range(3)]
        right = [tree("r", 1.0) for _ in range(4)]
        plan = ValueJoin(
            _ListSource(left), _ListSource(right),
            condition=lambda a, b: True,
        )
        assert len(execute(plan)) == 12

    def test_children_are_copies(self):
        l = tree("l", 1.0, ["w"])
        plan = ValueJoin(
            _ListSource([l]), _ListSource([tree("r", 1.0)]),
            condition=lambda a, b: True,
        )
        out = execute(plan)
        out[0].root.children[0].words.append("mutant")
        assert l.root.words == ["w"]


class TestScoredUnion:
    def test_shared_source_merged(self):
        left = [tree("x", 1.0, source=(0, 5))]
        right = [tree("x", 2.0, source=(0, 5))]
        out = execute(ScoredUnion(_ListSource(left), _ListSource(right)))
        assert len(out) == 1
        assert out[0].score == pytest.approx(3.0)

    def test_one_sided_trees_kept(self):
        left = [tree("a", 1.0, source=(0, 1))]
        right = [tree("b", 2.0, source=(0, 2))]
        out = execute(ScoredUnion(
            _ListSource(left), _ListSource(right), w1=2.0, w2=0.5,
        ))
        scores = {t.root.tag: t.score for t in out}
        assert scores == {"a": 2.0, "b": 1.0}

    def test_membership_bonus_combine(self):
        # "give more weight to x that belongs to both A and B"
        def bonus(a, b):
            both = a > 0 and b > 0
            return (a + b) * (1.5 if both else 1.0)

        left = [tree("x", 2.0, source=(0, 1)),
                tree("y", 2.0, source=(0, 2))]
        right = [tree("x", 2.0, source=(0, 1))]
        out = execute(ScoredUnion(
            _ListSource(left), _ListSource(right), combine=bonus,
        ))
        scores = {t.root.tag: t.score for t in out}
        assert scores["x"] == pytest.approx(6.0)
        assert scores["y"] == pytest.approx(2.0)


class TestHistogramCriterion:
    def make_tree(self):
        root = SNode("root", score=0.1)
        for i in range(100):
            root.add_child(SNode("c", score=i / 100.0))
        return STree(root)

    def test_threshold_tracks_fraction(self):
        tree_ = self.make_tree()
        crit = criterion_from_histogram(tree_, top_fraction=0.2)
        assert isinstance(crit, PickCriterion)
        relevant = [
            n for n in tree_.nodes() if crit.is_relevant(n)
        ]
        # conservative: at least 20% qualify, not wildly more
        assert 20 <= len(relevant) <= 35

    def test_wider_fraction_lower_threshold(self):
        tree_ = self.make_tree()
        narrow = criterion_from_histogram(tree_, 0.1)
        wide = criterion_from_histogram(tree_, 0.5)
        assert wide.relevance_threshold <= narrow.relevance_threshold

    def test_options_carried(self):
        tree_ = self.make_tree()
        crit = criterion_from_histogram(
            tree_, 0.3, qualification=0.7, ignore_zero_children=True
        )
        assert crit.qualification == 0.7
        assert crit.ignore_zero_children
