"""Good/bad fixtures for the concurrency analysis pass: the lock
graph builder and the ``lock-order`` / ``shared-state-race`` /
``blocking-under-lock`` rules (plus the generalized
``lock-discipline``).

Fixture trees live under the concurrent module prefixes
(``repro/perf``, ``repro/server``, ``repro/obs``) because that is the
rules' scanning scope.  Each bad fixture has a conforming twin, and
suppression comments are exercised per rule.
"""

import textwrap

from repro.analysis import build_project, lint
from repro.analysis.concurrency import lock_graph

_REGISTRIES = {
    "repro/obs/catalog.py": "CATALOG = {}\n",
    "repro/resilience/faultinject.py": "FAULT_POINTS = {}\n",
    "repro/access/registry.py": "ACCESS_METHODS = {}\n",
}


def run_lint(tmp_path, files, rules):
    root = tmp_path / "src"
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return lint(root=root, rules=rules)


def build(tmp_path, files):
    root = tmp_path / "src"
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return build_project(root)


def messages(result):
    return [f"{f.path}:{f.line} {f.message}" for f in result.findings]


# ----------------------------------------------------------------------
# lock graph builder
# ----------------------------------------------------------------------

_TWO_LOCK_CLASSES = {
    "repro/perf/pair.py": """
        import threading

        class A:
            def __init__(self, b):
                self._lock = threading.Lock()
                self.b: "B" = b

            def use(self):
                with self._lock:
                    self.b.poke()

        class B:
            def __init__(self):
                self._lock = threading.Lock()

            def poke(self):
                with self._lock:
                    pass
    """,
}


class TestLockGraph:
    def test_identities_and_edges(self, tmp_path):
        files = dict(_TWO_LOCK_CLASSES)
        files["repro/perf/use.py"] = """
            import threading
            from repro.perf.pair import A, B

            def run():
                a = A(B())
                a.use()
        """
        project = build(tmp_path, files)
        graph = lock_graph(project)
        assert graph.locks == {
            "A._lock": "lock", "B._lock": "lock",
        }
        edge = graph.edges[("A._lock", "B._lock")]
        assert edge.src == "A._lock" and edge.dst == "B._lock"
        # The witness trail names both acquisition sites.
        assert any("A.use acquires A._lock" in s for s in edge.witness)
        assert any("B.poke acquires B._lock" in s
                   for s in edge.witness)

    def test_entry_held_for_locked_private_helper(self, tmp_path):
        project = build(tmp_path, {
            "repro/perf/helper.py": """
                import threading

                class C:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.n = 0

                    def bump(self):
                        with self._lock:
                            self._inc()

                    def _inc(self):
                        self.n += 1
            """,
        })
        graph = lock_graph(project)
        assert graph.entry_held[("C", "_inc")] == {"C._lock"}

    def test_thread_roots_mark_shared_classes(self, tmp_path):
        project = build(tmp_path, {
            "repro/perf/escape.py": """
                import threading

                class Tally:
                    def __init__(self):
                        self.n = 0

                    def bump(self):
                        self.n += 1

                class Runner:
                    def __init__(self):
                        self.tally = Tally()

                    def start(self):
                        t = threading.Thread(target=self._loop)
                        t.start()

                    def _loop(self):
                        self.tally.bump()

                    def total(self):
                        return self.tally.bump()
            """,
        })
        graph = lock_graph(project)
        assert "Tally" in graph.shared
        assert any(r.startswith("thread:")
                   for r in graph.shared["Tally"])


# ----------------------------------------------------------------------
# lock-order
# ----------------------------------------------------------------------

# ``backward`` takes the locks in the same global order as
# ``forward`` (A then B) — a DAG, no finding.
_DAG = {
    **_REGISTRIES,
    "repro/perf/abba.py": """
        import threading

        class A:
            def __init__(self, b):
                self._lock = threading.Lock()
                self.b: "B" = b

            def forward(self):
                with self._lock:
                    self.b.deep()

            def tail(self):
                pass

        class B:
            def __init__(self, a):
                self._lock = threading.Lock()
                self.a: "A" = a

            def deep(self):
                with self._lock:
                    pass

        def wire(a: A, b: B):
            a.forward()
    """,
}


class TestLockOrder:
    RULES = ["lock-order"]

    def test_abba_cycle_is_reported_with_witness(self, tmp_path):
        files = {
            **_REGISTRIES,
            "repro/perf/abba.py": """
                import threading

                class A:
                    def __init__(self, b):
                        self._lock = threading.Lock()
                        self.b: "B" = b

                    def forward(self):
                        with self._lock:
                            self.b.deep()

                class B:
                    def __init__(self, a):
                        self._lock = threading.Lock()
                        self.a: "A" = a

                    def deep(self):
                        with self._lock:
                            pass

                    def backward(self):
                        with self._lock:
                            with self.a._lock:
                                pass
                """,
        }
        result = run_lint(tmp_path, files, self.RULES)
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "lock-order"
        assert finding.severity == "error"
        assert "A._lock" in finding.message
        assert "B._lock" in finding.message
        assert finding.witness  # full path shipped with the finding
        assert any("acquires" in step for step in finding.witness)

    def test_dag_is_clean(self, tmp_path):
        result = run_lint(tmp_path, _DAG, self.RULES)
        assert result.findings == [], messages(result)

    def test_self_deadlock_on_nonreentrant_lock(self, tmp_path):
        files = {
            **_REGISTRIES,
            "repro/perf/selfdead.py": """
                import threading

                class C:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def outer(self):
                        with self._lock:
                            self._inner()

                    def _inner(self):
                        with self._lock:
                            pass
            """,
        }
        result = run_lint(tmp_path, files, self.RULES)
        assert len(result.findings) == 1
        assert "re-acquisition" in result.findings[0].message

    def test_rlock_reacquire_is_fine(self, tmp_path):
        files = {
            **_REGISTRIES,
            "repro/perf/selfdead.py": """
                import threading

                class C:
                    def __init__(self):
                        self._lock = threading.RLock()

                    def outer(self):
                        with self._lock:
                            self._inner()

                    def _inner(self):
                        with self._lock:
                            pass
            """,
        }
        result = run_lint(tmp_path, files, self.RULES)
        assert result.findings == [], messages(result)


# ----------------------------------------------------------------------
# shared-state-race
# ----------------------------------------------------------------------

_ESCAPED = {
    **_REGISTRIES,
    "repro/server/escape.py": """
        import threading

        class Tally:
            def __init__(self):
                self.n = 0

            def bump(self):
                self.n += 1

        class Runner:
            def __init__(self):
                self.tally = Tally()
                self._lock = threading.Lock()

            def start(self):
                t = threading.Thread(target=self._loop)
                t.start()

            def _loop(self):
                self.tally.bump()

            def total(self):
                self.tally.bump()
                return self.tally.n
    """,
}

_CONFINED = {
    **_REGISTRIES,
    "repro/server/escape.py": """
        class Tally:
            def __init__(self):
                self.n = 0

            def bump(self):
                self.n += 1

        def summarize(items):
            t = Tally()
            for _ in items:
                t.bump()
            return t.n
    """,
}


class TestSharedStateRace:
    RULES = ["shared-state-race"]

    def test_escaped_attribute_write_is_reported(self, tmp_path):
        result = run_lint(tmp_path, _ESCAPED, self.RULES)
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.rule == "shared-state-race"
        assert "Tally.bump writes self.n" in finding.message
        assert finding.witness  # names the roots that reach it

    def test_confined_class_is_clean(self, tmp_path):
        result = run_lint(tmp_path, _CONFINED, self.RULES)
        assert result.findings == [], messages(result)

    def test_lock_owning_class_is_lock_disciplines_domain(
            self, tmp_path):
        files = dict(_ESCAPED)
        files["repro/server/escape.py"] = files[
            "repro/server/escape.py"
        ].replace(
            "def __init__(self):\n                self.n = 0",
            "def __init__(self):\n"
            "                import threading\n"
            "                self._lock = threading.Lock()\n"
            "                self.n = 0",
        )
        result = run_lint(tmp_path, files, self.RULES)
        assert result.findings == [], messages(result)

    def test_class_level_suppression(self, tmp_path):
        files = dict(_ESCAPED)
        files["repro/server/escape.py"] = files[
            "repro/server/escape.py"
        ].replace(
            "class Tally:",
            "class Tally:  # tix-lint: disable=shared-state-race",
        )
        result = run_lint(tmp_path, files, self.RULES)
        assert result.findings == [], messages(result)

    def test_threading_local_subclass_is_exempt(self, tmp_path):
        files = {
            **_REGISTRIES,
            "repro/server/tls.py": """
                import threading

                class PerThread(threading.local):
                    def poke(self):
                        self.n = 1

                class Runner:
                    def __init__(self):
                        self.state = PerThread()

                    def start(self):
                        t = threading.Thread(target=self._loop)
                        t.start()

                    def _loop(self):
                        self.state.poke()

                    def read(self):
                        self.state.poke()
            """,
        }
        result = run_lint(tmp_path, files, self.RULES)
        assert result.findings == [], messages(result)


# ----------------------------------------------------------------------
# blocking-under-lock
# ----------------------------------------------------------------------

_BLOCKING = {
    **_REGISTRIES,
    "repro/obs/sink.py": """
        import threading
        import time

        class Sink:
            def __init__(self):
                self._lock = threading.Lock()
                self.n = 0

            def emit(self):
                with self._lock:
                    self.n += 1
                    time.sleep(0.1)
    """,
}

_NON_BLOCKING = {
    **_REGISTRIES,
    "repro/obs/sink.py": """
        import threading
        import time

        class Sink:
            def __init__(self):
                self._lock = threading.Lock()
                self.n = 0

            def emit(self):
                with self._lock:
                    self.n += 1
                time.sleep(0.1)
    """,
}


class TestBlockingUnderLock:
    RULES = ["blocking-under-lock"]

    def test_sleep_under_lock_is_reported(self, tmp_path):
        result = run_lint(tmp_path, _BLOCKING, self.RULES)
        assert len(result.findings) == 1
        finding = result.findings[0]
        assert finding.severity == "warning"
        assert "time.sleep()" in finding.message
        assert "Sink._lock" in finding.message
        assert finding.witness

    def test_sleep_outside_lock_is_clean(self, tmp_path):
        result = run_lint(tmp_path, _NON_BLOCKING, self.RULES)
        assert result.findings == [], messages(result)

    def test_blocking_reached_through_helper(self, tmp_path):
        files = {
            **_REGISTRIES,
            "repro/obs/sink.py": """
                import threading
                import time

                class Sink:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def emit(self):
                        with self._lock:
                            self._write()

                    def _write(self):
                        time.sleep(0.1)
            """,
        }
        result = run_lint(tmp_path, files, self.RULES)
        assert len(result.findings) == 1
        # Anchored at the sleep, witness shows the acquiring caller.
        assert any("Sink.emit acquires" in s
                   for s in result.findings[0].witness)

    def test_wait_on_only_held_condition_is_exempt(self, tmp_path):
        files = {
            **_REGISTRIES,
            "repro/server/adm.py": """
                import threading

                class Gate:
                    def __init__(self):
                        self._cond = threading.Condition()

                    def block(self):
                        with self._cond:
                            self._cond.wait(0.1)
            """,
        }
        result = run_lint(tmp_path, files, self.RULES)
        assert result.findings == [], messages(result)

    def test_wait_while_holding_another_lock_is_reported(
            self, tmp_path):
        files = {
            **_REGISTRIES,
            "repro/server/adm.py": """
                import threading

                class Gate:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._cond = threading.Condition()

                    def block(self):
                        with self._lock:
                            with self._cond:
                                self._cond.wait(0.1)
            """,
        }
        result = run_lint(tmp_path, files, self.RULES)
        assert len(result.findings) == 1
        assert "Gate._lock" in result.findings[0].message

    def test_suppression_on_call_line(self, tmp_path):
        files = dict(_BLOCKING)
        files["repro/obs/sink.py"] = files["repro/obs/sink.py"].replace(
            "time.sleep(0.1)",
            "time.sleep(0.1)  "
            "# tix-lint: disable=blocking-under-lock",
        )
        result = run_lint(tmp_path, files, self.RULES)
        assert result.findings == [], messages(result)
        assert len(result.suppressed) == 1


# ----------------------------------------------------------------------
# generalized lock-discipline
# ----------------------------------------------------------------------

class TestGeneralizedLockDiscipline:
    RULES = ["lock-discipline"]

    def test_server_module_is_now_in_scope(self, tmp_path):
        files = {
            **_REGISTRIES,
            "repro/server/state.py": """
                import threading

                class S:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.n = 0

                    def bump(self):
                        self.n += 1
            """,
        }
        result = run_lint(tmp_path, files, self.RULES)
        assert len(result.findings) == 1
        assert "S.bump mutates self.n" in result.findings[0].message

    def test_condition_attr_counts_as_the_lock(self, tmp_path):
        files = {
            **_REGISTRIES,
            "repro/server/state.py": """
                import threading

                class S:
                    def __init__(self):
                        self._cond = threading.Condition()
                        self.n = 0

                    def bump(self):
                        with self._cond:
                            self.n += 1
            """,
        }
        result = run_lint(tmp_path, files, self.RULES)
        assert result.findings == [], messages(result)

    def test_private_helper_called_under_lock_is_exempt(
            self, tmp_path):
        files = {
            **_REGISTRIES,
            "repro/perf/state.py": """
                import threading

                class S:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.n = 0

                    def bump(self):
                        with self._lock:
                            self._inc()

                    def _inc(self):
                        self.n += 1
            """,
        }
        result = run_lint(tmp_path, files, self.RULES)
        assert result.findings == [], messages(result)

    def test_event_mutator_is_exempt(self, tmp_path):
        files = {
            **_REGISTRIES,
            "repro/obs/state.py": """
                import threading

                class S:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._stop = threading.Event()

                    def halt(self):
                        self._stop.clear()
            """,
        }
        result = run_lint(tmp_path, files, self.RULES)
        assert result.findings == [], messages(result)
