"""Unit tests for the TIX algebra operators (selection, projection,
product/join, threshold, union, value join, ordering)."""

import pytest

from repro.core.operators import (
    evaluate_match_scores,
    group_by_root_score,
    product,
    scored_join,
    scored_selection,
    scored_projection,
    scored_union,
    scored_value_join,
    sort_by_score,
    threshold,
    top_k_trees,
    union_collections,
)
from repro.core.pattern import (
    Combine,
    EdgeType,
    ExistingScore,
    FromLabel,
    JoinScore,
    PatternNode,
    PhraseScore,
    ScoredPatternTree,
)
from repro.core.scoring import WeightedCountScorer
from repro.core.trees import SNode, STree, tree_from_document
from repro.xmldb.parser import parse_document


def simple_pattern(term="hit"):
    p1 = PatternNode("$1", tag="a")
    p1.add_child(PatternNode("$2"), EdgeType.ADS)
    return ScoredPatternTree(p1, scoring={
        "$2": PhraseScore(WeightedCountScorer([term])),
        "$1": FromLabel("$2"),
    })


@pytest.fixture()
def tree():
    return tree_from_document(parse_document(
        "<a><b>hit</b><c>hit hit</c><d>nothing</d></a>"
    ))


class TestSelection:
    def test_one_witness_per_embedding(self, tree):
        out = scored_selection([tree], simple_pattern())
        assert len(out) == 4  # $2 binds a, b, c, d

    def test_scores_assigned(self, tree):
        out = scored_selection([tree], simple_pattern())
        by_tag = {}
        for t in out:
            for n in t.nodes():
                if "$2" in n.labels:
                    by_tag[n.tag] = n.score
        assert by_tag["b"] == pytest.approx(0.8)
        assert by_tag["c"] == pytest.approx(1.6)
        assert by_tag["d"] == 0.0
        assert by_tag["a"] == pytest.approx(2.4)

    def test_root_score_copies_secondary(self, tree):
        out = scored_selection([tree], simple_pattern())
        for t in out:
            secondary = [n for n in t.nodes() if "$1" in n.labels]
            primary = [n for n in t.nodes() if "$2" in n.labels]
            assert secondary[0].score == primary[0].score

    def test_empty_collection(self):
        assert scored_selection([], simple_pattern()) == []

    def test_labels_stamped(self, tree):
        out = scored_selection([tree], simple_pattern())
        labels = set()
        for t in out:
            for n in t.nodes():
                labels |= n.labels
        assert labels == {"$1", "$2"}


class TestProjection:
    def test_single_output_per_input(self, tree):
        out = scored_projection([tree], simple_pattern(), ["$1", "$2"])
        assert len(out) == 1

    def test_zero_score_nodes_dropped(self, tree):
        out = scored_projection([tree], simple_pattern(), ["$1", "$2"])
        tags = {n.tag for n in out[0].nodes()}
        assert "d" not in tags
        assert tags == {"a", "b", "c"}

    def test_drop_zero_disabled(self, tree):
        out = scored_projection(
            [tree], simple_pattern(), ["$1", "$2"], drop_zero=False
        )
        tags = {n.tag for n in out[0].nodes()}
        assert "d" in tags

    def test_secondary_is_max_of_sources(self, tree):
        out = scored_projection([tree], simple_pattern(), ["$1", "$2"])
        root = out[0].root
        # own primary score (2.4, root matches $2 too) is the max here
        assert root.score == pytest.approx(2.4)

    def test_non_matching_tree_skipped(self):
        other = tree_from_document(parse_document("<z/>"))
        assert scored_projection([other], simple_pattern(), ["$1"]) == []

    def test_unknown_pl_label_rejected(self, tree):
        from repro.errors import PatternError

        with pytest.raises(PatternError):
            scored_projection([tree], simple_pattern(), ["$9"])


class TestProductAndJoin:
    def test_product_cardinality(self, tree):
        other = tree_from_document(parse_document("<x/>"))
        out = product([tree, tree], [other, other, other])
        assert len(out) == 6
        assert all(t.root.tag == "tix_prod_root" for t in out)

    def test_product_children_are_copies(self, tree):
        other = tree_from_document(parse_document("<x/>"))
        out = product([tree], [other])
        out[0].root.children[0].words.append("mutant")
        assert "mutant" not in tree.root.words

    def test_scored_join_with_join_score(self):
        left = tree_from_document(parse_document("<l><t>same words</t></l>"))
        right = tree_from_document(parse_document("<r><t>same words</t></r>"))
        p1 = PatternNode("$1", tag="tix_prod_root")
        p2 = p1.add_child(PatternNode("$2", tag="l"), EdgeType.AD)
        p3 = p2.add_child(PatternNode("$3", tag="t"), EdgeType.PC)
        p7 = p1.add_child(PatternNode("$7", tag="r"), EdgeType.AD)
        p8 = p7.add_child(PatternNode("$8", tag="t"), EdgeType.PC)
        from repro.core.scoring import score_sim

        pattern = ScoredPatternTree(p1, scoring={
            "$join": JoinScore(score_sim, "$3", "$8"),
            "$1": Combine(lambda j: j, ["$join"]),
        })
        out = scored_join([left], [right], pattern)
        assert len(out) == 1
        assert out[0].score == pytest.approx(2.0)


class TestThreshold:
    def _scored_trees(self):
        trees = []
        for i, s in enumerate([0.5, 2.0, 4.5]):
            node = SNode(f"t{i}", score=s)
            node.labels = {"$x"}
            trees.append(STree(node))
        return trees

    def test_v_condition_strict(self):
        out = threshold(self._scored_trees(), "$x", min_score=2.0)
        assert [t.root.tag for t in out] == ["t2"]

    def test_top_k(self):
        out = threshold(self._scored_trees(), "$x", top_k=2)
        assert {t.root.tag for t in out} == {"t1", "t2"}

    def test_top_k_larger_than_input(self):
        out = threshold(self._scored_trees(), "$x", top_k=10)
        assert len(out) == 3

    def test_combined_v_and_k(self):
        out = threshold(self._scored_trees(), "$x", min_score=0.6, top_k=1)
        assert [t.root.tag for t in out] == ["t2"]

    def test_no_conditions_passthrough(self):
        trees = self._scored_trees()
        assert threshold(trees, "$x") == trees

    def test_label_mismatch_filters_all(self):
        out = threshold(self._scored_trees(), "$other", min_score=0.0)
        assert out == []


class TestUnionAndOrdering:
    def test_union_collections(self):
        a = [STree(SNode("a"))]
        b = [STree(SNode("b"))]
        assert [t.root.tag for t in union_collections(a, b)] == ["a", "b"]

    def test_scored_union_merges_same_source(self):
        n1 = SNode("x", score=1.0, source=(0, 5))
        n2 = SNode("x", score=2.0, source=(0, 5))
        out = scored_union([STree(n1)], [STree(n2)])
        assert len(out) == 1
        assert out[0].score == pytest.approx(3.0)

    def test_scored_union_keeps_singletons(self):
        n1 = SNode("x", score=1.0, source=(0, 5))
        n2 = SNode("y", score=2.0, source=(0, 9))
        out = scored_union([STree(n1)], [STree(n2)], w1=2.0, w2=0.5)
        scores = {t.root.tag: t.score for t in out}
        assert scores == {"x": 2.0, "y": 1.0}

    def test_scored_value_join(self):
        a = STree(SNode("a", score=1.0, words=["k1"]))
        b = STree(SNode("b", score=2.0, words=["k1"]))
        c = STree(SNode("c", score=9.0, words=["other"]))
        out = scored_value_join(
            [a], [b, c],
            condition=lambda x, y: set(x.root.words) & set(y.root.words),
        )
        assert len(out) == 1
        assert out[0].score == pytest.approx(3.0)

    def test_sort_by_score_none_last(self):
        t1, t2 = STree(SNode("a", score=1.0)), STree(SNode("b"))
        out = sort_by_score([t2, t1])
        assert [t.root.tag for t in out] == ["a", "b"]

    def test_top_k_trees(self):
        trees = [STree(SNode(f"t{i}", score=float(i))) for i in range(5)]
        out = top_k_trees(trees, 2)
        assert [t.root.tag for t in out] == ["t4", "t3"]

    def test_group_by_root_score(self):
        trees = [STree(SNode("a", score=1.0)),
                 STree(SNode("b", score=1.0)),
                 STree(SNode("c", score=3.0))]
        groups = group_by_root_score(trees)
        assert [g[0] for g in groups] == [3.0, 1.0]
        assert len(groups[1][1]) == 2


class TestEvaluateMatchScores:
    def test_existing_score_rule(self):
        p1 = PatternNode("$1")
        pattern = ScoredPatternTree(p1, scoring={"$1": ExistingScore()})
        node = SNode("x", score=7.0)
        assert evaluate_match_scores(pattern, {"$1": node})["$1"] == 7.0

    def test_combine_rule_ordering(self):
        p1 = PatternNode("$1")
        p2 = p1.add_child(PatternNode("$2"), EdgeType.ADS)
        pattern = ScoredPatternTree(p1, scoring={
            "$1": Combine(lambda a: a * 2, ["$2"]),
            "$2": ExistingScore(),
        })
        node = SNode("x", score=3.0)
        scores = evaluate_match_scores(pattern, {"$1": node, "$2": node})
        assert scores["$1"] == 6.0
