"""Runtime lock sanitizer: wrapper semantics, order-inversion
detection, static-order seeding, live deadlock breaking, Condition
compatibility, env-var gating, and metric emission.

Every test that installs the global patch uninstalls it again —
leaking a patched ``threading.Lock`` would poison the rest of the
suite.
"""

import threading

import pytest

from repro.analysis import sanitizer
from repro.analysis.sanitizer import (
    DeadlockError,
    LockSanitizer,
    _RealLock,
    _RealRLock,
)


@pytest.fixture
def san():
    return LockSanitizer(poll_s=0.01)


@pytest.fixture
def installed(monkeypatch):
    monkeypatch.setattr(sanitizer, "_ACTIVE", None)
    monkeypatch.setattr(threading, "Lock", _RealLock)
    monkeypatch.setattr(threading, "RLock", _RealRLock)
    yield
    sanitizer.uninstall()


# ----------------------------------------------------------------------
# wrapper semantics
# ----------------------------------------------------------------------

class TestWrappers:
    def test_lock_protocol(self, san):
        lock = san.make_lock("a")
        assert not lock.locked()
        with lock:
            assert lock.locked()
            assert san.held_names() == ["a"]
        assert not lock.locked()
        assert san.held_names() == []
        assert san.acquisitions == 1

    def test_nonblocking_acquire_failure(self, san):
        lock = san.make_lock("a")
        lock.acquire()
        try:
            in_other = []
            t = threading.Thread(
                target=lambda: in_other.append(lock.acquire(False)))
            t.start()
            t.join()
            assert in_other == [False]
        finally:
            lock.release()

    def test_rlock_is_reentrant(self, san):
        rlock = san.make_rlock("r")
        with rlock:
            with rlock:
                assert san.held_names() == ["r"]
            assert rlock.locked()
        assert not rlock.locked()

    def test_condition_on_sanitized_rlock(self, san):
        cond = threading.Condition(san.make_rlock("c"))
        done = []

        def waiter():
            with cond:
                while not done:
                    cond.wait(1.0)

        t = threading.Thread(target=waiter)
        t.start()
        with cond:
            done.append(True)
            cond.notify()
        t.join(5.0)
        assert not t.is_alive()
        # wait() fully released and reacquired: nothing leaks into
        # this thread's held stack.
        assert san.held_names() == []


# ----------------------------------------------------------------------
# order checking
# ----------------------------------------------------------------------

class TestOrdering:
    def test_consistent_order_is_clean(self, san):
        a, b = san.make_lock("a"), san.make_lock("b")
        for _ in range(2):
            with a:
                with b:
                    pass
        assert san.violations() == []
        assert ("a", "b") in san.order_edges()

    def test_inversion_is_a_violation(self, san):
        a, b = san.make_lock("a"), san.make_lock("b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        (v,) = san.violations()
        assert v.kind == "order"
        assert v.lock == "a"
        assert v.held == ("b",)

    def test_static_order_makes_first_inversion_a_violation(self, san):
        san.feed_static_order([("a", "b")])
        a, b = san.make_lock("a"), san.make_lock("b")
        # No prior runtime observation needed: the static graph
        # already proves a → b, so b → a is instantly wrong.
        with b:
            with a:
                pass
        (v,) = san.violations()
        assert v.kind == "static-order"

    def test_three_lock_transitive_inversion(self, san):
        a, b, c = (san.make_lock(n) for n in "abc")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:
                pass  # a is reachable from c via b
        (v,) = san.violations()
        assert v.lock == "a" and v.held == ("c",)


# ----------------------------------------------------------------------
# deadlock detection
# ----------------------------------------------------------------------

class TestDeadlock:
    def test_real_abba_deadlock_is_broken(self, san):
        a, b = san.make_lock("a"), san.make_lock("b")
        barrier = threading.Barrier(2, timeout=5.0)
        errors = []

        def one():
            with a:
                barrier.wait()
                try:
                    with b:
                        pass
                except DeadlockError as exc:
                    errors.append(exc)

        def two():
            with b:
                barrier.wait()
                try:
                    with a:
                        pass
                except DeadlockError as exc:
                    errors.append(exc)

        t1 = threading.Thread(target=one)
        t2 = threading.Thread(target=two)
        t1.start()
        t2.start()
        t1.join(10.0)
        t2.join(10.0)
        # Neither thread hangs: at least one got DeadlockError and
        # released its lock, letting the other finish.
        assert not t1.is_alive() and not t2.is_alive()
        assert len(errors) >= 1
        assert san.deadlocks >= 1
        assert "cyclic wait" in str(errors[0])

    def test_plain_contention_is_not_a_deadlock(self, san):
        lock = san.make_lock("a")
        hits = []

        def worker():
            with lock:
                hits.append(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(5.0)
        assert len(hits) == 4
        assert san.deadlocks == 0


# ----------------------------------------------------------------------
# global install / env gating
# ----------------------------------------------------------------------

class TestInstall:
    def test_install_patches_and_uninstall_restores(self, installed):
        san = sanitizer.install()
        assert sanitizer.active() is san
        lock = threading.Lock()
        assert isinstance(lock, sanitizer._SanitizedLock)
        with lock:
            assert san.held_names()  # allocation-site identity
        cond = threading.Condition()  # picks up the patched RLock
        with cond:
            pass
        sanitizer.uninstall()
        assert sanitizer.active() is None
        assert threading.Lock is _RealLock
        assert threading.RLock is _RealRLock
        # Orphan wrappers keep working, silently.
        with lock:
            pass
        assert san.held_names() == []

    def test_install_is_idempotent(self, installed):
        first = sanitizer.install()
        assert sanitizer.install() is first

    def test_allocation_site_names_are_distinct(self, installed):
        sanitizer.install()
        lock_a = threading.Lock()
        lock_b = threading.Lock()
        # Same call site qualname, different lines.
        assert lock_a._name != lock_b._name
        assert "test_allocation_site_names_are_distinct" in lock_a._name

    def test_env_gate_off(self, installed, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
        assert sanitizer.install_from_env() is None
        assert threading.Lock is _RealLock

    def test_env_gate_on(self, installed, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_VAR, "1")
        san = sanitizer.install_from_env()
        assert san is not None
        assert sanitizer.active() is san


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------

class TestMetrics:
    def test_sanitizer_metrics_flow_through_recorder(self, san):
        from repro import obs

        with obs.collecting() as col:
            a, b = san.make_lock("a"), san.make_lock("b")
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        snap = col.metrics.snapshot()
        assert snap["sanitizer.acquisitions"] == 4
        assert snap["sanitizer.order_violations"] == 1
        assert snap["sanitizer.locks_tracked"] == 2

    def test_metric_names_are_cataloged(self):
        from repro.obs.catalog import CATALOG

        for name in (
            "sanitizer.acquisitions",
            "sanitizer.order_violations",
            "sanitizer.deadlocks",
            "sanitizer.locks_tracked",
        ):
            assert name in CATALOG
