"""Decorrelated-jitter backoff tests for :func:`repro.resilience.retry`:
seeded determinism, the [base, 3·prev] envelope, the max_delay cap, and
the default deterministic-exponential schedule staying unchanged."""

import random

import pytest

from repro.resilience.faultinject import retry


def _failing(times):
    """A callable failing ``times`` times before succeeding."""
    state = {"calls": 0}

    def fn():
        state["calls"] += 1
        if state["calls"] <= times:
            raise OSError(f"transient #{state['calls']}")
        return state["calls"]

    return fn


def _run_schedule(attempts, *, jitter, seed=None, base=0.01, cap=None):
    delays = []
    result = retry(
        _failing(attempts - 1),
        attempts=attempts,
        base_delay=base,
        sleep=delays.append,
        jitter=jitter,
        max_delay=cap,
        rng=random.Random(seed) if seed is not None else None,
    )
    return result, delays


class TestDeterministicExponential:
    def test_default_schedule_unchanged(self):
        _, delays = _run_schedule(4, jitter=False, base=0.01)
        assert delays == [0.01, 0.02, 0.04]

    def test_max_delay_caps_exponential(self):
        _, delays = _run_schedule(5, jitter=False, base=0.01, cap=0.02)
        assert delays == [0.01, 0.02, 0.02, 0.02]


class TestDecorrelatedJitter:
    def test_same_seed_same_schedule(self):
        _, first = _run_schedule(5, jitter=True, seed=42)
        _, second = _run_schedule(5, jitter=True, seed=42)
        assert first == second
        assert len(first) == 4

    def test_different_seeds_decorrelate(self):
        schedules = {
            tuple(_run_schedule(5, jitter=True, seed=s)[1])
            for s in range(8)
        }
        assert len(schedules) > 1

    def test_delays_stay_inside_the_decorrelated_envelope(self):
        base = 0.01
        for seed in range(20):
            _, delays = _run_schedule(6, jitter=True, seed=seed,
                                      base=base)
            prev = base
            for delay in delays:
                assert base <= delay <= prev * 3.0
                prev = delay

    def test_max_delay_caps_jitter(self):
        cap = 0.015
        for seed in range(20):
            _, delays = _run_schedule(6, jitter=True, seed=seed,
                                      base=0.01, cap=cap)
            assert all(d <= cap for d in delays)

    def test_unseeded_jitter_still_works(self):
        result, delays = _run_schedule(3, jitter=True)
        assert result == 3
        assert len(delays) == 2

    def test_exhausted_attempts_reraise(self):
        with pytest.raises(OSError, match="transient #2"):
            retry(_failing(5), attempts=2, sleep=lambda _d: None,
                  jitter=True, rng=random.Random(1))
