"""Unit tests for the Pick operator: criterion, tree-level semantics, and
the stack-based access method."""

import pytest

from repro.access.pick import PickAccess
from repro.core.pick import (
    PickCriterion,
    compute_picked,
    default_same_class_by_level,
    pick_tree,
    prune_tree,
)
from repro.core.trees import SNode, STree


def scored_tree():
    """root(1.0) -> [a(0.9) -> [a1(0.9), a2(0.1)], b(0.2) -> [b1(0.85)]]"""
    root = SNode("root", score=1.0)
    a = root.add_child(SNode("a", score=0.9))
    a1 = a.add_child(SNode("a1", score=0.9))
    a2 = a.add_child(SNode("a2", score=0.1))
    b = root.add_child(SNode("b", score=0.2))
    b1 = b.add_child(SNode("b1", score=0.85))
    tree = STree(root)
    return tree, {"root": root, "a": a, "a1": a1, "a2": a2,
                  "b": b, "b1": b1}


class TestCriterion:
    def test_relevance(self):
        crit = PickCriterion(relevance_threshold=0.8)
        assert crit.is_relevant(SNode("x", score=0.8))
        assert not crit.is_relevant(SNode("x", score=0.79))
        assert not crit.is_relevant(SNode("x"))

    def test_leaf_worth_is_relevance(self):
        crit = PickCriterion()
        assert crit.worth(SNode("x", score=0.9), [])
        assert not crit.worth(SNode("x", score=0.1), [])

    def test_internal_worth_uses_children_fraction(self):
        crit = PickCriterion(qualification=0.5)
        kids = [SNode("k", score=s) for s in (0.9, 0.9, 0.1)]
        assert crit.worth(SNode("x", score=0.0), kids)
        kids2 = [SNode("k", score=s) for s in (0.9, 0.1)]
        assert not crit.worth(SNode("x", score=9.0), kids2)  # 50% not >50%

    def test_ignore_zero_children(self):
        crit = PickCriterion(ignore_zero_children=True)
        kids = [SNode("k", score=0.9), SNode("k", score=0.0), SNode("k")]
        assert crit.worth(SNode("x"), kids)  # 1/1 after filtering

    def test_custom_det_worth_overrides(self):
        crit = PickCriterion(det_worth=lambda n: n.tag == "yes")
        assert crit.worth(SNode("yes"), [])
        assert not crit.worth(SNode("no", score=9.9), [])


class TestComputePicked:
    def test_parent_blocks_direct_child_only(self):
        tree, n = scored_tree()
        candidates = {id(v) for v in n.values()}
        picked = compute_picked(tree, candidates, PickCriterion())
        # root: 1/2 children relevant -> not picked
        # a: 1/2 -> not picked; a1 leaf relevant, parent a not picked -> picked
        # b: 1/1 (b1 relevant) -> picked; b1 parent picked -> blocked
        names = {k for k, v in n.items() if id(v) in picked}
        assert names == {"a1", "b"}

    def test_grandchild_of_picked_can_be_picked(self):
        root = SNode("root", score=0.0)
        top = root.add_child(SNode("top", score=0.9))
        mid = top.add_child(SNode("mid", score=0.9))
        leaf = mid.add_child(SNode("leaf", score=0.9))
        tree = STree(root)
        cands = {id(top), id(mid), id(leaf)}
        picked = compute_picked(tree, cands, PickCriterion())
        assert id(top) in picked       # 1/1 relevant children
        assert id(mid) not in picked   # parent picked
        assert id(leaf) in picked      # parent (mid) not picked

    def test_non_candidates_ignored(self):
        tree, n = scored_tree()
        picked = compute_picked(tree, {id(n["a1"])}, PickCriterion())
        assert picked == {id(n["a1"])}

    def test_horizontal_elimination(self):
        root = SNode("root")
        k1 = root.add_child(SNode("k", score=0.9))
        k2 = root.add_child(SNode("k", score=0.9))
        tree = STree(root)
        crit = PickCriterion(
            is_same_class=lambda a, b: a.tag == b.tag
        )
        picked = compute_picked(tree, {id(k1), id(k2)}, crit)
        assert picked == {id(k1)}  # document-first survives

    def test_same_class_by_level_parity(self):
        tree, n = scored_tree()
        same = default_same_class_by_level(tree)
        assert same(n["a"], n["b"])          # both level 1
        assert not same(n["root"], n["a"])   # levels 0 vs 1
        assert same(n["root"], n["a1"])      # levels 0 vs 2


class TestPrune:
    def test_dropped_candidates_promote_children(self):
        tree, n = scored_tree()
        candidates = {id(n["a"]), id(n["a1"])}
        out = prune_tree(tree, candidates, {id(n["a1"])})
        # 'a' dropped, a1/a2 promoted under root
        tags = [c.tag for c in out.root.children]
        assert tags == ["a1", "a2", "b"]

    def test_nothing_dropped(self):
        tree, n = scored_tree()
        out = prune_tree(tree, set(), set())
        assert out.n_nodes() == tree.n_nodes()

    def test_dropped_root_yields_context_copy(self):
        tree, n = scored_tree()
        candidates = {id(n["root"])}
        out = prune_tree(tree, candidates, set())
        assert out.root.tag == "root"
        assert out.root.score is None  # context only
        assert len(out.root.children) == 2

    def test_everything_dropped_returns_none(self):
        root = SNode("only", score=0.1)
        tree = STree(root)
        assert prune_tree(tree, {id(root)}, set()) is None

    def test_pick_tree_combines(self):
        tree, n = scored_tree()
        candidates = {id(v) for v in n.values() if v.tag != "root"}
        out = pick_tree(tree, candidates, PickCriterion())
        # picked = {a1, b}: a dropped (children promoted), a2 dropped
        # (unpicked candidate), b1 dropped (parent picked); root is not a
        # candidate and survives as context.
        tags = sorted(x.tag for x in out.nodes())
        assert tags == ["a1", "b", "root"]


class TestPickAccess:
    def test_matches_core_semantics(self):
        tree, n = scored_tree()
        candidates = {id(v) for v in n.values()}
        core = compute_picked(tree, candidates, PickCriterion())
        access = PickAccess(PickCriterion())
        picked = access.picked_nodes(tree)
        assert {id(x) for x in picked} == core

    def test_picked_in_document_order(self):
        tree, _n = scored_tree()
        access = PickAccess(PickCriterion())
        picked = access.picked_nodes(tree)
        starts = [p.order_start for p in picked]
        assert starts == sorted(starts)

    def test_run_returns_pruned_tree(self):
        tree, n = scored_tree()
        access = PickAccess(PickCriterion())
        picked, out = access.run(tree)
        assert {p.tag for p in picked} == {"a1", "b"}
        assert out is not None
        # dropped candidates absent, their children promoted
        tags = sorted(x.tag for x in out.nodes())
        assert "a" not in tags and "b1" not in tags

    def test_custom_candidate_predicate(self):
        tree, n = scored_tree()
        access = PickAccess(
            PickCriterion(), is_candidate=lambda x: x.tag == "b"
        )
        picked, out = access.run(tree)
        assert [p.tag for p in picked] == ["b"]
        assert sorted(x.tag for x in out.nodes()) == \
            ["a", "a1", "a2", "b", "b1", "root"]

    def test_horizontal_in_access(self):
        root = SNode("root")
        k1 = root.add_child(SNode("k", score=0.9))
        k2 = root.add_child(SNode("k", score=0.9))
        tree = STree(root)
        access = PickAccess(PickCriterion(
            is_same_class=lambda a, b: a.tag == b.tag
        ))
        picked = access.picked_nodes(tree)
        assert len(picked) == 1 and picked[0] is k1

    def test_deep_tree_no_recursion_error(self):
        # A 5000-deep chain exceeds Python's default recursion limit;
        # both STree.renumber and the access method must be iterative.
        root = SNode("n", score=0.9)
        cur = root
        for _ in range(5000):
            cur = cur.add_child(SNode("n", score=0.9))
        tree = STree(root)
        access = PickAccess(PickCriterion())
        picked, pruned = access.run(tree)
        # every node is a relevant candidate with one relevant child, so
        # picks alternate down the chain: ceil(5001 / 2) picked
        assert len(picked) == 2501
        assert pruned is not None
