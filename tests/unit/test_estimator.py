"""Unit tests for the plan estimator (``repro.plan``).

Covers the q-error math (1-safety, symmetry), the catalog estimate
primitives (term/phrase frequencies, containment selectivity from the
level histogram, structural-join clamping), exact leaf estimates on a
seeded corpus, composite sanity bounds, the generation-keyed statistics
cache on the store, EXPLAIN rendering of estimates, the ``estimate.*``
metrics, and the audit-log misestimation feedback report (including
mixed schema-version logs).
"""

import io
import json

import pytest

from repro import obs
from repro.engine.base import execute, explain, plan_stats
from repro.engine.operators import PhraseFinderScan, TermJoinScan
from repro.errors import UnknownTermError
from repro.plan.estimate import (
    PHRASE_ADJACENCY,
    containment_selectivity,
    estimate_plan,
    phrase_estimate,
    publish_qerrors,
    qerror,
    structural_join_estimate,
    term_estimate,
)
from repro.plan.feedback import feedback_report
from repro.query import parse_query
from repro.query.compiler import compile_query
from repro.xmldb.stats import StoreStatistics
from repro.xmldb.store import XMLStore


def make_store() -> XMLStore:
    """Seeded corpus with known term frequencies: 'alpha' x6,
    'beta' x4, 'gamma' x2, 'delta' x1 across two documents."""
    return XMLStore.from_sources({
        "a.xml": (
            "<article><t>alpha beta alpha</t>"
            "<sec>alpha gamma beta</sec>"
            "<sec>beta alpha delta</sec></article>"
        ),
        "b.xml": (
            "<article><t>alpha beta</t>"
            "<sec>alpha gamma</sec></article>"
        ),
    })


QUERY = '''
For $x in document("a.xml")//article/descendant-or-self::*
Score $x using ScoreFooExact($x, {"alpha"}, {"beta"})
Return $x
Sortby(score)
'''


class TestQError:
    def test_perfect_estimate(self):
        assert qerror(42.0, 42) == 1.0

    def test_symmetric(self):
        assert qerror(10.0, 100) == qerror(100.0, 10) == 10.0

    def test_one_safety_zero_actual(self):
        # actual = 0 must not blow up; both sides clamp to 1 row
        assert qerror(5.0, 0) == 5.0
        assert qerror(0.0, 5) == 5.0
        assert qerror(0.0, 0) == 1.0

    def test_sub_row_disagreement_is_perfect(self):
        assert qerror(0.2, 0.9) == 1.0


class TestCatalogPrimitives:
    def test_term_estimate_is_catalog_frequency(self):
        stats = make_store().stats
        assert term_estimate(stats, "alpha") == 6.0
        assert term_estimate(stats, "delta") == 1.0

    def test_term_estimate_case_folds(self):
        stats = make_store().stats
        assert term_estimate(stats, "ALPHA") == 6.0

    def test_unknown_term_estimates_zero(self):
        stats = make_store().stats
        assert term_estimate(stats, "nosuchterm") == 0.0

    def test_strict_runtime_does_not_change_catalog_answer(self):
        # The catalog answers 0.0 for unknown terms whether or not the
        # runtime index would raise in strict mode.
        store = make_store()
        assert term_estimate(store.stats, "nosuchterm") == 0.0
        with pytest.raises(UnknownTermError):
            store.index.postings("nosuchterm", strict=True)

    def test_phrase_estimate_rarest_term_bounds(self):
        stats = make_store().stats
        # min(freq) = 2 (gamma), one extra word => x PHRASE_ADJACENCY
        est = phrase_estimate(stats, ["alpha", "gamma"])
        assert est == pytest.approx(2.0 * PHRASE_ADJACENCY)

    def test_phrase_estimate_single_word_exact(self):
        stats = make_store().stats
        assert phrase_estimate(stats, ["beta"]) == 4.0

    def test_phrase_estimate_zero_frequency_word_kills_phrase(self):
        stats = make_store().stats
        assert phrase_estimate(stats, ["alpha", "nosuchterm"]) == 0.0

    def test_phrase_estimate_empty(self):
        assert phrase_estimate(make_store().stats, []) == 0.0

    def test_term_estimate_dispatches_phrases(self):
        stats = make_store().stats
        assert term_estimate(stats, "alpha gamma") == \
            phrase_estimate(stats, ["alpha", "gamma"])

    def test_containment_selectivity_matches_histogram(self):
        stats = make_store().stats
        n = stats.n_elements
        pairs = sum(lv * c for lv, c in stats.level_counts.items())
        assert containment_selectivity(stats) == \
            pytest.approx(pairs / (n * n))
        assert 0.0 < containment_selectivity(stats) <= 1.0

    def test_structural_join_clamped_by_depth_bound(self):
        stats = make_store().stats
        # Absurd inputs: the output may never exceed every descendant
        # paired with its full ancestor chain.
        est = structural_join_estimate(stats, 1e9, 10.0)
        assert est <= 10.0 * stats.max_depth

    def test_structural_join_zero_inputs(self):
        stats = make_store().stats
        assert structural_join_estimate(stats, 0.0, 0.0) == 0.0


class TestPlanAnnotation:
    def test_leaf_estimate_exactly_catalog_frequency(self):
        store = make_store()
        plan = compile_query(store, parse_query(QUERY))
        leaf = plan
        while leaf.children:
            leaf = leaf.children[0]
        assert leaf.name == "termjoin-scan"
        # No-threshold leaf: estimate is EXACTLY the summed catalog
        # frequencies of the query terms (alpha=6 + beta=4).
        assert leaf.est_rows == float(
            store.stats.frequency("alpha") + store.stats.frequency("beta")
        )

    def test_phrasefinder_leaf_estimate_exact(self):
        store = make_store()
        scan = PhraseFinderScan(store, ["alpha", "gamma"])
        estimate_plan(scan, store)
        assert scan.est_rows == pytest.approx(
            phrase_estimate(store.stats, ["alpha", "gamma"])
        )

    def test_every_operator_annotated_with_monotone_cost(self):
        store = make_store()
        plan = compile_query(store, parse_query(QUERY))

        def check(op):
            assert op.est_rows is not None and op.est_rows >= 0.0
            assert op.est_cost is not None and op.est_cost >= 0.0
            for child in op.children:
                assert op.est_cost >= child.est_cost  # cumulative
                check(child)

        check(plan)

    def test_composite_estimates_within_sanity_bound(self):
        store = make_store()
        plan = compile_query(store, parse_query(QUERY))
        leaf = plan
        while leaf.children:
            leaf = leaf.children[0]
        bound = leaf.est_rows * max(1, store.stats.max_depth)

        def check(op):
            assert 0.0 <= op.est_rows <= bound
            for child in op.children:
                check(child)

        check(plan)

    def test_unknown_operator_degrades_to_passthrough(self):
        store = make_store()
        scan = TermJoinScan(store, ["alpha"], method=None)

        class Weird(type(scan).__mro__[1]):  # Operator subclass
            name = "never-seen-before"

        op = Weird([scan])
        estimate_plan(op, store)
        assert op.est_rows == scan.est_rows

    def test_hand_built_plan_unannotated_explain_unchanged(self):
        store = make_store()
        from repro.access.termjoin import TermJoin
        from repro.query.functions import default_registry

        factory = default_registry().score_factory("ScoreFooExact")
        scan = TermJoinScan(store, ["alpha"],
                            TermJoin(store, factory(["alpha"], [])))
        execute(scan)
        text = explain(scan)
        assert "est_rows" not in text  # no annotation, no column
        st = plan_stats(scan)
        assert st["est_rows"] is None and st["q_error"] is None


class TestExplainRendering:
    def test_explain_shows_estimates_before_execution(self):
        store = make_store()
        plan = compile_query(store, parse_query(QUERY))
        text = explain(plan)
        assert "(est_rows=10)" in text  # the termjoin leaf: 6 + 4

    def test_analyze_shows_est_actual_and_qerror(self):
        store = make_store()
        plan = compile_query(store, parse_query(QUERY))
        execute(plan)
        text = explain(plan, analyze=True)
        assert "est_rows=" in text and "q_error=" in text
        assert "rows=" in text

    def test_plan_stats_carries_estimates(self):
        store = make_store()
        plan = compile_query(store, parse_query(QUERY))
        execute(plan)
        st = plan_stats(plan)
        assert st["est_rows"] is not None
        assert st["q_error"] == pytest.approx(
            qerror(st["est_rows"], st["rows"])
        )


class TestStatsCache:
    def test_stats_cached_per_generation(self):
        store = make_store()
        first = store.stats
        assert isinstance(first, StoreStatistics)
        assert store.stats is first  # same generation, same object

    def test_stats_rebuilt_after_document_change(self):
        store = make_store()
        first = store.stats
        store.load("c.xml", "<a><b>omega</b></a>")
        second = store.stats
        assert second is not first
        assert second.frequency("omega") == 1

    def test_rebuild_counter_metric(self):
        store = make_store()
        with obs.collecting() as col:
            store.stats
            store.stats  # cached: no second build
        reg = col.metrics.snapshot()
        assert reg["estimate.catalog_rebuilds"] == 1

    def test_level_histogram_populated(self):
        stats = make_store().stats
        assert stats.level_counts[0] == 2  # two roots
        assert sum(stats.level_counts.values()) == stats.n_elements
        assert stats.avg_depth > 0.0


class TestEstimateMetrics:
    def test_estimate_computed_per_compile(self):
        store = make_store()
        with obs.collecting() as col:
            compile_query(store, parse_query(QUERY))
            compile_query(store, parse_query(QUERY))
        snap = col.metrics.snapshot()
        assert snap["estimate.computed"] == 2

    def test_publish_qerrors_feeds_histogram(self):
        store = make_store()
        plan = compile_query(store, parse_query(QUERY))
        execute(plan)
        with obs.collecting() as col:
            out = publish_qerrors(plan)
        assert out and all(q >= 1.0 for q in out.values())
        snap = col.metrics.snapshot()
        assert snap["estimate.qerror"]["count"] == len(out)

    def test_guarded_run_publishes_qerrors(self):
        from repro.resilience import QueryGuard, run_query_guarded

        store = make_store()
        with obs.collecting() as col:
            run_query_guarded(store, QUERY,
                              QueryGuard(max_rows=100, degrade=True))
        snap = col.metrics.snapshot()
        assert snap["estimate.qerror"]["count"] > 0


def _v2_record(sha: str, ops):
    return {
        "v": 2, "ts": 0.0, "kind": "query", "query_sha256": sha,
        "outcome": "ok", "wall_ms": 1.0, "rows": 1, "truncated": False,
        "reason": "", "error_type": "", "cache": "", "plan_cache": "",
        "guard": {"active": False, "degraded": False, "trip": ""},
        "ops": ops, "slow": False,
    }


def _v1_record(sha: str):
    r = _v2_record(sha, [{"operator": "sort", "rows": 3,
                          "time_ms": 0.1}])
    r["v"] = 1
    return r


class TestFeedbackReport:
    def test_ranks_by_median_qerror(self):
        records = [
            _v2_record("aa", [
                {"operator": "sort", "rows": 10, "est_rows": 10.0,
                 "q_error": 1.0, "time_ms": 0.1},
                {"operator": "termjoin-scan(x)", "rows": 1,
                 "est_rows": 50.0, "q_error": 50.0, "time_ms": 0.2},
            ]),
            _v2_record("bb", [
                {"operator": "termjoin-scan(x)", "rows": 2,
                 "est_rows": 40.0, "q_error": 20.0, "time_ms": 0.2},
            ]),
        ]
        report = feedback_report(records)
        assert report.n_records == 2
        assert report.operators[0].key == "termjoin-scan(x)"
        assert report.operators[0].count == 2
        assert report.operators[0].median_qerror == pytest.approx(35.0)
        assert report.operators[0].max_qerror == 50.0
        assert report.operators[-1].key == "sort"
        # shapes keyed by query hash, ranked the same way
        assert report.shapes[0].key == "aa"

    def test_qerror_derived_when_absent(self):
        records = [_v2_record("aa", [
            {"operator": "sort", "rows": 5, "est_rows": 10.0,
             "time_ms": 0.1},  # no q_error field
        ])]
        report = feedback_report(records)
        assert report.operators[0].median_qerror == pytest.approx(2.0)

    def test_mixed_version_log(self):
        records = [
            _v1_record("aa"),  # pre-estimator: counted, not aggregated
            _v2_record("bb", [
                {"operator": "sort", "rows": 4, "est_rows": 8.0,
                 "q_error": 2.0, "time_ms": 0.1},
            ]),
            {"v": 99, "ops": []},  # future version: skipped
        ]
        report = feedback_report(records)
        assert report.n_records == 2  # v1 + v2 both read
        assert report.n_without_estimates == 1
        assert report.n_skipped == 1
        assert len(report.operators) == 1

    def test_min_count_filters_singletons(self):
        records = [
            _v2_record("aa", [
                {"operator": "sort", "rows": 4, "est_rows": 8.0,
                 "q_error": 2.0, "time_ms": 0.1},
            ]),
        ]
        report = feedback_report(records, min_count=2)
        assert report.operators == []

    def test_render_and_to_dict(self):
        records = [_v2_record("aa", [
            {"operator": "sort", "rows": 4, "est_rows": 8.0,
             "q_error": 2.0, "time_ms": 0.1},
        ])]
        report = feedback_report(records)
        text = report.render()
        assert "worst-misestimated operators" in text
        assert "sort" in text
        d = report.to_dict()
        assert d["operators"][0]["median_qerror"] == 2.0
        json.dumps(d)  # JSON-ready

    def test_empty_log_renders_hint(self):
        report = feedback_report([])
        assert "no per-operator estimates" in report.render()

    def test_end_to_end_from_audit_log(self):
        """A real guarded run writes a v2 log tix feedback can read."""
        from repro.obs import events
        from repro.resilience import QueryGuard, run_query_guarded

        store = make_store()
        buf = io.StringIO()
        with events.logging_queries(buf):
            run_query_guarded(store, QUERY,
                              QueryGuard(max_rows=100, degrade=True))
        records = list(events.iter_events(
            io.StringIO(buf.getvalue())
        ))
        report = feedback_report(records)
        assert report.n_records == 1
        assert report.n_without_estimates == 0
        assert report.operators and report.shapes
        assert all(o.median_qerror >= 1.0 for o in report.operators)
