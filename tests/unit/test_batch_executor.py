"""Unit tests for the concurrent batch executor: submission-order
determinism, per-query guard composition (deadline / row budget /
degrade-vs-strict), per-outcome error capture, obs metrics, and a
concurrency smoke test hammering ``execute_batch`` from 8 threads with
guards tripping mid-batch."""

import threading

import pytest

from repro import obs
from repro.perf import QueryCache, execute_batch
from repro.xmldb.store import XMLStore


def make_store(n_docs: int = 3) -> XMLStore:
    store = XMLStore()
    for d in range(n_docs):
        store.load(
            f"doc{d}.xml",
            f"<article><t>alpha beta doc{d}</t>"
            f"<sec>alpha gamma</sec><sec>beta alpha beta</sec></article>",
        )
    return store


def query_for(doc: int, first: str = "alpha", second: str = "beta") -> str:
    return (
        f'For $x in document("doc{doc}.xml")'
        "//article/descendant-or-self::* "
        f'Score $x using ScoreFooExact($x, {{"{first}"}}, {{"{second}"}}) '
        "Return $x Sortby(score)"
    )


class TestBatchBasics:
    def test_outcomes_in_submission_order(self):
        store = make_store()
        sources = [query_for(d) for d in (2, 0, 1, 2, 0)]
        result = execute_batch(store, sources, max_workers=4)
        assert result.n_queries == 5 and result.n_failed == 0
        for i, outcome in enumerate(result):
            assert outcome.index == i
            assert outcome.source == sources[i]
        # identical queries at different slots get identical answers
        assert ([t.score for t in result[0].results]
                == [t.score for t in result[3].results])
        assert ([t.score for t in result[1].results]
                == [t.score for t in result[4].results])

    def test_results_match_sequential_runs(self):
        from repro.query.evaluator import run_query

        store = make_store()
        sources = [query_for(d) for d in range(3)]
        batch = execute_batch(store, sources, max_workers=3)
        for src, outcome in zip(sources, batch):
            expected = run_query(store, src)
            assert [t.score for t in outcome.results] == \
                [t.score for t in expected]

    def test_empty_batch(self):
        result = execute_batch(make_store(), [])
        assert result.n_queries == 0
        assert list(result) == []

    def test_bad_query_fails_alone(self):
        store = make_store()
        sources = [query_for(0), "THIS IS NOT A QUERY", query_for(1)]
        result = execute_batch(store, sources, max_workers=3)
        assert result.n_failed == 1
        assert result[0].ok and result[2].ok
        bad = result[1]
        assert not bad.ok and bad.results == []
        assert bad.error_type == "QuerySyntaxError"

    def test_shared_cache_serves_duplicates(self):
        store = make_store()
        cache = QueryCache(store)
        sources = [query_for(0)] * 6
        result = execute_batch(store, sources, cache=cache, max_workers=4)
        assert result.n_failed == 0
        assert cache.results.hits + cache.results.misses == 6
        assert cache.results.misses >= 1
        first = [t.score for t in result[0].results]
        for outcome in result:
            assert [t.score for t in outcome.results] == first


class TestGuardComposition:
    def test_row_budget_degrades_to_partial(self):
        store = make_store()
        result = execute_batch(store, [query_for(0)], max_rows=1,
                               degrade=True)
        outcome = result[0]
        assert outcome.ok and outcome.truncated
        assert outcome.n_results == 1
        assert "row" in outcome.reason

    def test_row_budget_strict_is_a_captured_error(self):
        store = make_store()
        result = execute_batch(store, [query_for(0)], max_rows=1,
                               degrade=False)
        outcome = result[0]
        assert not outcome.ok and outcome.results == []
        assert outcome.error_type == "ResourceExhaustedError"

    def test_zero_deadline_trips_every_query(self):
        store = make_store()
        sources = [query_for(d % 3) for d in range(6)]
        result = execute_batch(store, sources, timeout_ms=0.0,
                               degrade=True, max_workers=3)
        assert result.n_failed == 0
        assert result.n_truncated == 6  # each guard tripped, none raised

    def test_guards_are_per_query_not_per_batch(self):
        # A generous per-query deadline must not accumulate across the
        # batch: every query gets its own fresh clock and finishes.
        store = make_store()
        sources = [query_for(d % 3) for d in range(8)]
        result = execute_batch(store, sources, timeout_ms=60_000,
                               max_workers=2)
        assert result.n_failed == 0 and result.n_truncated == 0

    def test_metrics_emitted_when_collecting(self):
        store = make_store()
        sources = [query_for(0), "NOT A QUERY", query_for(1)]
        with obs.collecting() as col:
            execute_batch(store, sources, max_rows=1, degrade=True)
        snap = col.metrics.snapshot()
        assert snap["batch.queries"] == 3
        assert snap["batch.errors"] == 1
        assert snap["batch.truncated"] == 2
        assert snap["batch.query_ms"]["count"] == 3


class TestConcurrencySmoke:
    def test_hammer_from_8_threads_with_guards_tripping(self):
        """8 caller threads fire batches at one shared store + cache at
        once; each batch mixes fine queries, a syntax error, and
        guard-tripping budgets.  Nothing may leak across outcomes:
        every slot must hold exactly its own query's answer."""
        store = make_store()
        cache = QueryCache(store)
        store.index  # pre-build once; workers then only read
        store.structure
        reference = {
            d: [t.score for t in cache.run_query(query_for(d))]
            for d in range(3)
        }
        errors = []
        barrier = threading.Barrier(8)

        def caller(k: int):
            try:
                barrier.wait(timeout=30)
                for round_no in range(3):
                    sources = [query_for(d) for d in range(3)]
                    sources.append("BROKEN QUERY %d" % k)
                    result = execute_batch(
                        store, sources, cache=cache, max_workers=4,
                        # odd callers trip the row budget mid-batch
                        max_rows=1 if k % 2 else None,
                        degrade=True,
                    )
                    for d in range(3):
                        outcome = result[d]
                        assert outcome.ok, outcome.error
                        scores = [t.score for t in outcome.results]
                        if k % 2:
                            assert outcome.truncated
                            assert scores == reference[d][:1]
                        else:
                            assert not outcome.truncated
                            assert scores == reference[d]
                    assert not result[3].ok
                    assert result[3].error_type == "QuerySyntaxError"
            except Exception as exc:  # pragma: no cover - failure path
                errors.append((k, repr(exc)))

        threads = [threading.Thread(target=caller, args=(k,))
                   for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not any(t.is_alive() for t in threads)
        assert errors == []

    def test_thread_local_guards_do_not_cross_talk(self):
        # Two batches with opposite budgets running concurrently must
        # not see each other's guards (GUARD is thread-local).
        store = make_store()
        store.index
        store.structure
        out = {}

        def strict():
            out["strict"] = execute_batch(
                store, [query_for(0)] * 4, max_rows=1, degrade=True,
                max_workers=2,
            )

        def unguarded():
            out["free"] = execute_batch(
                store, [query_for(0)] * 4, max_workers=2,
            )

        ts = [threading.Thread(target=strict),
              threading.Thread(target=unguarded)]
        for t in ts:
            t.start()
        for t in ts:
            t.join(timeout=60)
        assert out["strict"].n_truncated == 4
        assert out["free"].n_truncated == 0
        assert all(o.n_results == 1 for o in out["strict"])
        assert all(o.n_results > 1 for o in out["free"])


class TestWorkerDefaults:
    def test_worker_default_bounded_by_batch_size(self):
        # Just exercises the default-width path for tiny batches.
        store = make_store()
        result = execute_batch(store, [query_for(0)])
        assert result.n_queries == 1 and result[0].ok

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_explicit_widths_agree(self, workers):
        store = make_store()
        sources = [query_for(d % 3) for d in range(6)]
        result = execute_batch(store, sources, max_workers=workers)
        assert result.n_failed == 0
        base = execute_batch(store, sources, max_workers=1)
        for a, b in zip(result, base):
            assert ([t.score for t in a.results]
                    == [t.score for t in b.results])
