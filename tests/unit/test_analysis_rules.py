"""Per-rule good/bad fixtures for the engine invariant linter.

Each test builds a miniature source tree under ``tmp_path`` and runs
:func:`repro.analysis.lint` over it with one rule selected, asserting
the rule fires on the contract violation and stays silent on the
conforming twin.  The registries the cross-file rules consume (the
metric catalog, the fault-point table) are plain literals parsed from
the fixture tree itself, so fixtures carry their own copies.
"""

import textwrap

import pytest

from repro.analysis import lint
from repro.obs.catalog import docs_block


def run_lint(tmp_path, files, rules, docs=None):
    """Write ``files`` (relpath -> source) under a tmp root and lint."""
    root = tmp_path / "src"
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    docs_dir = None
    if docs is not None:
        docs_dir = tmp_path / "docs"
        docs_dir.mkdir(exist_ok=True)
        for name, text in docs.items():
            (docs_dir / name).write_text(text, encoding="utf-8")
    return lint(root=root, rules=rules, docs_dir=docs_dir)


def messages(result):
    return [f"{f.path}:{f.line} {f.message}" for f in result.findings]


# ----------------------------------------------------------------------
# operator-contract
# ----------------------------------------------------------------------

_OPERATOR_BASE = {
    "repro/engine/base.py": """
        class Operator:
            def __init__(self):
                self.children = []

            def open(self):
                self._open()

            def next(self):
                return self._next()

            def close(self):
                self._close()

            def _open(self):
                pass

            def _next(self):
                raise NotImplementedError

            def _close(self):
                pass
    """,
}


class TestOperatorContract:
    RULE = ["operator-contract"]

    def test_conforming_subclass_is_clean(self, tmp_path):
        files = dict(_OPERATOR_BASE)
        files["repro/engine/ops.py"] = """
            from repro.engine.base import Operator

            class Scan(Operator):
                def __init__(self, rows):
                    super().__init__()
                    self.rows = rows

                def _next(self):
                    return None
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []

    def test_inherited_next_counts(self, tmp_path):
        files = dict(_OPERATOR_BASE)
        files["repro/engine/ops.py"] = """
            from repro.engine.base import Operator

            class Scan(Operator):
                def _next(self):
                    return None

            class FilteredScan(Scan):
                pass
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []

    def test_overriding_protocol_method_flagged(self, tmp_path):
        files = dict(_OPERATOR_BASE)
        files["repro/engine/ops.py"] = """
            from repro.engine.base import Operator

            class Rogue(Operator):
                def _next(self):
                    return None

                def next(self):
                    return self._next()
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "overrides Operator.next()" in result.findings[0].message

    def test_init_without_super_flagged(self, tmp_path):
        files = dict(_OPERATOR_BASE)
        files["repro/engine/ops.py"] = """
            from repro.engine.base import Operator

            class Scan(Operator):
                def __init__(self, rows):
                    self.rows = rows

                def _next(self):
                    return None
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "super().__init__" in result.findings[0].message

    def test_missing_next_flagged(self, tmp_path):
        files = dict(_OPERATOR_BASE)
        files["repro/engine/ops.py"] = """
            from repro.engine.base import Operator

            class Hollow(Operator):
                pass
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "_next()" in result.findings[0].message

    def test_unrelated_class_sharing_a_subclass_name(self, tmp_path):
        # A class that merely shares its simple name with an Operator
        # subclass must not be dragged into the hierarchy.
        files = dict(_OPERATOR_BASE)
        files["repro/engine/ops.py"] = """
            from repro.engine.base import Operator

            class Scan(Operator):
                def _next(self):
                    return None
        """
        files["repro/other.py"] = """
            class Scan:
                def __init__(self):
                    self.rows = []
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []


# ----------------------------------------------------------------------
# guard-hook
# ----------------------------------------------------------------------

class TestGuardHook:
    RULE = ["guard-hook"]

    def test_loop_without_tick_flagged(self, tmp_path):
        files = {
            "repro/access/foo.py": """
                def scan_all(postings):
                    out = []
                    for p in postings:
                        out.append(p)
                    return out
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "guard" in result.findings[0].message

    def test_loop_with_tick_is_clean(self, tmp_path):
        files = {
            "repro/access/foo.py": """
                from repro.resilience import guard as _resguard

                def scan_all(postings):
                    guard = _resguard.GUARD
                    out = []
                    for p in postings:
                        guard.tick()
                        out.append(p)
                    return out
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []

    def test_delegation_to_ticking_helper_is_clean(self, tmp_path):
        files = {
            "repro/access/foo.py": """
                from repro.resilience import guard as _resguard

                def _merge(postings):
                    guard = _resguard.GUARD
                    for p in postings:
                        guard.tick()

                class Finder:
                    def run(self, postings):
                        for chunk in [postings]:
                            _merge(chunk)
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []

    def test_entry_method_with_silent_loop_flagged(self, tmp_path):
        files = {
            "repro/access/foo.py": """
                class Finder:
                    def run(self, postings):
                        total = 0
                        while postings:
                            total += postings.pop()
                        return total
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1

    def test_loopless_entry_point_is_clean(self, tmp_path):
        files = {
            "repro/access/foo.py": """
                def lookup(index, term):
                    return index.get(term)
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []

    def test_non_target_module_not_governed(self, tmp_path):
        files = {
            "repro/core/foo.py": """
                def scan_all(postings):
                    out = []
                    for p in postings:
                        out.append(p)
                    return out
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []


# ----------------------------------------------------------------------
# metric-drift
# ----------------------------------------------------------------------

_CATALOG_MODULE = {
    "repro/obs/catalog.py": """
        CATALOG = {
            "scan.rows": ("counter", "rows scanned"),
            "scan.time_ms": ("histogram", "scan latency"),
            "operator.*.rows": ("counter", "rows per operator"),
        }
    """,
}

_EMITTER_ALL = {
    "repro/engine/scan.py": """
        from repro import obs as _obs

        def scan(name, rows, ms):
            rec = _obs.RECORDER
            rec.count("scan.rows", rows)
            rec.observe("scan.time_ms", ms)
            rec.count(f"operator.{name}.rows", rows)
    """,
}


class TestMetricDrift:
    RULE = ["metric-drift"]

    def test_code_catalog_in_sync(self, tmp_path):
        files = {**_CATALOG_MODULE, **_EMITTER_ALL}
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []

    def test_uncataloged_emission_flagged(self, tmp_path):
        files = {**_CATALOG_MODULE, **_EMITTER_ALL}
        files["repro/engine/extra.py"] = """
            from repro import obs as _obs

            def oops():
                rec = _obs.RECORDER
                rec.count("scan.typo_rows")
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "scan.typo_rows" in result.findings[0].message
        assert "not in" in result.findings[0].message

    def test_wrong_kind_flagged(self, tmp_path):
        files = {**_CATALOG_MODULE, **_EMITTER_ALL}
        files["repro/engine/extra.py"] = """
            from repro import obs as _obs

            def oops(ms):
                rec = _obs.RECORDER
                rec.count("scan.time_ms")
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert ".count()" in result.findings[0].message

    def test_dead_catalog_entry_flagged(self, tmp_path):
        files = dict(_CATALOG_MODULE)
        files["repro/engine/scan.py"] = """
            from repro import obs as _obs

            def scan(rows):
                rec = _obs.RECORDER
                rec.count("scan.rows", rows)
        """
        result = run_lint(tmp_path, files, self.RULE)
        never = [f for f in result.findings if "never emitted" in f.message]
        assert {m.message.split("'")[1] for m in never} == {
            "operator.*.rows", "scan.time_ms",
        }

    def test_missing_catalog_module_flagged(self, tmp_path):
        result = run_lint(tmp_path, dict(_EMITTER_ALL), self.RULE)
        assert any(
            "catalog module not found" in f.message for f in result.findings
        )

    def test_stale_docs_table_flagged(self, tmp_path):
        files = {**_CATALOG_MODULE, **_EMITTER_ALL}
        result = run_lint(
            tmp_path, files, self.RULE,
            docs={"observability.md": "# Metrics\n\nno markers here\n"},
        )
        assert any("markers not found" in f.message for f in result.findings)

    def test_generated_docs_table_in_sync(self, tmp_path):
        catalog = {
            "scan.rows": ("counter", "rows scanned"),
            "scan.time_ms": ("histogram", "scan latency"),
            "operator.*.rows": ("counter", "rows per operator"),
        }
        files = {**_CATALOG_MODULE, **_EMITTER_ALL}
        result = run_lint(
            tmp_path, files, self.RULE,
            docs={"observability.md": f"# Metrics\n\n{docs_block(catalog)}\n"},
        )
        assert result.findings == []


# ----------------------------------------------------------------------
# fault-point-drift
# ----------------------------------------------------------------------

_FAULT_REGISTRY = {
    "repro/resilience/faultinject.py": """
        FAULT_POINTS = {
            "persist.read": "reading a file",
            "persist.write": "writing a file",
        }

        class NullInjector:
            def fire(self, point, **ctx):
                pass

        INJECTOR = NullInjector()
    """,
}


class TestFaultPointDrift:
    RULE = ["fault-point-drift"]

    def test_registry_and_sites_in_sync(self, tmp_path):
        files = dict(_FAULT_REGISTRY)
        files["repro/xmldb/persist.py"] = """
            from repro.resilience.faultinject import INJECTOR

            def read(path):
                INJECTOR.fire("persist.read", path=path)

            def write(path):
                INJECTOR.fire("persist.write", path=path)
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []

    def test_undeclared_point_flagged(self, tmp_path):
        files = dict(_FAULT_REGISTRY)
        files["repro/xmldb/persist.py"] = """
            from repro.resilience.faultinject import INJECTOR

            def read(path):
                INJECTOR.fire("persist.read", path=path)

            def write(path):
                INJECTOR.fire("persist.write", path=path)

            def rename(path):
                INJECTOR.fire("persist.rename", path=path)
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "persist.rename" in result.findings[0].message

    def test_stale_registry_entry_flagged(self, tmp_path):
        files = dict(_FAULT_REGISTRY)
        files["repro/xmldb/persist.py"] = """
            from repro.resilience.faultinject import INJECTOR

            def read(path):
                INJECTOR.fire("persist.read", path=path)
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "persist.write" in result.findings[0].message
        assert "never fired" in result.findings[0].message

    def test_wrapper_call_site_counts(self, tmp_path):
        files = dict(_FAULT_REGISTRY)
        files["repro/xmldb/persist.py"] = """
            from repro.resilience.faultinject import INJECTOR

            def _io(path, point):
                INJECTOR.fire(point, path=path)
                return path

            def read(path):
                return _io(path, "persist.read")

            def write(path):
                return _io(path, point="persist.write")
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []

    def test_missing_registry_module_flagged(self, tmp_path):
        files = {
            "repro/xmldb/persist.py": """
                def read(path):
                    return path
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert any(
            "registry module not found" in f.message
            for f in result.findings
        )


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------

class TestLockDiscipline:
    RULE = ["lock-discipline"]

    def test_mutation_under_lock_is_clean(self, tmp_path):
        files = {
            "repro/perf/cache.py": """
                import threading

                class Cache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._data = {}
                        self.hits = 0

                    def put(self, key, value):
                        with self._lock:
                            self._data[key] = value

                    def get(self, key):
                        with self._lock:
                            self.hits += 1
                            return self._data.get(key)
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []

    def test_assignment_outside_lock_flagged(self, tmp_path):
        files = {
            "repro/perf/cache.py": """
                import threading

                class Cache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.hits = 0

                    def get(self, key):
                        self.hits += 1
                        return None
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "self.hits" in result.findings[0].message

    def test_mutator_call_outside_lock_flagged(self, tmp_path):
        files = {
            "repro/perf/cache.py": """
                import threading

                class Cache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._data = {}

                    def evict(self, key):
                        self._data.pop(key, None)
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "self._data" in result.findings[0].message

    def test_lockless_class_not_governed(self, tmp_path):
        files = {
            "repro/perf/stats.py": """
                class Tally:
                    def __init__(self):
                        self.n = 0

                    def bump(self):
                        self.n += 1
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []

    def test_outside_perf_not_governed(self, tmp_path):
        files = {
            "repro/core/cache.py": """
                import threading

                class Cache:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self.hits = 0

                    def get(self):
                        self.hits += 1
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []


# ----------------------------------------------------------------------
# resource-safety
# ----------------------------------------------------------------------

class TestResourceSafety:
    RULE = ["resource-safety"]

    def test_open_in_with_is_clean(self, tmp_path):
        files = {
            "repro/xmldb/io.py": """
                def read(path):
                    with open(path, "r", encoding="utf-8") as f:
                        return f.read()
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []

    def test_wrapped_open_in_with_is_clean(self, tmp_path):
        files = {
            "repro/xmldb/io.py": """
                import contextlib

                def read(path):
                    with contextlib.closing(open(path)) as f:
                        return f.read()
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []

    def test_bare_open_flagged(self, tmp_path):
        files = {
            "repro/xmldb/io.py": """
                def read(path):
                    f = open(path)
                    data = f.read()
                    f.close()
                    return data
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "open(" in result.findings[0].message

    def test_open_in_nested_function_not_credited(self, tmp_path):
        # The `with` is in the outer scope; the open() leaks from the
        # closure — crossing a function boundary must not count.
        files = {
            "repro/xmldb/io.py": """
                def read(path):
                    with open(path) as f:
                        def reopen():
                            return open(path)
                        return f.read(), reopen
            """,
        }
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------

class TestSuppressions:
    def test_trailing_comment_suppresses_own_line(self, tmp_path):
        files = {
            "repro/xmldb/io.py": """
                def read(path):
                    f = open(path)  # tix-lint: disable=resource-safety
                    return f
            """,
        }
        result = run_lint(tmp_path, files, ["resource-safety"])
        assert result.findings == []
        assert len(result.suppressed) == 1
        assert result.suppressed[0].rule == "resource-safety"

    def test_standalone_comment_suppresses_next_line(self, tmp_path):
        files = {
            "repro/xmldb/io.py": """
                def read(path):
                    # tix-lint: disable=resource-safety
                    f = open(path)
                    return f
            """,
        }
        result = run_lint(tmp_path, files, ["resource-safety"])
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_disable_all(self, tmp_path):
        files = {
            "repro/xmldb/io.py": """
                def read(path):
                    f = open(path)  # tix-lint: disable=all
                    return f
            """,
        }
        result = run_lint(tmp_path, files, ["resource-safety"])
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_other_rule_not_suppressed(self, tmp_path):
        files = {
            "repro/xmldb/io.py": """
                def read(path):
                    f = open(path)  # tix-lint: disable=guard-hook
                    return f
            """,
        }
        result = run_lint(tmp_path, files, ["resource-safety"])
        assert len(result.findings) == 1
        assert result.suppressed == []

    def test_directive_inside_string_ignored(self, tmp_path):
        files = {
            "repro/xmldb/io.py": """
                DOC = "# tix-lint: disable=resource-safety"

                def read(path):
                    f = open(path)
                    return f
            """,
        }
        result = run_lint(tmp_path, files, ["resource-safety"])
        assert len(result.findings) == 1


# ----------------------------------------------------------------------
# rule selection
# ----------------------------------------------------------------------

def test_unknown_rule_name_raises(tmp_path):
    (tmp_path / "src" / "repro").mkdir(parents=True)
    (tmp_path / "src" / "repro" / "x.py").write_text("A = 1\n")
    with pytest.raises(ValueError, match="unknown rule"):
        lint(root=tmp_path / "src", rules=["no-such-rule"])


# ----------------------------------------------------------------------
# planner-registry-drift
# ----------------------------------------------------------------------

_ACCESS_REGISTRY = {
    "repro/access/registry.py": """
        ACCESS_METHODS = {
            "TermJoin": {
                "module": "repro.access.termjoin",
                "work": "score",
            },
            "EnhancedTermJoin": {
                "module": "repro.access.termjoin",
                "work": "score",
            },
        }
    """,
    "repro/access/termjoin.py": """
        class TermJoin:
            name = "TermJoin"

            def run(self, terms):
                return []


        class EnhancedTermJoin(TermJoin):
            name = "EnhancedTermJoin"
    """,
}


class TestPlannerRegistryDrift:
    RULE = ["planner-registry-drift"]

    def test_registry_and_classes_in_sync(self, tmp_path):
        # EnhancedTermJoin qualifies via the *inherited* run method.
        result = run_lint(tmp_path, _ACCESS_REGISTRY, self.RULE)
        assert result.findings == []

    def test_undeclared_class_flagged(self, tmp_path):
        files = dict(_ACCESS_REGISTRY)
        files["repro/access/newjoin.py"] = """
            class FancyJoin:
                name = "FancyJoin"

                def run(self, terms):
                    return []
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "FancyJoin" in result.findings[0].message
        assert result.findings[0].path == "repro/access/newjoin.py"

    def test_stale_entry_flagged(self, tmp_path):
        files = dict(_ACCESS_REGISTRY)
        files["repro/access/termjoin.py"] = """
            class TermJoin:
                name = "TermJoin"

                def run(self, terms):
                    return []
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "EnhancedTermJoin" in result.findings[0].message
        assert result.findings[0].path == "repro/access/registry.py"

    def test_wrong_module_flagged(self, tmp_path):
        files = dict(_ACCESS_REGISTRY)
        files["repro/access/registry.py"] = """
            ACCESS_METHODS = {
                "TermJoin": {
                    "module": "repro.access.other",
                    "work": "score",
                },
                "EnhancedTermJoin": {
                    "module": "repro.access.termjoin",
                    "work": "score",
                },
            }
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "repro.access.other" in result.findings[0].message

    def test_helper_classes_do_not_qualify(self, tmp_path):
        # No `name` literal, private name, or no run(): all skipped.
        files = dict(_ACCESS_REGISTRY)
        files["repro/access/results.py"] = """
            class ScoredElement:
                def run(self):
                    return []


            class _Internal:
                name = "Internal"

                def run(self):
                    return []


            class Protocolish:
                name = "Protocolish"
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert result.findings == []

    def test_missing_registry_module_flagged(self, tmp_path):
        files = {"repro/access/termjoin.py":
                 _ACCESS_REGISTRY["repro/access/termjoin.py"]}
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "registry module not found" in result.findings[0].message

    def test_non_literal_registry_flagged(self, tmp_path):
        files = dict(_ACCESS_REGISTRY)
        files["repro/access/registry.py"] = """
            ACCESS_METHODS = dict(TermJoin={})
        """
        result = run_lint(tmp_path, files, self.RULE)
        assert len(result.findings) == 1
        assert "not a literal dict" in result.findings[0].message
