"""Unit tests for PhraseJoin (stacked ancestor scoring over phrase
occurrences) and PhraseFinder.occurrences."""

import pytest

from repro.access.phrasefinder import PhraseFinder
from repro.access.phrasejoin import PhraseJoin
from repro.core.scoring import WeightedCountScorer, count_phrase
from repro.xmldb.store import XMLStore


@pytest.fixture()
def store():
    return XMLStore.from_sources({
        "a.xml": (
            "<a>"
            "<s><p>search engine basics</p>"
            "<p>another search engine here</p></s>"
            "<s><p>information retrieval</p></s>"
            "<s><p>nothing relevant</p></s>"
            "</a>"
        ),
        "b.xml": "<x><p>search engine</p><p>information retrieval</p></x>",
    })


def subtree_phrase_oracle(store, phrases, weights):
    """Score = Σ w_i × (phrase_i occurrences in each node's direct text,
    summed over the subtree)."""
    out = {}
    for doc in store.documents():
        per_node = []
        for nid in range(len(doc)):
            words = doc.direct_words(nid)
            per_node.append([
                count_phrase(words, p.split()) for p in phrases
            ])
        for nid in range(len(doc)):
            totals = [0] * len(phrases)
            for member in doc.subtree(nid):
                for i in range(len(phrases)):
                    totals[i] += per_node[member][i]
            if any(totals):
                out[(doc.doc_id, nid)] = sum(
                    w * c for w, c in zip(weights, totals)
                )
    return out


class TestPhraseOccurrences:
    def test_positions_sorted_and_in_region(self, store):
        occs = PhraseFinder(store).occurrences(["search", "engine"])
        keys = [(o.doc_id, o.pos) for o in occs]
        assert keys == sorted(keys)
        for o in occs:
            doc = store.document(o.doc_id)
            node = doc.node(o.node_id)
            assert node.start < o.pos <= node.end

    def test_start_offset_is_first_term(self, store):
        occs = PhraseFinder(store).occurrences(["search", "engine"])
        for o in occs:
            doc = store.document(o.doc_id)
            words = doc.direct_words(o.node_id)
            assert words[o.offset] == "search"
            assert words[o.offset + 1] == "engine"

    def test_count_matches_run(self, store):
        pf = PhraseFinder(store)
        occs = pf.occurrences(["search", "engine"])
        total = sum(m.count for m in pf.run(["search", "engine"]))
        assert len(occs) == total


class TestPhraseJoin:
    def test_matches_subtree_oracle(self, store):
        phrases = ["search engine", "information retrieval"]
        weights = [0.8, 0.6]
        pj = PhraseJoin(store, phrases, weights)
        got = {(r.doc_id, r.node_id): r.score for r in pj.run()}
        expected = subtree_phrase_oracle(store, phrases, weights)
        assert got.keys() == expected.keys()
        for k in got:
            assert got[k] == pytest.approx(expected[k])

    def test_single_term_equals_termjoin(self, store):
        from repro.access.termjoin import TermJoin

        scorer = WeightedCountScorer(["search"], ["retrieval"])
        tj = {(r.doc_id, r.node_id): r.score
              for r in TermJoin(store, scorer).run(["search", "retrieval"])}
        pj = PhraseJoin(store, ["search", "retrieval"], [0.8, 0.6])
        got = {(r.doc_id, r.node_id): r.score for r in pj.run()}
        assert got == tj

    def test_from_scorer(self, store):
        scorer = WeightedCountScorer(
            ["search engine"], ["information retrieval"]
        )
        pj = PhraseJoin.from_scorer(store, scorer)
        got = {(r.doc_id, r.node_id): r.score for r in pj.run()}
        expected = subtree_phrase_oracle(
            store, ["search engine", "information retrieval"], [0.8, 0.6]
        )
        assert got.keys() == expected.keys()
        for k in got:
            assert got[k] == pytest.approx(expected[k])

    def test_run_with_override_phrases(self, store):
        pj = PhraseJoin(store, ["search engine"], [1.0])
        got = pj.run(["information retrieval"])
        # override with mismatched count falls back to weight 1.0
        doc = store.document("a.xml")
        scores = {r.node_id: r.score for r in got if r.doc_id == 0}
        p_ir = doc.find_by_tag("p")[2]
        assert scores[p_ir] == pytest.approx(1.0)

    def test_weights_validation(self, store):
        with pytest.raises(ValueError):
            PhraseJoin(store, ["a b"], [0.8, 0.6])

    def test_no_occurrences(self, store):
        pj = PhraseJoin(store, ["missing phrase"], [1.0])
        assert pj.run() == []

    def test_multi_document(self, store):
        pj = PhraseJoin(store, ["search engine"], [0.8])
        docs = {r.doc_id for r in pj.run()}
        assert docs == {0, 1}
