"""Unit tests for the error hierarchy."""

import pytest

from repro.errors import (
    DocumentNotFoundError,
    PatternError,
    PlanError,
    QueryCompileError,
    QuerySyntaxError,
    TIXError,
    UnknownTermError,
    XMLParseError,
)


class TestHierarchy:
    @pytest.mark.parametrize("exc_type", [
        XMLParseError, DocumentNotFoundError, UnknownTermError,
        PatternError, QuerySyntaxError, QueryCompileError, PlanError,
    ])
    def test_all_derive_from_tix_error(self, exc_type):
        assert issubclass(exc_type, TIXError)

    def test_catch_all_at_api_boundary(self):
        # the single-except pattern the hierarchy exists for
        try:
            raise QuerySyntaxError("bad")
        except TIXError:
            caught = True
        assert caught


class TestPositions:
    def test_xml_parse_error_formats_position(self):
        err = XMLParseError("boom", line=3, column=7)
        assert "line 3" in str(err)
        assert "column 7" in str(err)
        assert err.line == 3 and err.column == 7

    def test_xml_parse_error_without_position(self):
        err = XMLParseError("boom")
        assert str(err) == "boom"

    def test_query_syntax_error_position(self):
        err = QuerySyntaxError("nope", line=2, column=5)
        assert "line 2" in str(err)
