"""Trace-context propagation across the wire, mixed-version protocol
compatibility, the ``traces`` wire op, and the audit-log v3 round trip
(mixed v1/v2/v3 files stay readable and ``trace_id`` joins a record to
its retained trace)."""

import json
import socket
import threading

import pytest

from repro import cli, obs
from repro.errors import DocumentNotFoundError
from repro.exampledata import example_store
from repro.obs import events
from repro.obs.tracestore import RetentionPolicy, TraceStore
from repro.server import PooledClient, QueryServer
from repro.server.protocol import (
    TRACE_FIELD,
    parse_trace_context,
    read_frame,
    request,
    trace_fields,
    write_frame,
)

QUERY = (
    'For $x in document("articles.xml")//section '
    'Score $x using ScoreFoo($x, {"search engine"}, {"internet"}) '
    'Return $x Sortby(score)'
)

#: A query the compiler accepts, so execution takes the pipelined
#: ``execute.guarded`` path with per-operator spans.
COMPILABLE_QUERY = (
    'For $x in document("articles.xml")/article/descendant-or-self::* '
    'Score $x using ScoreFooExact($x, {"search"}, {"engine"}) '
    'Return $x Sortby(score)'
)


@pytest.fixture()
def server():
    # slow_ms=0 retains every completed trace, so assertions do not
    # depend on scheduler timing.
    srv = QueryServer(
        example_store(), port=0,
        trace_store=TraceStore(policy=RetentionPolicy(slow_ms=0.0)),
    )
    srv.start()
    yield srv
    srv.close(drain_s=2.0)


@pytest.fixture()
def client(server):
    with PooledClient(server.host, server.port,
                      call_timeout_s=10.0) as cl:
        yield cl


def _raw(server, frame):
    with socket.create_connection(
            (server.host, server.port), timeout=5.0) as sock:
        write_frame(sock, frame)
        return read_frame(sock)


class TestMixedVersionProtocol:
    """Satellite (b): old client ↔ new server and new client ↔ old
    server both keep working — no protocol version bump."""

    def test_old_client_frame_without_trace_gets_local_root(self, server):
        resp = _raw(server, request("query", 1, q=QUERY))
        assert resp["ok"] is True
        tid = resp["trace_id"]
        assert len(tid) == 16  # server-minted root
        trace = server.trace_store.get(tid)
        assert trace is not None
        assert trace.parent_span_id == ""  # no propagated parent
        assert trace.attempt == 0

    @pytest.mark.parametrize("bad", [
        "garbage", 17, ["x"], {}, {"span": "p"}, {"id": ""},
        {"id": 42}, {"id": None, "attempt": 1},
    ])
    def test_malformed_trace_field_is_ignored_not_fatal(self, server, bad):
        resp = _raw(server, request("query", 1, q=QUERY,
                                    **{TRACE_FIELD: bad}))
        assert resp["ok"] is True
        # The server minted its own root rather than failing.
        assert len(resp["trace_id"]) == 16

    def test_propagated_context_continues_the_client_trace(self, server):
        frame = request("query", 7, q=QUERY)
        frame[TRACE_FIELD] = {"id": "feedfacecafe0001",
                              "span": "beefbeefbeef0001", "attempt": 2}
        resp = _raw(server, frame)
        assert resp["ok"] is True
        assert resp["trace_id"] == "feedfacecafe0001"
        trace = server.trace_store.get("feedfacecafe0001")
        assert trace.parent_span_id == "beefbeefbeef0001"
        assert trace.attempt == 2

    def test_negative_attempt_clamped_to_zero(self, server):
        frame = request("query", 8, q=QUERY)
        frame[TRACE_FIELD] = {"id": "a" * 16, "attempt": -4}
        resp = _raw(server, frame)
        assert resp["ok"] is True
        assert server.trace_store.get("a" * 16).attempt == 0

    def test_new_client_against_old_server_sees_empty_trace_id(self):
        """An old server answers without ``trace_id``; the client
        surfaces "" instead of failing (and sends the trace field the
        old server simply ignores)."""
        seen = {}
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def old_server():
            conn, _ = listener.accept()
            with conn:
                frame = read_frame(conn)
                seen["frame"] = frame
                # v1 response shape from before tracing existed.
                write_frame(conn, {
                    "v": 1, "id": frame["id"], "ok": True,
                    "results": [], "n_results": 0, "truncated": False,
                    "reason": "", "degraded": False, "generation": 0,
                })

        th = threading.Thread(target=old_server, daemon=True)
        th.start()
        try:
            with PooledClient("127.0.0.1", port, retries=1,
                              call_timeout_s=5.0) as cl:
                res = cl.query(QUERY)
            assert res.trace_id == ""
            sent = seen["frame"][TRACE_FIELD]
            assert set(sent) == {"id", "span", "attempt"}
            assert sent["attempt"] == 0
        finally:
            th.join(timeout=5.0)
            listener.close()

    def test_client_can_disable_tracing(self, server):
        with PooledClient(server.host, server.port, trace=False,
                          call_timeout_s=10.0) as cl:
            res = cl.query(QUERY)
        # The server still mints a local root and echoes it.
        assert len(res.trace_id) == 16
        assert server.trace_store.get(res.trace_id).parent_span_id == ""

    def test_trace_fields_helpers_round_trip(self):
        assert trace_fields(None) == {}
        frame = request("query", 1, q="x")
        assert parse_trace_context(frame) is None
        from repro.obs.tracestore import TraceContext

        ctx = TraceContext.mint()
        frame.update(trace_fields(ctx))
        back = parse_trace_context(frame)
        assert back.trace_id == ctx.trace_id
        assert back.parent_span_id == ctx.parent_span_id


class TestTracesWireOp:
    def test_snapshot_lists_the_request_trace(self, server, client):
        res = client.query(QUERY)
        assert len(res.trace_id) == 16
        snap = client.traces()
        assert snap["stats"]["completed"] >= 1
        retained = {t["trace_id"]: t for t in snap["retained"]}
        row = retained[res.trace_id]
        assert row["outcome"] == "ok"
        assert row["retained_for"] == "slow"  # slow_ms=0 policy
        assert row["op"] == "query"

    def test_fetch_one_trace_with_span_tree(self, server, client):
        col = obs.Collector()
        obs.install(col)
        try:
            res = client.query(COMPILABLE_QUERY)
        finally:
            obs.uninstall()
        trace = client.traces(res.trace_id)
        assert trace["trace_id"] == res.trace_id
        root = trace["spans"]
        assert root["name"] == "server.request"
        assert root["attrs"]["trace_id"] == res.trace_id
        names = [c["name"] for c in root["children"]]
        assert names[0] == "queue.wait"
        assert "gate.pin" in names
        assert "execute.guarded" in names
        guarded = next(c for c in root["children"]
                       if c["name"] == "execute.guarded")
        assert any(c["name"].startswith("open:")
                   for c in guarded.get("children", []))

    def test_chrome_format_over_the_wire(self, server, client):
        col = obs.Collector()
        obs.install(col)
        try:
            res = client.query(QUERY)
        finally:
            obs.uninstall()
        chrome = client.traces(res.trace_id, fmt="chrome")
        events_ = chrome["traceEvents"]
        assert events_ and events_[0]["name"] == "server.request"
        assert all(e["ph"] == "X" for e in events_)

    def test_unknown_trace_id_raises_typed(self, server, client):
        with pytest.raises(DocumentNotFoundError):
            client.traces("0000000000000000")

    def test_error_requests_always_retained(self, server, client):
        # Tail retention must hold even when "slow" can't trigger.
        server.trace_store.policy.slow_ms = 60_000.0
        from repro.errors import QuerySyntaxError

        with pytest.raises(QuerySyntaxError):
            client.query("definitely not a query")
        errs = [t for t in client.traces()["retained"]
                if t["retained_for"] == "error"]
        assert errs and errs[0]["outcome"] == "error"
        assert errs[0]["error_code"] != ""


def _v1_record(trace_join=""):
    return {
        "v": 1, "ts": 1_700_000_000.0, "kind": "query",
        "query_sha256": "aa" * 8, "outcome": "ok", "wall_ms": 1.5,
        "rows": 3, "truncated": False, "reason": "", "error_type": "",
        "cache": "", "guard": {"active": False, "degraded": False,
                               "trip": ""},
        "ops": [{"operator": "Scan", "rows": 3, "time_ms": 0.2}],
    }


def _v2_record():
    r = _v1_record()
    r["v"] = 2
    r["plan_cache"] = "hit"
    r["ops"] = [{"operator": "Scan", "rows": 3, "est_rows": 4.0,
                 "q_error": 1.33, "time_ms": 0.2}]
    return r


class TestAuditV3RoundTrip:
    """Satellite (f): mixed v1/v2/v3 audit files read without loss and
    the v3 ``trace_id`` joins records to retained traces."""

    def _mixed_file(self, tmp_path, v3_extra=None):
        ev = events.QueryEvent("query text")
        ev.note_result(2)
        v3 = ev.to_record()
        if v3_extra:
            v3.update(v3_extra)
        path = tmp_path / "audit.jsonl"
        with open(path, "w", encoding="utf-8") as f:
            for rec in (_v1_record(), _v2_record(), v3):
                f.write(json.dumps(rec) + "\n")
        return path, v3

    def test_iter_and_filter_read_all_versions(self, tmp_path):
        path, v3 = self._mixed_file(tmp_path)
        with open(path, encoding="utf-8") as f:
            records = list(events.iter_events(f))
        assert [r["v"] for r in records] == [1, 2, 3]
        assert "trace_id" not in records[0]
        assert records[2]["trace_id"] == v3["trace_id"]
        kept = list(events.filter_events(records, outcome="ok"))
        assert len(kept) == 3  # no version is silently dropped

    def test_tix_events_renders_mixed_file(self, tmp_path, capsys):
        path, _ = self._mixed_file(tmp_path)
        assert cli.main(["events", str(path)]) == 0
        out = capsys.readouterr().out
        assert "(3 of 3 events)" in out

    def test_tix_feedback_aggregates_mixed_file(self, tmp_path, capsys):
        path, _ = self._mixed_file(tmp_path)
        assert cli.main(["feedback", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["n_records"] == 3

    def test_served_query_trace_id_joins_audit_to_trace(
            self, server, client, tmp_path):
        path = tmp_path / "served.jsonl"
        sink = events.JsonlSink(str(path))
        events.install_sink(sink)
        try:
            res = client.query(QUERY)
        finally:
            events.uninstall_sink()
            sink.close()
        with open(path, encoding="utf-8") as f:
            (record,) = list(events.iter_events(f))
        assert record["v"] == 3
        assert record["trace_id"] == res.trace_id
        trace = server.trace_store.get(record["trace_id"])
        assert trace is not None
        assert trace.query_sha256 == record["query_sha256"]

    def test_local_untraced_execution_logs_empty_trace_id(self):
        ev = events.QueryEvent("q")
        ev.note_result(0)
        assert ev.to_record()["trace_id"] == ""
