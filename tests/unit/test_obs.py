"""Unit tests for the observability layer: metrics primitives, the
tracer, and the recorder install/uninstall machinery."""

import json

import pytest

from repro import obs
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Tracer


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.snapshot() == 0
        c.inc()
        c.inc(41)
        assert c.snapshot() == 42

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("x")
        g.set(5)
        g.set(3)
        assert g.snapshot() == 3


class TestHistogram:
    def test_empty(self):
        h = Histogram("t")
        assert h.count == 0
        assert h.quantile(0.5) == 0.0
        assert h.snapshot()["count"] == 0

    def test_exact_stats(self):
        h = Histogram("t")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        s = h.snapshot()
        assert s["count"] == 4
        assert s["sum"] == 10.0
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["mean"] == 2.5

    def test_quantiles_within_bucket_error(self):
        # Uniform 1..1000: bucket width is 2**(1/4), so any quantile
        # estimate must land within ~9% of the exact value.
        h = Histogram("t")
        for v in range(1, 1001):
            h.observe(v)
        for q, exact in [(0.50, 500), (0.95, 950), (0.99, 990)]:
            est = h.quantile(q)
            assert abs(est - exact) / exact < 0.10, (q, est)

    def test_quantiles_clamped_to_min_max(self):
        h = Histogram("t")
        h.observe(7.0)
        assert h.p50 == 7.0
        assert h.p99 == 7.0

    def test_zero_bucket(self):
        h = Histogram("t")
        h.observe(0.0)
        h.observe(0.0)
        h.observe(10.0)
        assert h.count == 3
        assert h.quantile(0.5) == 0.0       # majority is zero
        assert h.quantile(1.0) == 10.0

    def test_bad_quantile(self):
        with pytest.raises(ValueError):
            Histogram("t").quantile(1.5)


class TestMetricsRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert len(r) == 1

    def test_kind_clash_raises(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(TypeError):
            r.histogram("a")
        with pytest.raises(TypeError):
            r.gauge("a")

    def test_conveniences_and_snapshot(self):
        r = MetricsRegistry()
        r.count("termjoin.postings_scanned", 12)
        r.set_gauge("index.n_terms", 7)
        r.observe("operator.sort.time_ms", 1.5)
        snap = r.snapshot()
        assert snap["termjoin.postings_scanned"] == 12
        assert snap["index.n_terms"] == 7
        assert snap["operator.sort.time_ms"]["count"] == 1
        assert "index.n_terms" in r
        assert r.get("missing") is None

    def test_render_sorted_with_prefix(self):
        r = MetricsRegistry()
        r.count("b.two", 2)
        r.count("a.one", 1)
        r.observe("a.hist", 3.0)
        text = r.render()
        assert text.index("a.hist") < text.index("a.one") < text.index("b.two")
        assert "p95=" in text
        assert "b.two" not in r.render(prefix="a.")


class TestTracer:
    def test_nesting(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        assert len(t.roots) == 1
        root = t.roots[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]
        assert root.duration_ns >= root.children[0].duration_ns

    def test_out_of_order_end_closes_intervening(self):
        t = Tracer()
        outer = t.begin("outer")
        inner = t.begin("inner")
        t.end(outer)                      # closes inner too
        assert inner.end_ns is not None
        assert not t._local.stack

    def test_end_unknown_span_raises(self):
        t = Tracer()
        s = t.begin("a")
        t.end(s)
        with pytest.raises(ValueError):
            t.end(s)

    def test_span_budget_drops(self):
        t = Tracer(max_spans=2)
        with t.span("a"):
            with t.span("b"):
                with t.span("c"):
                    pass
        assert t.n_spans == 2
        assert t.dropped == 1
        assert t.to_dict()["dropped"] == 1

    def test_chrome_trace_export(self):
        t = Tracer()
        with t.span("outer", op="x"):
            with t.span("inner"):
                pass
        doc = t.to_chrome_trace()
        events = doc["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]
        for e in events:
            assert e["ph"] == "X"
            assert e["ts"] >= 0 and e["dur"] >= 0
        assert events[0]["args"] == {"op": "x"}
        json.dumps(doc)                   # must be JSON-serializable

    def test_chrome_trace_empty(self):
        assert Tracer().to_chrome_trace() == {"traceEvents": []}


class TestRecorderInstall:
    def test_default_is_null_and_disabled(self):
        assert isinstance(obs.RECORDER, obs.NullRecorder)
        assert not obs.RECORDER.enabled

    def test_null_recorder_is_noop(self):
        rec = obs.NullRecorder()
        rec.count("x", 3)
        rec.observe("x", 1.0)
        rec.set_gauge("x", 2)
        rec.end_span(rec.begin_span("x"))
        with rec.span("x", attr=1) as s:
            assert s is None

    def test_collecting_installs_and_restores(self):
        before = obs.RECORDER
        with obs.collecting() as col:
            assert obs.RECORDER is col
            assert col.enabled
            obs.RECORDER.count("hits", 2)
        assert obs.RECORDER is before
        assert col.metrics.snapshot()["hits"] == 2

    def test_installs_nest(self):
        with obs.collecting() as outer:
            with obs.collecting() as inner:
                assert obs.RECORDER is inner
                obs.RECORDER.count("x")
            assert obs.RECORDER is outer
        assert "x" in inner.metrics
        assert "x" not in outer.metrics

    def test_unbalanced_uninstall_raises(self):
        with pytest.raises(RuntimeError):
            obs.uninstall()

    def test_collector_spans_feed_tracer(self):
        with obs.collecting() as col:
            with obs.RECORDER.span("phase"):
                obs.RECORDER.count("n")
        assert [s.name for s in col.tracer.roots] == ["phase"]
