"""Unit tests for structural joins and Generalized Meet."""

import pytest

from repro.core.scoring import ProximityScorer, WeightedCountScorer
from repro.joins.meet import generalized_meet
from repro.joins.structural import naive_structural_join, stack_tree_join
from repro.xmldb.store import XMLStore


@pytest.fixture()
def join_store():
    return XMLStore.from_sources({
        "a.xml": "<a><b>x</b><c><d>x y</d></c>y</a>",
        "b.xml": "<a><b><c>x</c></b></a>",
    })


def refs_and_postings(store, term):
    ancestors = store.structure.all_elements()
    postings = store.index.postings(term).postings
    return ancestors, postings


class TestStackTreeJoin:
    def test_matches_naive_on_postings(self, join_store):
        for term in ("x", "y"):
            anc, post = refs_and_postings(join_store, term)
            fast = stack_tree_join(anc, post)
            slow = naive_structural_join(anc, post)
            assert fast == slow

    def test_element_vs_element(self, join_store):
        si = join_store.structure
        anc = si.elements_with_tag("a")
        desc = si.elements_with_tag("c")
        out = stack_tree_join(anc, desc)
        assert len(out) == 2
        for a, d in out:
            assert a[0] == d[0]
            assert a[1] < d[1] and d[2] <= a[2]

    def test_empty_inputs(self, join_store):
        anc = join_store.structure.all_elements()
        assert stack_tree_join(anc, []) == []
        assert stack_tree_join([], anc) == []

    def test_cross_document_isolation(self, join_store):
        anc, post = refs_and_postings(join_store, "x")
        pairs = stack_tree_join(anc, post)
        assert all(a[0] == p[0] for a, p in pairs)

    def test_output_ancestors_outermost_first(self, join_store):
        anc, post = refs_and_postings(join_store, "x")
        pairs = stack_tree_join(anc, post)
        by_desc = {}
        for a, d in pairs:
            by_desc.setdefault(d, []).append(a)
        for ancs in by_desc.values():
            levels = [a[3] for a in ancs]
            assert levels == sorted(levels)


class TestGeneralizedMeet:
    def test_equals_oracle_simple(self, join_store):
        scorer = WeightedCountScorer(["x"], ["y"])
        got = {
            (r.doc_id, r.node_id): r.score
            for r in generalized_meet(join_store, ["x", "y"], scorer)
        }
        expected = {}
        for doc in join_store.documents():
            for nid in range(len(doc)):
                words = doc.subtree_words(nid)
                counts = {
                    "x": words.count("x"), "y": words.count("y"),
                }
                if counts["x"] or counts["y"]:
                    expected[(doc.doc_id, nid)] = scorer.score_from_counts(
                        counts
                    )
        assert got == expected

    def test_every_node_emitted_once(self, join_store):
        scorer = WeightedCountScorer(["x"])
        results = generalized_meet(join_store, ["x"], scorer)
        keys = [(r.doc_id, r.node_id) for r in results]
        assert len(keys) == len(set(keys))

    def test_partial_matches_included(self, join_store):
        # <b>x</b> contains only 'x', still scored (lower).
        scorer = WeightedCountScorer(["x"], ["y"])
        got = {
            (r.doc_id, r.node_id): r.score
            for r in generalized_meet(join_store, ["x", "y"], scorer)
        }
        doc = join_store.document("a.xml")
        b = doc.find_by_tag("b")[0]
        assert got[(0, b)] == pytest.approx(0.8)

    def test_empty_terms(self, join_store):
        scorer = WeightedCountScorer(["zz"])
        assert generalized_meet(join_store, ["zz"], scorer) == []

    def test_complex_mode_matches_termjoin(self, join_store):
        from repro.access.termjoin import TermJoin

        scorer = ProximityScorer(["x", "y"])
        meet = {
            (r.doc_id, r.node_id): r.score
            for r in generalized_meet(
                join_store, ["x", "y"], scorer, complex_scoring=True
            )
        }
        tj = {
            (r.doc_id, r.node_id): r.score
            for r in TermJoin(join_store, scorer, complex_scoring=True)
            .run(["x", "y"])
        }
        assert meet.keys() == tj.keys()
        for k in meet:
            assert meet[k] == pytest.approx(tj[k])
