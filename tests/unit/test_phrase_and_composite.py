"""Unit tests for PhraseFinder and the composite baselines."""

import pytest

from repro.access.composite import Comp1, Comp2, Comp3
from repro.access.phrasefinder import PhraseFinder
from repro.core.scoring import ProximityScorer, WeightedCountScorer
from repro.xmldb.store import XMLStore


@pytest.fixture()
def ph_store():
    return XMLStore.from_sources({
        "a.xml": (
            "<a>"
            "<p>search engine basics</p>"
            "<p>engine search reversed</p>"
            "<p>a search engine and another search engine</p>"
            "<p>search</p><p>engine</p>"
            "</a>"
        ),
        "b.xml": "<x><p>search engine</p></x>",
    })


class TestPhraseFinder:
    def test_counts(self, ph_store):
        pf = PhraseFinder(ph_store)
        got = {(m.doc_id, m.node_id): m.count
               for m in pf.run(["search", "engine"])}
        doc = ph_store.document("a.xml")
        p1, p2, p3, p4, p5 = doc.find_by_tag("p")
        assert got == {(0, p1): 1, (0, p3): 2, (1, 1): 1}

    def test_order_matters(self, ph_store):
        pf = PhraseFinder(ph_store)
        rev = {(m.doc_id, m.node_id): m.count
               for m in pf.run(["engine", "search"])}
        doc = ph_store.document("a.xml")
        p2 = doc.find_by_tag("p")[1]
        assert rev == {(0, p2): 1}

    def test_terms_in_different_nodes_dont_match(self, ph_store):
        # p4 has 'search', p5 has 'engine' — no phrase across nodes.
        pf = PhraseFinder(ph_store)
        doc = ph_store.document("a.xml")
        p4, p5 = doc.find_by_tag("p")[3:5]
        keys = {(m.doc_id, m.node_id) for m in pf.run(["search", "engine"])}
        assert (0, p4) not in keys and (0, p5) not in keys

    def test_single_term_phrase(self, ph_store):
        pf = PhraseFinder(ph_store)
        got = sum(m.count for m in pf.run(["search"]))
        assert got == ph_store.index.frequency("search")

    def test_three_term_phrase(self, ph_store):
        pf = PhraseFinder(ph_store)
        got = [(m.doc_id, m.node_id, m.count)
               for m in pf.run(["search", "engine", "basics"])]
        doc = ph_store.document("a.xml")
        p1 = doc.find_by_tag("p")[0]
        assert got == [(0, p1, 1)]

    def test_missing_term_empty(self, ph_store):
        assert PhraseFinder(ph_store).run(["search", "zz"]) == []

    def test_empty_phrase(self, ph_store):
        assert PhraseFinder(ph_store).run([]) == []

    def test_score_weight(self, ph_store):
        pf = PhraseFinder(ph_store, phrase_weight=0.5)
        for m in pf.run(["search", "engine"]):
            assert m.score == pytest.approx(0.5 * m.count)

    def test_results_in_document_order(self, ph_store):
        ms = PhraseFinder(ph_store).run(["search", "engine"])
        keys = [(m.doc_id, m.node_id) for m in ms]
        assert keys == sorted(keys)


class TestComp3:
    def test_equals_phrasefinder(self, ph_store):
        for phrase in (["search", "engine"], ["engine", "search"],
                       ["search", "engine", "basics"], ["search", "zz"]):
            a = [(m.doc_id, m.node_id, m.count)
                 for m in PhraseFinder(ph_store).run(phrase)]
            b = [(m.doc_id, m.node_id, m.count)
                 for m in Comp3(ph_store).run(phrase)]
            assert a == b

    def test_comp3_fetches_nodes(self, ph_store):
        ph_store.counters.reset()
        Comp3(ph_store).run(["search", "engine"])
        fetched = ph_store.counters.nodes_fetched
        ph_store.counters.reset()
        PhraseFinder(ph_store).run(["search", "engine"])
        assert fetched > 0
        assert ph_store.counters.nodes_fetched == 0


class TestComposites:
    def test_comp1_equals_termjoin_simple(self, ph_store):
        from repro.access.termjoin import TermJoin

        scorer = WeightedCountScorer(["search"], ["engine"])
        terms = ["search", "engine"]
        tj = {(r.doc_id, r.node_id): r.score
              for r in TermJoin(ph_store, scorer).run(terms)}
        c1 = {(r.doc_id, r.node_id): r.score
              for r in Comp1(ph_store, scorer).run(terms)}
        assert tj == c1

    def test_comp2_equals_termjoin_simple(self, ph_store):
        from repro.access.termjoin import TermJoin

        scorer = WeightedCountScorer(["search"], ["engine"])
        terms = ["search", "engine"]
        tj = {(r.doc_id, r.node_id): r.score
              for r in TermJoin(ph_store, scorer).run(terms)}
        c2 = {(r.doc_id, r.node_id): r.score
              for r in Comp2(ph_store, scorer).run(terms)}
        assert tj == c2

    def test_composites_complex_mode(self, ph_store):
        from repro.access.termjoin import TermJoin

        scorer = ProximityScorer(["search", "engine"])
        terms = ["search", "engine"]
        tj = {(r.doc_id, r.node_id): r.score
              for r in TermJoin(ph_store, scorer, True).run(terms)}
        for cls in (Comp1, Comp2):
            got = {(r.doc_id, r.node_id): r.score
                   for r in cls(ph_store, scorer, True).run(terms)}
            assert got.keys() == tj.keys()
            for k in got:
                assert got[k] == pytest.approx(tj[k]), cls.__name__

    def test_comp2_scans_all_elements(self, ph_store):
        scorer = WeightedCountScorer(["search"])
        ph_store.counters.reset()
        Comp2(ph_store, scorer).run(["search"])
        assert ph_store.counters.nodes_fetched >= ph_store.n_elements

    def test_comp1_walks_ancestors(self, ph_store):
        scorer = WeightedCountScorer(["search"])
        ph_store.counters.reset()
        Comp1(ph_store, scorer).run(["search"])
        assert ph_store.counters.navigations > 0
