"""Unit tests for TermJoin and Enhanced TermJoin."""

import pytest

from repro.access.termjoin import EnhancedTermJoin, TermJoin
from repro.core.scoring import ProximityScorer, WeightedCountScorer
from repro.xmldb.store import XMLStore


@pytest.fixture()
def tj_store():
    return XMLStore.from_sources({
        "a.xml": (
            "<a><t>alpha</t>"
            "<s><p>alpha beta</p><p>beta</p><p>none here</p></s>"
            "<s><p>gamma</p></s></a>"
        ),
        "b.xml": "<a><p>beta alpha</p></a>",
    })


def simple_oracle(store, terms, scorer):
    out = {}
    for doc in store.documents():
        for nid in range(len(doc)):
            words = doc.subtree_words(nid)
            counts = {t: words.count(t) for t in terms}
            if any(counts.values()):
                out[(doc.doc_id, nid)] = scorer.score_from_counts(counts)
    return out


class TestSimpleMode:
    def test_equals_oracle(self, tj_store):
        scorer = WeightedCountScorer(["alpha"], ["beta"])
        tj = TermJoin(tj_store, scorer)
        got = {(r.doc_id, r.node_id): r.score
               for r in tj.run(["alpha", "beta"])}
        assert got == simple_oracle(tj_store, ["alpha", "beta"], scorer)

    def test_only_containing_elements_emitted(self, tj_store):
        scorer = WeightedCountScorer(["gamma"])
        tj = TermJoin(tj_store, scorer)
        results = tj.run(["gamma"])
        doc = tj_store.document("a.xml")
        tags = sorted(doc.tags[r.node_id] for r in results)
        assert tags == ["a", "p", "s"]

    def test_output_in_end_key_order(self, tj_store):
        scorer = WeightedCountScorer(["alpha"], ["beta"])
        results = TermJoin(tj_store, scorer).run(["alpha", "beta"])
        per_doc_ends = {}
        for r in results:
            doc = tj_store.document(r.doc_id)
            per_doc_ends.setdefault(r.doc_id, []).append(
                doc.ends[r.node_id]
            )
        for ends in per_doc_ends.values():
            assert ends == sorted(ends)

    def test_unknown_term(self, tj_store):
        scorer = WeightedCountScorer(["zz"])
        assert TermJoin(tj_store, scorer).run(["zz"]) == []

    def test_single_term_single_posting(self, tj_store):
        scorer = WeightedCountScorer(["gamma"])
        results = TermJoin(tj_store, scorer).run(["gamma"])
        assert all(r.score == pytest.approx(0.8) for r in results)

    def test_counters_updated(self, tj_store):
        tj_store.counters.reset()
        scorer = WeightedCountScorer(["alpha"])
        TermJoin(tj_store, scorer).run(["alpha"])
        assert tj_store.counters.postings_read == 3
        assert tj_store.counters.index_lookups == 1


class TestComplexMode:
    def test_matches_tree_oracle(self, tj_store):
        from repro.core.trees import tree_from_document

        scorer = ProximityScorer(["alpha", "beta"])
        tj = TermJoin(tj_store, scorer, complex_scoring=True)
        got = {(r.doc_id, r.node_id): r.score
               for r in tj.run(["alpha", "beta"])}
        expected = {}
        for doc in tj_store.documents():
            tree = tree_from_document(doc)
            for nid, node in enumerate(tree.nodes()):
                if scorer.collect_occurrences(node):
                    expected[(doc.doc_id, nid)] = scorer.score_node(node)
        assert got.keys() == expected.keys()
        for k in got:
            assert got[k] == pytest.approx(expected[k])

    def test_enhanced_equals_base(self, tj_store):
        scorer = ProximityScorer(["alpha", "beta"])
        base = TermJoin(tj_store, scorer, complex_scoring=True)
        enh = EnhancedTermJoin(tj_store, scorer, complex_scoring=True)
        r1 = {(r.doc_id, r.node_id): r.score
              for r in base.run(["alpha", "beta"])}
        r2 = {(r.doc_id, r.node_id): r.score
              for r in enh.run(["alpha", "beta"])}
        assert r1.keys() == r2.keys()
        for k in r1:
            assert r1[k] == pytest.approx(r2[k])

    def test_base_navigates_enhanced_uses_index(self, tj_store):
        scorer = ProximityScorer(["alpha"])
        tj_store.counters.reset()
        TermJoin(tj_store, scorer, complex_scoring=True).run(["alpha"])
        nav_base = tj_store.counters.navigations
        tj_store.counters.reset()
        EnhancedTermJoin(tj_store, scorer, complex_scoring=True) \
            .run(["alpha"])
        nav_enh = tj_store.counters.navigations
        assert nav_base > 0
        assert nav_enh == 0

    def test_relevant_children_counted(self, tj_store):
        # <s> has 3 children, 2 containing query terms.
        captured = {}

        class Spy:
            def score_from_occurrences(self, occs, n_children, n_rel):
                captured[len(captured)] = (len(occs), n_children, n_rel)
                return float(len(occs))

        tj = TermJoin(tj_store, Spy(), complex_scoring=True)
        results = tj.run(["alpha", "beta"])
        doc = tj_store.document("a.xml")
        s_node = doc.find_by_tag("s")[0]
        for r in results:
            if r.doc_id == 0 and r.node_id == s_node:
                assert r.score == 3.0  # three occurrences under s
        stats = list(captured.values())
        assert (3, 3, 2) in stats  # s: 3 occs, 3 children, 2 relevant


class TestMultiDocument:
    def test_stack_resets_between_documents(self, tj_store):
        scorer = WeightedCountScorer(["alpha"], ["beta"])
        results = TermJoin(tj_store, scorer).run(["alpha", "beta"])
        docs = {r.doc_id for r in results}
        assert docs == {0, 1}
        b_doc = tj_store.document("b.xml")
        b_scores = {
            b_doc.tags[r.node_id]: r.score
            for r in results if r.doc_id == 1
        }
        assert b_scores == {"a": pytest.approx(1.4),
                            "p": pytest.approx(1.4)}
