"""Unit tests for the query evaluator (semantics of each clause and
expression form)."""

import pytest

from repro.errors import QueryCompileError
from repro.query import run_query
from repro.query.evaluator import (
    QueryEvaluator,
    as_sequence,
    is_truthy,
    to_number,
    to_text,
)
from repro.query.functions import default_registry
from repro.query.parser import parse_query
from repro.xmldb.store import XMLStore


@pytest.fixture()
def store():
    return XMLStore.from_sources({
        "lib.xml": (
            '<library>'
            '<book year="2001"><t>Database Systems</t>'
            '<au>Codd</au><pages>500</pages></book>'
            '<book year="1999"><t>Information Retrieval</t>'
            '<au>Salton</au><pages>300</pages></book>'
            '<book year="2003"><t>XML Databases</t>'
            '<au>Codd</au><pages>250</pages></book>'
            '</library>'
        ),
    })


class TestCoercions:
    def test_as_sequence(self):
        assert as_sequence([1, 2]) == [1, 2]
        assert as_sequence("x") == ["x"]
        assert as_sequence(None) == []

    def test_to_number(self):
        assert to_number(2.0) == 2.0
        assert to_number("3.5") == 3.5
        assert to_number("abc") is None
        assert to_number([]) is None
        assert to_number(["4"]) == 4.0

    def test_to_text(self):
        assert to_text(2.5) == "2.5"
        assert to_text(["a", "b"]) == "a b"

    def test_is_truthy(self):
        assert is_truthy([1]) and not is_truthy([])
        assert is_truthy(1.0) and not is_truthy(0.0)
        assert is_truthy("x") and not is_truthy("")


class TestForLetWhere:
    def test_for_iterates(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book Return $b
        ''')
        assert len(out) == 3

    def test_nested_for_product(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book
            For $c in document("lib.xml")//book
            Return <pair>{ $b/t }{ $c/t }</pair>
        ''')
        assert len(out) == 9

    def test_let_binds_sequence(self, store):
        out = run_query(store, '''
            Let $all := document("lib.xml")//book
            Return <n>count($all)</n>
        ''')
        assert len(out) == 1
        assert out[0].root.words == ["3"]

    def test_where_filters(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book
            Where $b/pages > 280
            Return $b
        ''')
        assert len(out) == 2

    def test_where_string_comparison_case_insensitive(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book
            Where $b/au/text() = "codd"
            Return $b
        ''')
        assert len(out) == 2

    def test_attribute_comparison(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book
            Where $b/@year >= 2001
            Return $b
        ''')
        assert len(out) == 2

    def test_predicate_in_path(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book[/au/text()="Codd"]
            Return $b
        ''')
        assert len(out) == 2

    def test_and_or_not(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book
            Where $b/@year > 2000 and not($b/au/text() = "Salton")
            Return $b
        ''')
        assert len(out) == 2
        out = run_query(store, '''
            For $b in document("lib.xml")//book
            Where $b/@year = 1999 or $b/@year = 2003
            Return $b
        ''')
        assert len(out) == 2

    def test_unbound_variable_raises(self, store):
        with pytest.raises(QueryCompileError, match="unbound"):
            run_query(store, 'For $a in $nope/x Return $a')


class TestScoreClause:
    def test_scores_assigned_and_readable(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book
            Score $b using ScoreFooExact($b, {"databases"}, {"xml"})
            Return <r><score>{ $b/@score }</score></r>
            Sortby(score)
        ''')
        scores = [t.score for t in out]
        assert scores == sorted(scores, reverse=True)
        assert scores[0] == pytest.approx(1.4)  # "xml databases" book

    def test_score_non_node_target_raises(self, store):
        with pytest.raises(QueryCompileError):
            run_query(store, '''
                For $b in document("lib.xml")//book
                Let $n := $b/@year
                Score $n using ScoreFooExact($n, {"x"})
                Return $b
            ''')

    def test_unknown_score_function(self, store):
        with pytest.raises(QueryCompileError, match="unknown scoring"):
            run_query(store, '''
                For $b in document("lib.xml")//book
                Score $b using NoSuchFn($b)
                Return $b
            ''')


class TestReturnConstruction:
    def test_element_copy_detached(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book Return <wrap>{ $b/t }</wrap>
        ''')
        assert out[0].root.children[0].tag == "t"

    def test_score_child_mirrored_to_node_score(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book
            Return <r><score>2.5</score></r>
        ''')
        assert out[0].score == 2.5

    def test_numeric_text_preserved(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book
            Score $b using ScoreFooExact($b, {"database"})
            Return <r><score>{ $b/@score }</score></r>
        ''')
        # first book ("Database Systems") scores 0.8; the decimal must
        # survive text construction verbatim
        assert "0.8" in " ".join(out[0].root.children[0].words)

    def test_plain_value_result_wrapped(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book[/au/text()="Salton"]
            Return $b/pages/text()
        ''')
        assert out[0].root.words == ["300"]


class TestThresholdAndSort:
    def test_threshold_tuple_condition(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book
            Score $b using ScoreFooExact($b, {"database"}, {"databases"})
            Return <r><score>{ $b/@score }</score>{ $b }</r>
            Threshold $b/@score > 0.5
        ''')
        # "Database Systems" scores 0.8, "XML Databases" scores 0.6
        assert len(out) == 2

    def test_stop_after(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book
            Return $b
            Threshold $b/@year > 0 stop after 2
        ''')
        assert len(out) == 2

    def test_result_context_condition(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book
            Return <r><pages>{ $b/pages/text() }</pages></r>
            Threshold pages > 280
        ''')
        assert len(out) == 2

    def test_sortby_descending(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book
            Return <r><pages>{ $b/pages/text() }</pages></r>
            Sortby(pages)
        ''')
        pages = [float(t.root.children[0].words[0]) for t in out]
        assert pages == [500.0, 300.0, 250.0]


class TestBuiltins:
    def test_decimal(self, store):
        ev = QueryEvaluator(store)
        out = ev.evaluate(parse_query('''
            For $b in document("lib.xml")//book[/au/text()="Salton"]
            Return <n>decimal($b/pages)</n>
        '''))
        assert out[0].root.words == ["300"]

    def test_count(self, store):
        out = run_query(store, '''
            Let $bs := document("lib.xml")//book
            Return <n>count($bs)</n>
        ''')
        assert out[0].root.words == ["3"]

    def test_string(self, store):
        out = run_query(store, '''
            For $b in document("lib.xml")//book[/@year = 1999]
            Return <n>string($b/au)</n>
        ''')
        assert out[0].root.words == ["salton"]
