"""Golden-snapshot machinery.

``golden`` is a fixture returning a checker: ``golden(name, data)``
compares ``data`` (any JSON-serializable structure) against
``tests/golden/<name>.json`` and fails with a diff-friendly message on
mismatch.  Running pytest with ``--update-golden`` rewrites the
snapshots instead — review the resulting git diff before committing;
a score that "just shifted" is exactly the regression this suite
exists to catch.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent


@pytest.fixture()
def golden(request):
    update = request.config.getoption("--update-golden")

    def check(name: str, data) -> None:
        path = GOLDEN_DIR / f"{name}.json"
        # Round-trip through JSON so tuples/lists etc. compare equal.
        payload = json.loads(json.dumps(data))
        if update:
            path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            return
        if not path.exists():
            pytest.fail(
                f"golden snapshot {path.name} is missing — generate it "
                "with: pytest tests/golden --update-golden"
            )
        expected = json.loads(path.read_text(encoding="utf-8"))
        assert payload == expected, (
            f"output diverged from golden snapshot {path.name}; if the "
            "change is intended, refresh with --update-golden and review "
            "the diff"
        )

    return check
