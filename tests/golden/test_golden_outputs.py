"""Golden regression suite: ranking outputs pinned to JSON snapshots.

Timings vary run to run; *rankings* must not.  These tests pin the
actual outputs — (doc, node, score) lists — of the paper-query examples
and of small-scale versions of the Table 1–5 workloads, so any change
to scoring, merging, or ranking fails loudly with a diff instead of
silently shifting scores.  Refresh intentionally with::

    PYTHONPATH=src pytest tests/golden --update-golden
"""

import pytest

from repro.access.composite import Comp3
from repro.access.phrasefinder import PhraseFinder
from repro.access.termjoin import TermJoin
from repro.core.scoring import ProximityScorer, WeightedCountScorer
from repro.exampledata import example_store
from repro.query.evaluator import run_query
from repro.workload import (
    generate_corpus,
    table123_spec,
    table4_spec,
    table5_spec,
)

from tests.integration.test_paper_queries import QUERY1, QUERY2, QUERY3

pytestmark = pytest.mark.golden

#: Small-scale workload parameters: big enough that every technique has
#: real work, small enough that the whole suite stays in seconds.
SCALE = 0.02
N_ARTICLES = 60


def tree_fingerprint(results):
    """Order-preserving identity of a result list of scored trees."""
    return [
        {
            "score": None if t.score is None else round(t.score, 6),
            "xml": t.to_xml(with_scores=True),
        }
        for t in results
    ]


def ranking(matches, top: int = 25):
    """(doc, node, score) triples, ranked score-desc with a stable
    tiebreak, truncated — the shape Tables 1–4 rank by."""
    rows = sorted(
        ((m.doc_id, m.node_id, round(m.score, 6)) for m in matches),
        key=lambda r: (-r[2], r[0], r[1]),
    )
    return [list(r) for r in rows[:top]]


class TestPaperQueries:
    """The §2/§5 example queries over the Figure-1 database."""

    @pytest.mark.parametrize("name,source", [
        ("query1", QUERY1), ("query2", QUERY2), ("query3", QUERY3),
    ])
    def test_paper_query_output(self, golden, name, source):
        results = run_query(example_store(), source)
        golden(f"paper_{name}", tree_fingerprint(results))


@pytest.fixture(scope="module")
def corpus123():
    spec, rows = table123_spec(scale=SCALE, n_articles=N_ARTICLES)
    return generate_corpus(spec), rows


class TestTableWorkloads:
    def test_table1_rankings(self, golden, corpus123):
        store, rows = corpus123
        out = {}
        for row in rows["table1"]:
            scorer = WeightedCountScorer([row.terms[0]], row.terms[1:])
            out[str(row.label)] = ranking(
                TermJoin(store, scorer).run(list(row.terms))
            )
        golden("table1_rankings", out)

    def test_table2_rankings(self, golden, corpus123):
        store, rows = corpus123
        out = {}
        for row in rows["table1"]:  # Table 2 reuses Table 1's sweep
            scorer = ProximityScorer(row.terms)
            out[str(row.label)] = ranking(
                TermJoin(store, scorer, True).run(list(row.terms))
            )
        golden("table2_rankings", out)

    def test_table3_rankings(self, golden, corpus123):
        store, rows = corpus123
        out = {}
        for row in rows["table3"]:
            scorer = ProximityScorer(row.terms)
            out[str(row.label)] = ranking(
                TermJoin(store, scorer, True).run(list(row.terms))
            )
        golden("table3_rankings", out)

    def test_table4_rankings(self, golden):
        spec, rows = table4_spec(scale=SCALE, n_articles=N_ARTICLES)
        store = generate_corpus(spec)
        out = {}
        for row in rows:
            scorer = ProximityScorer(row.terms)
            out[str(row.label)] = ranking(
                TermJoin(store, scorer, True).run(list(row.terms))
            )
        golden("table4_rankings", out)

    def test_table5_phrase_matches(self, golden):
        spec, rows = table5_spec(scale=SCALE, n_articles=N_ARTICLES)
        store = generate_corpus(spec)
        out = {}
        for row in rows:
            matches = [
                [m.doc_id, m.node_id, m.count]
                for m in PhraseFinder(store).run(list(row.terms))
            ]
            comp3 = [
                [m.doc_id, m.node_id, m.count]
                for m in Comp3(store).run(list(row.terms))
            ]
            assert matches == comp3  # differential, while we're here
            out[str(row.query)] = matches[:25]
        golden("table5_phrases", out)
