"""Golden planner decisions: the cost-based planner's choice at every
decision point, pinned per query for the Table 1–5 workloads plus the
many-region ``tix bench planner`` store.

Costs move whenever the statistics catalog or a cost constant is tuned
— that is expected and not pinned here.  What must *not* drift silently
is the decision itself: which physical operator the planner picks and
which alternatives it weighed.  A tuning change that flips a choice
fails this suite with a reviewable diff; refresh intentionally with::

    PYTHONPATH=src pytest tests/golden --update-golden
"""

import pytest

from repro.bench.plannerbench import build_planner_store
from repro.query import parse_query
from repro.query.compiler import compile_query
from repro.workload import (
    generate_corpus,
    table123_spec,
    table4_spec,
    table5_spec,
)

pytestmark = pytest.mark.golden

#: Same small-scale parameters as test_golden_outputs.py.
SCALE = 0.02
N_ARTICLES = 60


def score_query(doc: str, terms, stop_after=None) -> str:
    items = ", ".join('{"%s"}' % t for t in terms)
    tail = ""
    if stop_after is not None:
        tail = f"\nThreshold $a/@score > 0 stop after {stop_after}"
    return (
        f'For $a in document("{doc}")//article/descendant-or-self::*\n'
        f"Score $a using ScoreFooExact($a, {items})\n"
        f"Return $a\nSortby(score)" + tail
    )


def decision_record(store, source: str):
    plan = compile_query(store, parse_query(source), planner="cost")
    choices = plan.planner_choices
    return {
        "planner": choices.planner,
        "choices": {
            point: {
                "chosen": c.chosen,
                "source": c.source,
                "default": c.default,
                "flipped": c.flipped,
                "rejected": [a.op for a in c.alternatives
                             if a.op != c.chosen],
            }
            for point, c in sorted(choices.choices.items())
        },
    }


def test_table123_planner_choices(golden):
    spec, rows = table123_spec(scale=SCALE, n_articles=N_ARTICLES)
    store = generate_corpus(spec)
    out = {}
    for key in ("table1", "table3"):
        for row in rows[key]:
            label = f"{key}/freq{row.label}"
            out[label] = decision_record(
                store, score_query("article00000.xml", row.terms))
    golden("planner_choices_table123", out)


def test_table4_planner_choices(golden):
    spec, rows4 = table4_spec(scale=SCALE, n_articles=N_ARTICLES)
    store = generate_corpus(spec)
    out = {}
    for row in rows4:
        out[f"table4/size{row.label}"] = decision_record(
            store, score_query("article00000.xml", row.terms))
    golden("planner_choices_table4", out)


def test_table5_planner_choices(golden):
    spec, rows5 = table5_spec(scale=SCALE, n_articles=N_ARTICLES)
    store = generate_corpus(spec)
    out = {}
    for row in rows5:
        phrase = " ".join(row.terms)
        out[f"table5/query{row.query}"] = decision_record(
            store, score_query("article00000.xml", [phrase]))
    golden("planner_choices_table5", out)


def test_many_region_planner_choices(golden):
    store = build_planner_store(n_articles=60)
    out = {
        "sort": decision_record(
            store, score_query("lib.xml", ["planted", "paper"])),
        "top10": decision_record(
            store, score_query("lib.xml", ["planted", "paper"],
                               stop_after=10)),
    }
    # The headline flip this PR exists for: many sibling regions make
    # the bisect structural filter the cheaper choice.
    assert out["sort"]["choices"]["filter"]["chosen"] == "bisect"
    assert out["sort"]["choices"]["filter"]["flipped"]
    golden("planner_choices_many_region", out)
