"""Chaos tests for persistence: seeded probabilistic faults on every I/O
point, asserting the save/load paths either succeed (transient faults
absorbed by retries) or fail with a clean ``PersistError`` — never a raw
``OSError`` and never a half-written store."""

import os

import pytest

from repro import obs
from repro.errors import PersistError
from repro.exampledata import example_store
from repro.resilience import FaultInjector, FaultSpec, injecting
from repro.xmldb.persist import load_store, load_store_report, save_store

pytestmark = pytest.mark.chaos


class TestTransientFaults:
    def test_save_survives_transient_write_faults(self, tmp_path,
                                                  chaos_seed):
        """Each write point fails at most once; the retry policy (3
        attempts) must absorb every fault and produce a loadable store."""
        store = example_store()
        directory = str(tmp_path / "db")
        specs = [
            FaultSpec("persist.write_doc", probability=0.5, times=1),
            FaultSpec("persist.write_manifest", probability=0.5, times=1),
            FaultSpec("persist.replace", probability=0.5, times=1),
        ]
        with obs.collecting() as col:
            with injecting(specs, seed=chaos_seed) as injector:
                save_store(store, directory)
            n_fired = sum(injector.fired.values())
        loaded = load_store(directory)
        assert loaded.n_documents == store.n_documents
        snap = col.metrics.snapshot()
        assert snap.get("resilience.retries", 0) == n_fired

    def test_load_survives_transient_read_faults(self, tmp_path,
                                                 chaos_seed):
        store = example_store()
        directory = str(tmp_path / "db")
        save_store(store, directory)
        specs = [
            FaultSpec("persist.read_manifest", probability=0.5, times=1),
            FaultSpec("persist.read_doc", probability=0.5, times=1),
        ]
        with injecting(specs, seed=chaos_seed):
            loaded = load_store(directory)
        assert loaded.n_documents == store.n_documents


class TestPersistentFaults:
    def test_persistent_write_fault_is_clean_persist_error(
        self, tmp_path, chaos_seed
    ):
        """A fault that outlives every retry must surface as PersistError
        (not OSError) and must not leave tmp litter behind."""
        store = example_store()
        directory = str(tmp_path / "db")
        spec = FaultSpec("persist.write_doc", probability=1.0)
        with injecting([spec], seed=chaos_seed):
            with pytest.raises(PersistError, match="cannot write"):
                save_store(store, directory)
        assert not [f for f in os.listdir(directory)
                    if f.endswith(".tmp")]
        # no manifest was ever written → loading reports that, cleanly
        with pytest.raises(PersistError, match="no store manifest"):
            load_store(directory)

    def test_persistent_read_fault_partial_load_skips(self, tmp_path,
                                                      chaos_seed):
        store = example_store()
        directory = str(tmp_path / "db")
        save_store(store, directory)
        spec = FaultSpec("persist.read_doc", probability=1.0)
        with injecting([spec], seed=chaos_seed):
            report = load_store_report(directory, partial=True)
        assert report.store.n_documents == 0
        assert len(report.skipped) == store.n_documents
        assert all(isinstance(e, PersistError) for e in report.skipped)

    def test_parse_fault_names_the_file(self, tmp_path, chaos_seed):
        store = example_store()
        directory = str(tmp_path / "db")
        save_store(store, directory)

        def bad_parse(**ctx):
            return ValueError(f"injected parse failure in {ctx['path']}")

        spec = FaultSpec("store.parse_doc", at_calls=(1,),
                         make_error=bad_parse)
        with injecting([spec], seed=chaos_seed):
            with pytest.raises(PersistError, match="cannot parse") as ei:
                load_store(directory)
        assert ei.value.path.endswith("doc00000.xml")


class TestDeterminism:
    def test_same_seed_same_fault_schedule(self, tmp_path, chaos_seed):
        """Two runs with the same seed fire the same faults at the same
        call ordinals — the replay guarantee the suite depends on."""
        store = example_store()
        schedules = []
        for run in range(2):
            directory = str(tmp_path / f"db{run}")
            specs = [
                FaultSpec("persist.write_doc", probability=0.4, times=2),
                FaultSpec("persist.replace", probability=0.3, times=2),
            ]
            with injecting(specs, seed=chaos_seed) as injector:
                save_store(store, directory)
                schedules.append((dict(injector.calls),
                                  dict(injector.fired)))
        assert schedules[0] == schedules[1]

    def test_different_seeds_can_differ(self, tmp_path):
        """Sanity: the schedule is a function of the seed (probability
        0.5 over dozens of draws makes a collision astronomically
        unlikely)."""
        store = example_store()
        fired = []
        for seed in (1, 2, 3, 4):
            directory = str(tmp_path / f"db{seed}")
            injector = FaultInjector(
                [FaultSpec("persist.write_doc", probability=0.5,
                           times=10)],
                seed=seed,
            )
            from repro.resilience import install_faults, uninstall_faults
            install_faults(injector)
            try:
                try:
                    save_store(store, directory)
                except PersistError:
                    pass
            finally:
                uninstall_faults()
            fired.append(sum(injector.fired.values()))
        assert len(set(fired)) > 1

    def test_index_build_fault_point(self, chaos_seed):
        store = example_store()
        spec = FaultSpec("index.build", at_calls=(1,))
        with injecting([spec], seed=chaos_seed):
            with pytest.raises(OSError, match="index.build"):
                store.index.frequency("search")
        # the injector is gone; a fresh build succeeds
        assert store.index.frequency("search") > 0
