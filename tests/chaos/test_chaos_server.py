"""Chaos tests for the serving stack: seeded frame-I/O faults, torn
frames, a slowloris peer, and killing the server mid-query.

The invariants, whatever the fault schedule: every request terminates
promptly with either a result, a typed error envelope, or a transport
error — never a hang — and the server keeps serving (or drains
cleanly) afterwards."""

import socket
import struct
import threading
import time

import pytest

from repro.errors import TIXError
from repro.exampledata import example_store
from repro.resilience import FaultSpec, injecting
from repro.resilience.run import GuardedResult
from repro.server import PooledClient, QueryServer
from repro.server.protocol import read_frame

pytestmark = pytest.mark.chaos

QUERY = (
    'For $x in document("articles.xml")//section '
    'Score $x using ScoreFoo($x, {"search engine"}, {"internet"}) '
    'Return $x Sortby(score)'
)


class TestFrameFaults:
    def test_injected_frame_io_faults_never_hang(self, chaos_seed):
        """Probabilistic faults on every frame read/write, both sides of
        the wire.  Each call must finish fast with a result, a typed
        error, or a transport error; the server must survive."""
        srv = QueryServer(example_store(), port=0).start()
        outcomes = []
        specs = [
            FaultSpec("server.frame_read", probability=0.15),
            FaultSpec("server.frame_write", probability=0.15),
        ]
        try:
            with injecting(specs, seed=chaos_seed) as injector:
                cl = PooledClient(srv.host, srv.port, retries=3,
                                  retry_base_s=0.001, retry_max_s=0.01,
                                  call_timeout_s=5.0, seed=chaos_seed)
                for _ in range(25):
                    t0 = time.monotonic()
                    try:
                        res = cl.query(QUERY)
                        outcomes.append(("ok", res.n_results))
                    except TIXError as exc:
                        outcomes.append(("typed", type(exc).__name__))
                    except OSError as exc:
                        outcomes.append(("transport",
                                         type(exc).__name__))
                    assert time.monotonic() - t0 < 5.0
                cl.close()
                assert injector.fired  # the schedule actually fired
            assert len(outcomes) == 25
            n_ok = sum(1 for kind, _ in outcomes if kind == "ok")
            assert n_ok > 0  # retries recover some calls
            # faults gone: the server still serves (no poisoned state)
            with PooledClient(srv.host, srv.port,
                              call_timeout_s=5.0) as cl2:
                assert cl2.ping()
                assert cl2.query(QUERY).n_results > 0
        finally:
            assert srv.close(drain_s=2.0)

    def test_accept_faults_do_not_kill_the_listener(self, chaos_seed):
        srv = QueryServer(example_store(), port=0).start()
        try:
            with injecting(
                    [FaultSpec("server.accept", probability=0.5)],
                    seed=chaos_seed):
                with PooledClient(srv.host, srv.port, retries=4,
                                  retry_base_s=0.001,
                                  connect_timeout_s=1.0,
                                  call_timeout_s=5.0,
                                  seed=chaos_seed) as cl:
                    ok = sum(
                        1 for _ in range(10)
                        if safe_query(cl) is not None
                    )
            # afterwards the accept loop must still be alive
            with PooledClient(srv.host, srv.port,
                              call_timeout_s=5.0) as cl2:
                assert cl2.query(QUERY).n_results > 0
            assert ok >= 0  # bounded outcomes, no hang is the invariant
        finally:
            assert srv.close(drain_s=2.0)


def safe_query(cl):
    try:
        return cl.query(QUERY)
    except (TIXError, OSError):
        return None


class TestHostilePeers:
    def test_torn_frames_from_many_peers(self, chaos_seed):
        """A swarm of peers sending truncated garbage: each gets a
        typed BAD_FRAME reply (when the prefix parsed) or a close, and
        a well-behaved client is unaffected throughout."""
        import random

        rng = random.Random(chaos_seed)
        srv = QueryServer(example_store(), port=0).start()
        try:
            with PooledClient(srv.host, srv.port,
                              call_timeout_s=5.0) as good:
                for _ in range(10):
                    claimed = rng.randrange(8, 256)
                    sent = rng.randrange(0, claimed)
                    with socket.create_connection(
                            (srv.host, srv.port), timeout=5.0) as bad:
                        bad.sendall(struct.pack("!I", claimed)
                                    + b"x" * sent)
                        bad.shutdown(socket.SHUT_WR)
                        try:
                            resp = read_frame(bad)
                        except (TIXError, OSError):
                            resp = None
                        if resp is not None:
                            assert resp["ok"] is False
                            assert resp["error"]["code"] == "BAD_FRAME"
                    assert good.query(QUERY).n_results > 0
        finally:
            assert srv.close(drain_s=2.0)

    def test_slowloris_is_evicted_within_the_idle_timeout(self):
        srv = QueryServer(example_store(), port=0,
                          idle_timeout_s=0.3).start()
        try:
            stall = socket.create_connection(
                (srv.host, srv.port), timeout=5.0)
            stall.sendall(struct.pack("!I", 64) + b"partial")
            stall.settimeout(5.0)
            t0 = time.monotonic()
            # the server must close the stalled connection, not wait
            # for the rest of the frame forever
            assert stall.recv(1) == b""
            assert time.monotonic() - t0 < 3.0
            stall.close()
            with PooledClient(srv.host, srv.port,
                              call_timeout_s=5.0) as cl:
                assert cl.query(QUERY).n_results > 0
        finally:
            assert srv.close(drain_s=2.0)


class TestKillMidQuery:
    def test_close_during_queries_answers_or_types_every_call(self):
        """Kill the server while a fleet is mid-flight: every call ends
        with a result, a typed rejection, or a transport error — and
        close() itself returns (drained or cancelled), never hangs."""
        release = threading.Event()

        def runner(source, guard):
            while not release.wait(0.01):
                try:
                    guard.tick()
                except Exception as exc:
                    if guard.degrade:
                        return GuardedResult(
                            [], truncated=True, reason=str(exc),
                            error=exc,
                        )
                    raise
            return GuardedResult(["<row/>"])

        srv = QueryServer(example_store(), port=0, max_inflight=4,
                          runner=runner).start()
        outcomes = []
        lock = threading.Lock()

        def worker(i):
            cl = PooledClient(srv.host, srv.port, retries=1,
                              call_timeout_s=5.0, seed=i)
            try:
                res = cl.query(QUERY, degrade=True)
                out = ("answered", res.truncated)
            except TIXError as exc:
                out = ("typed", type(exc).__name__)
            except OSError as exc:
                out = ("transport", type(exc).__name__)
            finally:
                cl.close()
            with lock:
                outcomes.append(out)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        for th in threads:
            th.start()
        time.sleep(0.15)  # let the fleet get in flight / queued
        t0 = time.monotonic()
        drained = srv.close(drain_s=0.2, cancel_grace_s=2.0)
        close_elapsed = time.monotonic() - t0
        release.set()
        for th in threads:
            th.join(10.0)
            assert not th.is_alive()
        assert close_elapsed < 8.0
        assert len(outcomes) == 6
        # in-flight degrade-mode calls were cancelled cooperatively and
        # still *answered* (truncated partials), so the drain completed
        assert drained is True
        answered = [o for o in outcomes if o[0] == "answered"]
        assert answered, outcomes
