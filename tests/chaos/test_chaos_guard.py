"""Chaos tests for the query guard: random tiny budgets and deadlines
over a seeded query mix.  The invariants, regardless of where a guard
trips: degrade mode never raises, strict mode only ever raises a
``QueryAbortedError`` subclass, and every degraded result is a prefix of
the full run."""

import random

import pytest

from repro.errors import QueryAbortedError
from repro.exampledata import example_store
from repro.resilience import QueryGuard, run_query_guarded

pytestmark = pytest.mark.chaos

QUERIES = [
    'For $x in document("articles.xml")//article/descendant-or-self::* '
    'Score $x using ScoreFooExact($x, {"technologies"}) '
    'Return $x Sortby(score)',
    'For $x in document("articles.xml")//section '
    'Score $x using ScoreFoo($x, {"search engine"}, {"internet"}) '
    'Return $x Sortby(score)',
    'For $x in document("reviews.xml")//review Return $x',
]


@pytest.fixture(scope="module")
def store():
    return example_store()


@pytest.fixture(scope="module")
def full_results(store):
    """Unbudgeted reference run per query."""
    return {
        q: run_query_guarded(store, q, QueryGuard()).results
        for q in QUERIES
    }


class TestRandomBudgets:
    def test_degrade_never_raises_and_prefixes_match(
        self, store, full_results, chaos_seed
    ):
        rng = random.Random(chaos_seed)
        for _ in range(25):
            q = rng.choice(QUERIES)
            guard = QueryGuard(
                max_rows=rng.randrange(0, 6),
                timeout_ms=rng.choice([None, 60_000]),
                degrade=True,
            )
            res = run_query_guarded(store, q, guard)
            full = full_results[q]
            got = [(t.root.source, t.score) for t in res.results]
            want = [(t.root.source, t.score) for t in full[:len(got)]]
            assert got == want
            if res.truncated:
                assert res.n_results <= guard.max_rows

    def test_strict_only_raises_aborted_errors(self, store, chaos_seed):
        rng = random.Random(chaos_seed)
        outcomes = []
        for _ in range(25):
            q = rng.choice(QUERIES)
            guard = QueryGuard(max_rows=rng.randrange(0, 6))
            try:
                res = run_query_guarded(store, q, guard)
                outcomes.append(("ok", res.n_results))
            except QueryAbortedError as exc:
                outcomes.append(("trip", type(exc).__name__))
        # the mix must contain both completions and trips — otherwise
        # the budgets are not actually exercising the guard
        kinds = {k for k, _ in outcomes}
        assert kinds == {"ok", "trip"}

    def test_same_seed_same_outcomes(self, store, chaos_seed):
        def run_once():
            rng = random.Random(chaos_seed)
            out = []
            for _ in range(10):
                q = rng.choice(QUERIES)
                guard = QueryGuard(max_rows=rng.randrange(0, 6),
                                   degrade=True)
                res = run_query_guarded(store, q, guard)
                out.append((q, res.truncated, res.n_results))
            return out

        assert run_once() == run_once()

    def test_tiny_deadline_degrades_cleanly(self, store):
        """An effectively-zero deadline may trip anywhere in the
        pipeline; degrade mode must still return (possibly empty)
        results, never raise."""
        import time

        for q in QUERIES:
            guard = QueryGuard(timeout_ms=0, degrade=True)
            time.sleep(0.001)
            res = run_query_guarded(store, q, guard)
            assert res.truncated
            assert res.reason
