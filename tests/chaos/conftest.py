"""Chaos-suite fixtures.

The whole suite is deterministic: every fault injector is seeded from
``TIX_CHAOS_SEED`` (default 1234), so a failing run replays exactly by
exporting the same seed.  CI pins the seed; set a different one locally
to explore other fault schedules.

CI additionally exports ``TIX_LOCK_SANITIZER=1`` for this suite: the
runtime lock sanitizer instruments every lock the scenarios create,
so the fault schedules double as a lock-order/deadlock probe.  A
detected violation or cyclic wait fails the run at teardown.
"""

import os

import pytest

from repro.analysis import sanitizer as _sanitizer


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    return int(os.environ.get("TIX_CHAOS_SEED", "1234"))


@pytest.fixture(scope="session", autouse=True)
def lock_sanitizer():
    """Install the runtime lock sanitizer for the whole chaos session
    when ``TIX_LOCK_SANITIZER=1`` (CI does), and assert it observed a
    clean run."""
    san = _sanitizer.install_from_env()
    yield san
    if san is None:
        return
    violations = san.violations()
    deadlocks = san.deadlocks
    _sanitizer.uninstall()
    assert deadlocks == 0, "lock sanitizer detected a cyclic wait"
    assert violations == [], (
        f"lock sanitizer observed order violations: {violations}"
    )
