"""Chaos-suite fixtures.

The whole suite is deterministic: every fault injector is seeded from
``TIX_CHAOS_SEED`` (default 1234), so a failing run replays exactly by
exporting the same seed.  CI pins the seed; set a different one locally
to explore other fault schedules.
"""

import os

import pytest


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    return int(os.environ.get("TIX_CHAOS_SEED", "1234"))
