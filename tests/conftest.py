"""Shared fixtures: the Figure 1 example store, small synthetic corpora,
and helper factories used across the suite."""

from __future__ import annotations

import random

import pytest

from repro.exampledata import example_store
from repro.workload import CorpusSpec, generate_corpus
from repro.xmldb.builder import DocumentBuilder
from repro.xmldb.store import XMLStore


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite the tests/golden/*.json snapshots from the current "
             "outputs instead of comparing against them",
    )


@pytest.fixture()
def store() -> XMLStore:
    """Fresh Figure-1 example store per test."""
    return example_store()


@pytest.fixture(scope="session")
def small_corpus() -> XMLStore:
    """A small synthetic corpus with planted terms (shared, read-only)."""
    spec = CorpusSpec(
        n_articles=12,
        planted_terms={"alpha": 40, "beta": 25, "gamma": 10, "solo": 1},
        planted_phrases={("px", "py"): 8},
        seed=99,
    )
    return generate_corpus(spec)


def build_random_document(rng: random.Random, n_elements: int,
                          vocab=("red", "green", "blue", "cyan", "teal"),
                          doc_id: int = 0, name: str = "rand.xml"):
    """Random well-formed document with ~n_elements elements and random
    short texts — the workhorse generator for oracle-comparison tests."""
    b = DocumentBuilder()
    b.start_element("root")
    depth = 1
    made = 1
    while made < n_elements:
        action = rng.random()
        if action < 0.45 and depth < 12:
            b.start_element(rng.choice(["a", "b", "c", "d"]))
            depth += 1
            made += 1
            if rng.random() < 0.7:
                b.text(" ".join(
                    rng.choice(vocab) for _ in range(rng.randrange(0, 5))
                ))
        elif action < 0.8 and depth > 1:
            b.end_element()
            depth -= 1
        else:
            b.text(" ".join(
                rng.choice(vocab) for _ in range(rng.randrange(1, 4))
            ))
    while depth > 0:
        b.end_element()
        depth -= 1
    return b.finish(name, doc_id)


@pytest.fixture()
def random_store_factory():
    """Factory building stores of random documents for a given seed."""

    def make(seed: int, n_docs: int = 2, n_elements: int = 40) -> XMLStore:
        rng = random.Random(seed)
        s = XMLStore()
        for d in range(n_docs):
            s.add_document(
                build_random_document(
                    rng, n_elements, doc_id=d, name=f"rand{d}.xml"
                )
            )
        return s

    return make
