"""Property tests for the NEXI front end: parser totality and
evaluation invariants on random corpora."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuerySyntaxError
from repro.nexi import parse_nexi, run_nexi
from repro.xmldb.store import XMLStore

from .strategies import TAGS, VOCAB, build_document, doc_shapes


@given(st.text(max_size=120))
@settings(max_examples=150)
def test_parser_total(text):
    """Any input either parses or raises QuerySyntaxError."""
    try:
        parse_nexi(text)
    except QuerySyntaxError:
        pass


@given(st.text(alphabet='/[]().,*"aboutandor ', max_size=80))
@settings(max_examples=150)
def test_parser_syntax_heavy_fuzz(text):
    try:
        parse_nexi(text)
    except QuerySyntaxError:
        pass


def make_store(shape) -> XMLStore:
    store = XMLStore()
    store.add_document(build_document(shape))
    return store


@given(doc_shapes, st.sampled_from(TAGS), st.sampled_from(VOCAB))
@settings(max_examples=60, deadline=None)
def test_cas_hits_contain_the_terms(shape, tag, term):
    store = make_store(shape)
    hits = run_nexi(store, f'//{tag}[about(., {term})]')
    doc = store.document(0)
    for h in hits:
        assert doc.tags[h.node_id] == tag
        assert term in doc.subtree_words(h.node_id)
        assert h.score > 0


@given(doc_shapes, st.sampled_from(VOCAB))
@settings(max_examples=60, deadline=None)
def test_co_scores_monotone_and_complete(shape, term):
    store = make_store(shape)
    hits = run_nexi(store, term)
    doc = store.document(0)
    scores = [h.score for h in hits]
    assert scores == sorted(scores, reverse=True)
    # every element containing the term is retrieved
    expected = {
        nid for nid in range(len(doc))
        if term in doc.subtree_words(nid)
    }
    assert {h.node_id for h in hits} == expected


@given(doc_shapes, st.sampled_from(TAGS), st.sampled_from(VOCAB),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_top_k_is_prefix(shape, tag, term, k):
    store = make_store(shape)
    full = run_nexi(store, f'//{tag}[about(., {term})]')
    cut = run_nexi(store, f'//{tag}[about(., {term})]', top_k=k)
    assert cut == full[:k]
