"""Property tests on the TIX algebra: selection/projection invariants,
threshold semantics, scoring consistency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import find_embeddings
from repro.core.operators import (
    scored_projection,
    scored_selection,
    sort_by_score,
    threshold,
    top_k_trees,
)
from repro.core.pattern import (
    EdgeType,
    FromLabel,
    PatternNode,
    PhraseScore,
    ScoredPatternTree,
)
from repro.core.scoring import WeightedCountScorer

from .strategies import VOCAB, build_document, build_stree, doc_shapes


def ir_pattern():
    p1 = PatternNode("$1")
    p1.add_child(PatternNode("$2"), EdgeType.ADS)
    return ScoredPatternTree(p1, scoring={
        "$2": PhraseScore(WeightedCountScorer(["red"], ["green"])),
        "$1": FromLabel("$2"),
    })


@given(doc_shapes)
@settings(max_examples=60, deadline=None)
def test_selection_cardinality_equals_embeddings(shape):
    tree = build_stree(shape)
    pattern = ir_pattern()
    matches = find_embeddings(pattern, tree)
    out = scored_selection([tree], pattern)
    assert len(out) == len(matches)


@given(doc_shapes)
@settings(max_examples=60, deadline=None)
def test_selection_scores_equal_direct_scoring(shape):
    # Use a document-backed tree so witness copies carry source refs and
    # can be correlated with the original nodes (witness subtrees are
    # truncated, so scoring the copy directly would be wrong).
    from repro.core.trees import tree_from_document

    doc = build_document(shape)
    tree = tree_from_document(doc)
    pattern = ir_pattern()
    scorer = WeightedCountScorer(["red"], ["green"])
    for witness in scored_selection([tree], pattern):
        for node in witness.nodes():
            if "$2" in node.labels:
                assert node.source is not None
                words = doc.subtree_words(node.source[1])
                assert node.score == pytest.approx(
                    scorer.score_words(words)
                )


@given(doc_shapes)
@settings(max_examples=60, deadline=None)
def test_projection_root_score_is_max_of_retained(shape):
    tree = build_stree(shape)
    pattern = ir_pattern()
    out = scored_projection([tree], pattern, ["$1", "$2"])
    for result in out:
        scored = [
            n.score for n in result.nodes()
            if "$2" in n.labels and n.score is not None
        ]
        if scored and result.root.score is not None:
            assert result.root.score == pytest.approx(max(scored))


@given(doc_shapes)
@settings(max_examples=60, deadline=None)
def test_projection_drops_zero_scores(shape):
    tree = build_stree(shape)
    pattern = ir_pattern()
    for result in scored_projection([tree], pattern, ["$1", "$2"]):
        for node in result.nodes():
            if node.labels <= {"$1", "$2"} and node.score is not None:
                assert node.score > 0.0


@given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False),
                min_size=1, max_size=30),
       st.integers(min_value=1, max_value=10))
@settings(max_examples=80)
def test_top_k_trees_are_the_k_best(scores, k):
    from repro.core.trees import SNode, STree

    trees = [STree(SNode("t", score=s)) for s in scores]
    out = top_k_trees(trees, k)
    assert len(out) == min(k, len(scores))
    best = sorted(scores, reverse=True)[: len(out)]
    assert [t.score for t in out] == best


@given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False),
                min_size=1, max_size=30),
       st.floats(min_value=0, max_value=10, allow_nan=False))
@settings(max_examples=80)
def test_threshold_v_keeps_exactly_above(scores, v):
    from repro.core.trees import SNode, STree

    trees = []
    for s in scores:
        node = SNode("t", score=s)
        node.labels = {"$x"}
        trees.append(STree(node))
    out = threshold(trees, "$x", min_score=v)
    assert len(out) == sum(1 for s in scores if s > v)


@given(st.lists(st.floats(min_value=0, max_value=10, allow_nan=False),
                min_size=1, max_size=30))
@settings(max_examples=60)
def test_sort_by_score_is_monotone(scores):
    from repro.core.trees import SNode, STree

    trees = [STree(SNode("t", score=s)) for s in scores]
    out = sort_by_score(trees)
    vals = [t.score for t in out]
    assert vals == sorted(scores, reverse=True)
