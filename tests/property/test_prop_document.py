"""Property tests: region-numbering invariants on random documents."""

from hypothesis import given, settings

from repro.xmldb.parser import parse_document

from .strategies import build_document, doc_shapes


@given(doc_shapes)
@settings(max_examples=80)
def test_regions_nest_properly(shape):
    doc = build_document(shape)
    for nid in range(len(doc)):
        parent = doc.parents[nid]
        if parent >= 0:
            assert doc.starts[parent] < doc.starts[nid]
            assert doc.ends[nid] < doc.ends[parent]
            assert doc.levels[nid] == doc.levels[parent] + 1


@given(doc_shapes)
@settings(max_examples=80)
def test_region_keys_unique_and_increasing(shape):
    doc = build_document(shape)
    keys = sorted(doc.starts + doc.ends + doc.word_pos)
    assert len(keys) == len(set(keys))
    assert doc.starts == sorted(doc.starts)  # preorder ids


@given(doc_shapes)
@settings(max_examples=80)
def test_descendant_range_equals_containment(shape):
    doc = build_document(shape)
    for nid in range(len(doc)):
        by_range = set(doc.descendants(nid))
        by_region = {
            other for other in range(len(doc))
            if doc.is_ancestor(nid, other)
        }
        assert by_range == by_region


@given(doc_shapes)
@settings(max_examples=80)
def test_subtree_words_equal_descendant_direct_words(shape):
    doc = build_document(shape)
    for nid in range(len(doc)):
        collected = []
        for member in doc.subtree(nid):
            collected.extend(doc.direct_words(member))
        # direct words concatenated in id order == flat slice, because
        # word table is in document order and ids are preorder
        assert sorted(collected) == sorted(doc.subtree_words(nid))


@given(doc_shapes)
@settings(max_examples=60)
def test_serialize_parse_roundtrip(shape):
    doc = build_document(shape)
    again = parse_document(doc.serialize(), name=doc.name)
    assert again.tags == doc.tags
    assert again.parents == doc.parents
    assert again.word_terms == doc.word_terms


@given(doc_shapes)
@settings(max_examples=80)
def test_ancestors_of_pos_consistent(shape):
    doc = build_document(shape)
    for i in range(doc.n_words):
        occ = doc.word_occurrence(i)
        chain = doc.ancestors_of_pos(occ.pos)
        assert chain[-1] == occ.node_id
        for anc in chain[:-1]:
            assert doc.is_ancestor(anc, occ.node_id)
