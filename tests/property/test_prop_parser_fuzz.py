"""Fuzz-style property tests: the XML parser and the query parser never
crash with anything but their declared error types, and well-formed
inputs round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuerySyntaxError, TIXError, XMLParseError
from repro.query.parser import parse_query
from repro.query.unparse import unparse
from repro.xmldb.parser import parse_document


@given(st.text(max_size=200))
@settings(max_examples=200)
def test_xml_parser_total(text):
    """Arbitrary text either parses or raises XMLParseError — never any
    other exception."""
    try:
        doc = parse_document(text)
    except XMLParseError:
        return
    # If it parsed, the result must be coherent and serializable.
    assert len(doc) >= 1
    parse_document(doc.serialize())


@given(st.text(
    alphabet="<>/abc =\"'&;x!?-[]", max_size=120,
))
@settings(max_examples=200)
def test_xml_parser_markup_heavy_fuzz(text):
    """Markup-dense fuzz input exercises the tokenizer's error paths."""
    try:
        parse_document(text)
    except XMLParseError:
        pass


@given(st.text(max_size=200))
@settings(max_examples=200)
def test_query_parser_total(text):
    """Arbitrary text either parses as a query or raises
    QuerySyntaxError."""
    try:
        parse_query(text)
    except QuerySyntaxError:
        pass


@given(st.text(
    alphabet="FordLetScPikRun$abc(){}\"/@<>=.,:* \n0123456789",
    max_size=150,
))
@settings(max_examples=200)
def test_query_parser_keyword_heavy_fuzz(text):
    try:
        query = parse_query(text)
    except QuerySyntaxError:
        return
    # Anything that parsed must unparse and re-parse to the same AST.
    assert parse_query(unparse(query)) == query
