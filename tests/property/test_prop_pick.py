"""Property tests for Pick: core/access equivalence and the operator's
invariants on random scored trees."""

from hypothesis import given, settings

from repro.access.pick import PickAccess
from repro.core.pick import PickCriterion, compute_picked, pick_tree
from repro.core.trees import STree

from .strategies import build_scored_stree, scored_tree_shapes

CRITERION = PickCriterion(relevance_threshold=0.8, qualification=0.5)


def parent_map(tree: STree):
    parents = {}

    def walk(node, parent):
        parents[id(node)] = parent
        for c in node.children:
            walk(c, node)

    walk(tree.root, None)
    return parents


@given(scored_tree_shapes)
@settings(max_examples=80, deadline=None)
def test_access_equals_core(shape_scores):
    tree = build_scored_stree(shape_scores)
    candidates = {id(n) for n in tree.nodes()}
    core = compute_picked(tree, candidates, CRITERION)
    access = PickAccess(CRITERION)
    assert {id(n) for n in access.picked_nodes(tree)} == core


@given(scored_tree_shapes)
@settings(max_examples=80, deadline=None)
def test_no_parent_child_both_picked(shape_scores):
    tree = build_scored_stree(shape_scores)
    candidates = {id(n) for n in tree.nodes()}
    picked = compute_picked(tree, candidates, CRITERION)
    parents = parent_map(tree)
    for node in tree.nodes():
        if id(node) in picked:
            parent = parents[id(node)]
            if parent is not None:
                assert id(parent) not in picked


@given(scored_tree_shapes)
@settings(max_examples=80, deadline=None)
def test_picked_are_worth_returning(shape_scores):
    tree = build_scored_stree(shape_scores)
    candidates = {id(n) for n in tree.nodes()}
    picked = compute_picked(tree, candidates, CRITERION)
    for node in tree.nodes():
        if id(node) in picked:
            assert CRITERION.worth(node, node.children)


@given(scored_tree_shapes)
@settings(max_examples=80, deadline=None)
def test_blocked_only_by_picked_parent(shape_scores):
    """A worth-returning candidate is excluded only when its direct
    parent was picked."""
    tree = build_scored_stree(shape_scores)
    candidates = {id(n) for n in tree.nodes()}
    picked = compute_picked(tree, candidates, CRITERION)
    parents = parent_map(tree)
    for node in tree.nodes():
        if id(node) not in picked and CRITERION.worth(node, node.children):
            parent = parents[id(node)]
            assert parent is not None and id(parent) in picked


@given(scored_tree_shapes)
@settings(max_examples=60, deadline=None)
def test_pruned_tree_contains_exactly_survivors(shape_scores):
    tree = build_scored_stree(shape_scores)
    candidates = {id(n) for n in tree.nodes()}
    picked = compute_picked(tree, candidates, CRITERION)
    out = pick_tree(tree, candidates, CRITERION)
    if not picked:
        assert out is None or all(
            n.score is None for n in out.nodes()
        )
        return
    # The scored nodes of the output are exactly the picked candidates
    # (clones are renumbered, so compare by (tag, score) multiset).
    from collections import Counter

    out_keys = Counter(
        (n.tag, n.score) for n in out.nodes() if n.score is not None
    )
    picked_keys = Counter(
        (n.tag, n.score) for n in tree.nodes() if id(n) in picked
    )
    assert out_keys == picked_keys


@given(scored_tree_shapes)
@settings(max_examples=60, deadline=None)
def test_prune_preserves_ancestry_order(shape_scores):
    tree = build_scored_stree(shape_scores)
    candidates = {id(n) for n in tree.nodes()}
    access = PickAccess(CRITERION)
    _picked, out = access.run(tree)
    if out is None:
        return
    # output preorder intervals must still nest consistently with the
    # original document order
    starts = [n.order_start for n in out.nodes()]
    assert starts == sorted(starts)
