"""Property tests for the planner's cost model (:mod:`repro.plan.rules`)
and selection chain (:mod:`repro.plan.optimizer`).

Invariants locked down here:

- per-operator cost formulas are monotone in their input volume (more
  rows never gets cheaper);
- the top-k rank cost never exceeds sort-limit (the engineered guarantee
  that keeps TopK the default, matching pre-planner behaviour);
- ``cost_alternatives`` clamps every cost finite and non-negative no
  matter how degenerate the spec or the feedback corrections;
- planning is deterministic for a fixed store generation;
- a forced override always beats the cost-based choice, and the *last*
  stage of a chained ``PhysicalOperatorSelection`` wins.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan.optimizer import (
    CostBasedSelection,
    ForcedSelection,
    HeuristicSelection,
    choose_plan,
    make_selection,
)
from repro.plan.rules import (
    FILTER_BISECT,
    FILTER_LINEAR,
    POINT_FILTER,
    POINT_RANK,
    POINT_SCORE,
    RANK_SORT_LIMIT,
    RANK_TOPK,
    CostConstants,
    QuerySpec,
    _filter_cost,
    _rank_cost,
    cost_alternatives,
    decision_points,
)
from repro.xmldb.builder import DocumentBuilder
from repro.xmldb.store import XMLStore

_C = CostConstants()


def _store() -> XMLStore:
    b = DocumentBuilder()
    b.start_element("root")
    for _ in range(6):
        b.start_element("a")
        b.text("red green blue red")
        b.end_element()
    b.end_element()
    store = XMLStore()
    store.add_document(b.finish("p.xml"))
    return store


STORE = _store()

rows_st = st.floats(min_value=0.0, max_value=1e9,
                    allow_nan=False, allow_infinity=False)
regions_st = st.integers(min_value=0, max_value=10**6)
k_st = st.integers(min_value=1, max_value=10**6)

specs_st = st.builds(
    QuerySpec,
    terms=st.lists(st.sampled_from(["red", "green", "zzz"]),
                   min_size=1, max_size=3),
    phrase_mode=st.booleans(),
    min_score=st.one_of(st.none(), st.floats(0, 10, allow_nan=False)),
    stop_after=st.one_of(st.none(), st.integers(1, 1000)),
    sortby=st.booleans(),
    n_regions=st.integers(0, 10**4),
    region_fraction=st.floats(0.0, 1.0, allow_nan=False),
)

corrections_st = st.dictionaries(
    st.sampled_from(["termjoin-scan", "structural-filter", "sort"]),
    st.floats(min_value=-1e6, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    max_size=3,
)


# -- monotonicity ------------------------------------------------------


@given(rows=rows_st, delta=rows_st, regions=regions_st)
def test_filter_cost_monotone_in_rows(rows, delta, regions):
    for kind in (FILTER_LINEAR, FILTER_BISECT):
        assert _filter_cost(kind, rows + delta, regions, _C) >= \
            _filter_cost(kind, rows, regions, _C)


@given(rows=rows_st, regions=regions_st,
       more=st.integers(min_value=0, max_value=10**6))
def test_filter_cost_monotone_in_regions(rows, regions, more):
    for kind in (FILTER_LINEAR, FILTER_BISECT):
        assert _filter_cost(kind, rows, regions + more, _C) >= \
            _filter_cost(kind, rows, regions, _C)


@given(rows=rows_st, delta=rows_st, k=k_st)
def test_rank_cost_monotone_in_rows(rows, delta, k):
    for kind in (RANK_TOPK, RANK_SORT_LIMIT):
        assert _rank_cost(kind, rows + delta, k, _C) >= \
            _rank_cost(kind, rows, k, _C)


@given(rows=rows_st, k=k_st)
def test_topk_never_costs_more_than_sort_limit(rows, k):
    # The engineered guarantee that keeps TopK the cost-based default
    # wherever the old hard-coded pipeline used it.
    assert _rank_cost(RANK_TOPK, rows, k, _C) <= \
        _rank_cost(RANK_SORT_LIMIT, rows, k, _C)


# -- clamping ----------------------------------------------------------


@settings(max_examples=150)
@given(spec=specs_st, corrections=corrections_st)
def test_costs_always_finite_and_non_negative(spec, corrections):
    for point in decision_points(spec):
        for alt in cost_alternatives(point, spec, STORE.stats,
                                     corrections=corrections):
            assert math.isfinite(alt.cost)
            assert alt.cost >= 0.0
            assert math.isfinite(alt.rows)
            assert alt.rows >= 0.0


# -- determinism -------------------------------------------------------


@settings(max_examples=50)
@given(spec=specs_st)
def test_planning_deterministic_for_fixed_generation(spec):
    gen = STORE.generation
    first = choose_plan(spec, STORE.stats, make_selection("cost"))
    second = choose_plan(spec, STORE.stats, make_selection("cost"))
    assert STORE.generation == gen
    assert first.to_dict() == second.to_dict()


# -- forcing and chaining ---------------------------------------------


@settings(max_examples=100)
@given(spec=specs_st, data=st.data())
def test_forced_override_beats_cost(spec, data):
    points = decision_points(spec)
    point = data.draw(st.sampled_from(points))
    op = data.draw(st.sampled_from(list(point.options)))
    choices = choose_plan(
        spec, STORE.stats,
        make_selection("cost", force_ops={point.point: op}),
    )
    choice = choices.choices[point.point]
    assert choice.chosen == op
    assert choice.source == "forced"
    # Unforced points still carry a cost-based decision.
    for other in points:
        if other.point != point.point:
            assert choices.choices[other.point].source == "cost"


def test_last_chained_stage_wins():
    spec = QuerySpec(terms=["red"], phrase_mode=False, n_regions=4)
    forced_last = CostBasedSelection().chain_with(
        ForcedSelection({POINT_FILTER: FILTER_BISECT}))
    choices = choose_plan(spec, STORE.stats, forced_last)
    assert choices.choices[POINT_FILTER].chosen == FILTER_BISECT

    # Reversed chain: the cost stage re-decides after the forced one.
    cost_last = ForcedSelection({POINT_FILTER: FILTER_BISECT})
    cost_last.chain_with(CostBasedSelection())
    rechosen = choose_plan(spec, STORE.stats, cost_last)
    assert rechosen.choices[POINT_FILTER].source == "cost"


def test_heuristic_chooses_defaults():
    spec = QuerySpec(terms=["red"], phrase_mode=False, min_score=0.1,
                     stop_after=5, sortby=True, n_regions=1000)
    choices = choose_plan(spec, STORE.stats, HeuristicSelection(),
                          planner="heuristic")
    for point in decision_points(spec):
        choice = choices.choices[point.point]
        assert choice.chosen == point.default
        assert not choice.flipped
        # The rejected alternatives are still costed for EXPLAIN.
        assert len(choice.alternatives) == len(point.options)
