"""Shared hypothesis strategies: random region-encoded documents and
random scored trees."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.trees import SNode, STree
from repro.xmldb.builder import DocumentBuilder

VOCAB = ["red", "green", "blue", "teal", "gray"]
TAGS = ["a", "b", "c"]

# A document described as a recursive structure:
# node = (tag, text_words, [children])
_node = st.deferred(
    lambda: st.tuples(
        st.sampled_from(TAGS),
        st.lists(st.sampled_from(VOCAB), max_size=4),
        st.lists(_node, max_size=3),
    )
)

doc_shapes = st.tuples(
    st.sampled_from(TAGS),
    st.lists(st.sampled_from(VOCAB), max_size=4),
    st.lists(_node, max_size=4),
)


def build_document(shape, name="prop.xml", doc_id=0):
    """Materialize a shape drawn from ``doc_shapes`` as a Document."""
    b = DocumentBuilder()

    def emit(node):
        tag, words, children = node
        b.start_element(tag)
        if words:
            b.text(" ".join(words))
        for child in children:
            emit(child)
        b.end_element()

    emit(shape)
    return b.finish(name, doc_id)


def build_stree(shape) -> STree:
    """Materialize a shape as a scored tree (unscored)."""

    def emit(node) -> SNode:
        tag, words, children = node
        snode = SNode(tag, words=list(words))
        for child in children:
            snode.add_child(emit(child))
        return snode

    return STree(emit(shape))


scored_tree_shapes = st.tuples(
    doc_shapes,
    st.lists(st.floats(min_value=0.0, max_value=3.0,
                       allow_nan=False), min_size=1, max_size=64),
)


def build_scored_stree(shape_and_scores) -> STree:
    """A scored tree whose node scores cycle through the drawn floats."""
    shape, scores = shape_and_scores
    tree = build_stree(shape)
    for i, node in enumerate(tree.nodes()):
        node.score = scores[i % len(scores)]
    return tree
