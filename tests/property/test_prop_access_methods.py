"""Property tests: every score-generating access method agrees with the
naive oracle (and therefore with every other) on random documents."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.access.composite import Comp1, Comp2, Comp3
from repro.access.phrasefinder import PhraseFinder
from repro.access.termjoin import EnhancedTermJoin, TermJoin
from repro.core.scoring import (
    ProximityScorer,
    WeightedCountScorer,
    count_phrase,
)
from repro.core.trees import tree_from_document
from repro.joins.meet import generalized_meet
from repro.joins.structural import naive_structural_join, stack_tree_join
from repro.xmldb.store import XMLStore

from .strategies import VOCAB, build_document, doc_shapes

TERMS = ["red", "green"]


def make_store(shape) -> XMLStore:
    store = XMLStore()
    store.add_document(build_document(shape))
    return store


def simple_oracle(store, terms, scorer):
    out = {}
    for doc in store.documents():
        for nid in range(len(doc)):
            words = doc.subtree_words(nid)
            counts = {t: words.count(t) for t in terms}
            if any(counts.values()):
                out[(doc.doc_id, nid)] = pytest.approx(
                    scorer.score_from_counts(counts)
                )
    return out


@given(doc_shapes)
@settings(max_examples=60, deadline=None)
def test_simple_methods_equal_oracle(shape):
    store = make_store(shape)
    scorer = WeightedCountScorer([TERMS[0]], [TERMS[1]])
    oracle = simple_oracle(store, TERMS, scorer)
    for method in (
        TermJoin(store, scorer),
        Comp1(store, scorer),
        Comp2(store, scorer),
    ):
        got = {(r.doc_id, r.node_id): r.score for r in method.run(TERMS)}
        assert got == oracle, type(method).__name__
    meet = {
        (r.doc_id, r.node_id): r.score
        for r in generalized_meet(store, TERMS, scorer)
    }
    assert meet == oracle


@given(doc_shapes)
@settings(max_examples=40, deadline=None)
def test_complex_methods_agree(shape):
    store = make_store(shape)
    scorer = ProximityScorer(TERMS)
    reference = {
        (r.doc_id, r.node_id): r.score
        for r in TermJoin(store, scorer, True).run(TERMS)
    }
    # tree-level oracle
    doc = store.document(0)
    tree = tree_from_document(doc)
    expected = {}
    for nid, node in enumerate(tree.nodes()):
        if scorer.collect_occurrences(node):
            expected[(0, nid)] = scorer.score_node(node)
    assert reference.keys() == expected.keys()
    for k in reference:
        assert reference[k] == pytest.approx(expected[k])
    for method in (
        EnhancedTermJoin(store, scorer, True),
        Comp1(store, scorer, True),
        Comp2(store, scorer, True),
    ):
        got = {(r.doc_id, r.node_id): r.score for r in method.run(TERMS)}
        assert got.keys() == reference.keys(), type(method).__name__
        for k in got:
            assert got[k] == pytest.approx(reference[k]), \
                type(method).__name__
    meet = {
        (r.doc_id, r.node_id): r.score
        for r in generalized_meet(store, TERMS, scorer, True)
    }
    assert meet.keys() == reference.keys()
    for k in meet:
        assert meet[k] == pytest.approx(reference[k])


@given(doc_shapes, st.lists(st.sampled_from(VOCAB), min_size=1, max_size=3))
@settings(max_examples=60, deadline=None)
def test_phrasefinder_equals_comp3_and_count_oracle(shape, phrase):
    store = make_store(shape)
    pf = [(m.doc_id, m.node_id, m.count)
          for m in PhraseFinder(store).run(phrase)]
    c3 = [(m.doc_id, m.node_id, m.count)
          for m in Comp3(store).run(phrase)]
    assert pf == c3
    doc = store.document(0)
    expected = []
    for nid in range(len(doc)):
        count = count_phrase(doc.direct_words(nid), phrase)
        if count:
            expected.append((0, nid, count))
    assert pf == expected


@given(doc_shapes, st.sampled_from(VOCAB))
@settings(max_examples=60, deadline=None)
def test_stack_tree_join_equals_naive(shape, term):
    store = make_store(shape)
    ancestors = store.structure.all_elements()
    postings = store.index.postings(term).postings
    assert stack_tree_join(ancestors, postings) == \
        naive_structural_join(ancestors, postings)
    # element-vs-element as well
    desc = store.structure.elements_with_tag("b")
    assert stack_tree_join(ancestors, desc) == \
        naive_structural_join(ancestors, desc)
