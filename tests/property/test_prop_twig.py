"""Property tests: twig joins equal the brute-force oracle on random
documents and random small twigs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.twig import TwigNode, naive_twig_join, path_stack, twig_join
from repro.xmldb.store import XMLStore

from .strategies import TAGS, build_document, doc_shapes


def norm(matches):
    return sorted(tuple(sorted(m.items())) for m in matches)


def make_store(shape) -> XMLStore:
    store = XMLStore()
    store.add_document(build_document(shape))
    return store


path_specs = st.lists(st.sampled_from(TAGS), min_size=1, max_size=3)


@given(doc_shapes, path_specs)
@settings(max_examples=80, deadline=None)
def test_path_stack_equals_oracle(shape, tags):
    store = make_store(shape)
    root = TwigNode("$0", tags[0])
    cur = root
    for i, tag in enumerate(tags[1:], start=1):
        cur = cur.add_child(TwigNode(f"${i}", tag))
    assert norm(path_stack(store, root.nodes())) == \
        norm(naive_twig_join(store, root))


twig_specs = st.tuples(
    st.sampled_from(TAGS),                # root
    st.lists(path_specs, min_size=1, max_size=2),  # branches
)


@given(doc_shapes, twig_specs)
@settings(max_examples=80, deadline=None)
def test_twig_join_equals_oracle(shape, spec):
    store = make_store(shape)
    root_tag, branches = spec
    root = TwigNode("$r", root_tag)
    label = 0
    for branch in branches:
        cur = root
        for tag in branch:
            label += 1
            cur = cur.add_child(TwigNode(f"${label}", tag))
    assert norm(twig_join(store, root)) == \
        norm(naive_twig_join(store, root))


@given(doc_shapes)
@settings(max_examples=50, deadline=None)
def test_twig_matches_respect_containment(shape):
    store = make_store(shape)
    root = TwigNode("$1", "a")
    root.add_child(TwigNode("$2", "b"))
    doc = store.document(0)
    for match in twig_join(store, root):
        (d1, n1), (d2, n2) = match["$1"], match["$2"]
        assert d1 == d2
        assert doc.is_ancestor(n1, n2)
