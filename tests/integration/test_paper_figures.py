"""Figure-level reproduction tests: the exact result trees and scores of
Figures 5, 6, 7, 8 and the Example 3.1 walk-through, computed from the
Figure 1 example database with the Figure 9 user functions."""

import pytest

from repro.core import (
    scored_join,
    scored_projection,
    scored_selection,
    sort_by_score,
    tree_from_document,
)
from repro.core.operators import pick, top_k_trees
from repro.core.pattern import (
    EdgeType,
    ExistingScore,
    FromLabel,
    PatternNode,
    ScoredPatternTree,
)
from repro.exampledata import (
    A,
    example_store,
    pickfoo_criterion,
    query2_pattern,
    query3_pattern,
)


@pytest.fixture(scope="module")
def store():
    return example_store()


@pytest.fixture()
def articles_tree(store):
    return tree_from_document(store.document("articles.xml"))


class TestFigure1:
    def test_twenty_elements_in_paper_order(self, store):
        doc = store.document("articles.xml")
        assert len(doc) == 20
        expected = [
            "article", "article-title", "author", "fname", "sname",
            "chapter", "ct", "chapter", "ct", "chapter", "ct",
            "section", "section-title", "section", "section-title",
            "section", "section-title", "p", "p", "p",
        ]
        assert doc.tags == expected

    def test_reviews_structure(self, store):
        doc = store.document("reviews.xml")
        assert doc.tags.count("review") == 2
        assert doc.attr(doc.find_by_tag("review")[0], "id") == "1"


class TestFigure5Selection:
    """Three representative result trees of Query 2 with Selection."""

    @pytest.fixture()
    def sketches(self, articles_tree):
        sel = scored_selection([articles_tree], query2_pattern())
        return [t.sketch() for t in sel]

    def test_part_a_paragraph_witness(self, sketches):
        assert "article[0.8](author(sname),p[0.8])" in sketches

    def test_part_b_section_witness(self, sketches):
        assert "article[3.6](author(sname),section[3.6])" in sketches

    def test_part_c_self_binding_witness(self, sketches):
        # $4 bound to the article itself: the ad* self-match appears as a
        # separate leaf copy (Fig. 5(c))
        assert "article[5.6](article[5.6],author(sname))" in sketches

    def test_full_collection_size(self, sketches):
        # one witness per descendant-or-self node of the article
        assert len(sketches) == 20


class TestFigure6Projection:
    def test_exact_tree(self, articles_tree):
        out = scored_projection(
            [articles_tree], query2_pattern(), ["$1", "$3", "$4"]
        )
        assert len(out) == 1
        assert out[0].sketch() == (
            "article[5.6](article-title[0.6],sname,"
            "chapter[5](section[0.8](section-title[0.8]),"
            "section[0.6](section-title[0.6]),"
            "section[3.6](p[0.8],p[1.4],p[1.4])))"
        )

    def test_paper_node_scores(self, articles_tree, store):
        out = scored_projection(
            [articles_tree], query2_pattern(), ["$1", "$3", "$4"]
        )
        scores = {
            n.source[1]: n.score
            for n in out[0].nodes() if n.score is not None
        }
        assert scores[A[1]] == pytest.approx(5.6)    # article
        assert scores[A[2]] == pytest.approx(0.6)    # article-title
        assert scores[A[10]] == pytest.approx(5.0)   # chapter 3
        assert scores[A[12]] == pytest.approx(0.8)   # section 1
        assert scores[A[16]] == pytest.approx(3.6)   # Examples section
        assert scores[A[18]] == pytest.approx(0.8)   # p
        assert scores[A[19]] == pytest.approx(1.4)   # p
        assert scores[A[20]] == pytest.approx(1.4)   # p

    def test_zero_score_nodes_removed(self, articles_tree):
        out = scored_projection(
            [articles_tree], query2_pattern(), ["$1", "$3", "$4"]
        )
        ids = {n.source[1] for n in out[0].nodes()}
        assert A[17] not in ids   # 'Examples' section-title scores 0
        assert A[6] not in ids    # chapter 1
        assert A[3] not in ids    # author not in PL


class TestFigure8Pick:
    @pytest.fixture()
    def picked(self, articles_tree):
        proj = scored_projection(
            [articles_tree], query2_pattern(), ["$1", "$3", "$4"]
        )
        return pick(proj, "$4", pickfoo_criterion(),
                    pattern=query2_pattern())

    def test_exact_tree(self, picked):
        assert picked[0].sketch() == (
            "article[5](sname,chapter[5](section-title[0.8],"
            "p[0.8],p[1.4],p[1.4]))"
        )

    def test_article_score_recomputed_dynamically(self, picked):
        # 5.6 → 5.0 after the Pick pruning (§3.2.2 / §3.3.2)
        assert picked[0].root.score == pytest.approx(5.0)

    def test_sections_dropped_because_parent_picked(self, picked):
        ids = {n.source[1] for n in picked[0].nodes()}
        assert A[12] not in ids and A[16] not in ids
        assert A[10] in ids  # the picked chapter

    def test_low_scored_leaves_dropped(self, picked):
        ids = {n.source[1] for n in picked[0].nodes()}
        assert A[2] not in ids    # article-title 0.6 < 0.8
        assert A[15] not in ids   # section-title 0.6


class TestExample31:
    """The four-step walkthrough: projection → pick → selection →
    threshold, ending at chapter #a10."""

    def test_top_result_is_chapter_a10(self, store, articles_tree):
        pattern = query2_pattern()
        proj = scored_projection(
            [articles_tree], pattern, ["$1", "$3", "$4"]
        )
        picked = pick(proj, "$4", pickfoo_criterion(), pattern=pattern)

        p1 = PatternNode("$1", tag="article")
        p1.add_child(
            PatternNode("$4", predicate=lambda n: (
                n.score is not None and n.tag != "article"
            )),
            EdgeType.ADS,
        )
        keep = ScoredPatternTree(p1, scoring={
            "$4": ExistingScore(), "$1": FromLabel("$4"),
        })
        witnesses = scored_selection(picked, keep)
        assert len(witnesses) == 5  # five primary data IR-nodes

        top = top_k_trees(witnesses, 1)[0]
        best = [n for n in top.nodes() if "$4" in n.labels][0]
        assert best.source == (0, A[10])
        assert best.score == pytest.approx(5.0)


class TestFigure7Join:
    def test_join_produces_the_figure7_tree(self, store, articles_tree):
        reviews = store.document("reviews.xml")
        rtrees = [
            tree_from_document(reviews, nid)
            for nid in reviews.find_by_tag("review")
        ]
        joined = scored_join([articles_tree], rtrees, query3_pattern())
        fig7 = [
            t for t in joined
            if t.score == pytest.approx(2.8) and any(
                n.source == (0, A[18]) for n in t.nodes() if n.source
            )
        ]
        assert fig7, "the Figure 7 witness (root 2.8 via p#a18) exists"
        tags = [n.tag for n in fig7[0].nodes()]
        assert tags[0] == "tix_prod_root"
        assert "review" in tags and "title" in tags

    def test_join_score_semantics(self, store, articles_tree):
        # ScoreBar gates on the content score: pairs whose $6 scores 0
        # get root score 0, never 2.0 alone.
        reviews = store.document("reviews.xml")
        rtrees = [
            tree_from_document(reviews, nid)
            for nid in reviews.find_by_tag("review")
        ]
        joined = scored_join([articles_tree], rtrees, query3_pattern())
        assert all(t.score != pytest.approx(2.0) for t in joined)
        best = sort_by_score(joined)[0]
        # max = simScore(2) + article's own ScoreFoo (5.6)
        assert best.score == pytest.approx(7.6)
