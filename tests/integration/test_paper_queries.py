"""End-to-end reproduction of the Figure 10 queries through the
extended-XQuery front end."""

import pytest

from repro.exampledata import example_store
from repro.query import run_query


@pytest.fixture(scope="module")
def store():
    return example_store()


QUERY1 = '''
For $a in document("articles.xml")//article/descendant-or-self::*
Score $a using ScoreFoo($a, {"search engine"},
        {"internet", "information retrieval"})
Pick $a using PickFoo($a)
Return <result><score>{ $a/@score }</score>{ $a }</result>
Sortby(score)
Threshold $a/@score > 0 stop after 5
'''

QUERY2 = '''
For $a := document("articles.xml")//
        article[/author/sname/text()="Doe"]/
        descendant-or-self::*
Score $a using ScoreFoo($a, {"search engine"},
        {"internet", "information retrieval"})
Pick $a using PickFoo($a)
Return <result><score>{ $a/@score }</score>{ $a }</result>
Sortby(score)
Threshold $a/@score > 4 stop after 5
'''

QUERY3 = '''
Let $c :=
 (<root>
  For $a in document("articles.xml")//article[/author/sname/text()="Doe"]
  For $b in document("reviews.xml")//review
  For $at in $a/article-title
  For $bt in $b/title
  Return
    <tix_prod_root>
      <simScore>ScoreSim($at, $bt)</simScore>
      { $a }
      { $b }
    </tix_prod_root>
  Threshold simScore > 1
 </root>)
For $d := $c//tix_prod_root/article/descendant-or-self::*
Score $d using ScoreFoo($d, {"search engine"},
        {"internet", "information retrieval"})
Pick $d using PickFoo($d)
For $e := $c//tix_prod_root[//$d]
Score $e using ScoreBar(decimal($d/@score), decimal($e/simScore))
Return
  <tix_prod_root>
    <score>{ $e/@score }</score>
    { $d }
    { $e/review }
  </tix_prod_root>
Sortby(score)
'''


class TestQuery1:
    def test_picked_ranked_results(self, store):
        out = run_query(store, QUERY1)
        got = [(t.score, t.root.children[1].tag) for t in out]
        assert got[0] == (pytest.approx(5.0), "chapter")
        assert len(out) == 5
        scores = [s for s, _t in got]
        assert scores == sorted(scores, reverse=True)

    def test_results_wrapped_with_score_element(self, store):
        out = run_query(store, QUERY1)
        for t in out:
            assert t.root.tag == "result"
            assert t.root.children[0].tag == "score"


class TestQuery2:
    def test_single_answer_chapter(self, store):
        out = run_query(store, QUERY2)
        assert len(out) == 1
        assert out[0].score == pytest.approx(5.0)
        returned = out[0].root.children[1]
        assert returned.tag == "chapter"
        # the chapter subtree is the paper's #a10 subtree
        assert "newsinessence" in returned.alltext()

    def test_author_predicate_filters(self, store):
        no_match = QUERY2.replace('"Doe"', '"Smith"')
        assert run_query(store, no_match) == []


class TestQuery3:
    def test_ranked_join_results(self, store):
        out = run_query(store, QUERY3)
        got = [(round(t.score, 4), [c.tag for c in t.root.children])
               for t in out]
        # chapter answer combined with the similar-titled review wins
        assert got[0][0] == pytest.approx(7.0)
        assert got[0][1] == ["score", "chapter", "review"]
        scores = [s for s, _k in got]
        assert scores == sorted(scores, reverse=True)
        # the Figure 7 score (2.8 = simScore 2 + p#a18's 0.8) appears
        assert 2.8 in scores

    def test_only_similar_titled_review_joins(self, store):
        out = run_query(store, QUERY3)
        for t in out:
            review = [c for c in t.root.children if c.tag == "review"][0]
            title_words = review.find_by_tag("title")[0].words
            assert title_words == ["internet", "technologies"]
