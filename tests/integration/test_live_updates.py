"""Concurrent corpus mutation under query traffic (the StoreGate
contract): generation-pinned requests never see a torn corpus, and the
lazily-cached index/structure/stats rebuild exactly once per
generation bump — by the writer, never raced among reader threads."""

import threading

from repro import obs
from repro.errors import DocumentNotFoundError, TIXError
from repro.server import PooledClient, QueryServer
from repro.xmldb.store import XMLStore

BASE_DOC = """<articles>
  <article><title>stable base document</title>
    <body><sec>alpha beta gamma</sec></body>
  </article>
</articles>"""

QUERY_LIVE = 'For $x in document("live.xml")//item Return $x'
QUERY_BASE = 'For $x in document("base.xml")//article Return $x'


def live_doc(n_items: int) -> str:
    items = "".join(
        f"<item><k>v{i}</k></item>" for i in range(n_items)
    )
    return f"<root>{items}</root>"


class TestLiveUpdates:
    def test_generation_pinned_queries_never_see_a_torn_corpus(self):
        store = XMLStore()
        store.load("base.xml", BASE_DOC)
        store.load("live.xml", live_doc(1))
        srv = QueryServer(store, port=0, max_inflight=8).start()

        # expected corpus state per generation, recorded by the single
        # mutator thread: generation -> item count (None = absent)
        expected = {store.generation: 1}
        observations = []
        obs_lock = threading.Lock()
        stop = threading.Event()
        n_mutations = 12

        def mutator():
            count = 1
            for step in range(n_mutations):
                if step % 2 == 0:
                    srv.remove_document("live.xml")
                    expected[store.generation] = None
                else:
                    count += 1
                    srv.add_document("live.xml", live_doc(count))
                    expected[store.generation] = count
            stop.set()

        def reader(worker):
            cl = PooledClient(srv.host, srv.port, call_timeout_s=10.0,
                              seed=worker)
            try:
                while not stop.is_set():
                    try:
                        res = cl.query(QUERY_LIVE)
                        row = ("n", res.generation, res.n_results)
                    except DocumentNotFoundError:
                        row = ("absent", None, None)
                    except TIXError as exc:  # pragma: no cover
                        row = ("error", None, type(exc).__name__)
                    with obs_lock:
                        observations.append(row)
                    # the stable document must stay fully intact at
                    # every instant, whatever the mutator is doing
                    base = cl.query(QUERY_BASE)
                    assert base.n_results == 1
                    assert "stable base document" in base.rows[0].xml
            finally:
                cl.close()

        threads = [threading.Thread(target=reader, args=(w,))
                   for w in range(3)]
        mut = threading.Thread(target=mutator)
        for th in threads:
            th.start()
        mut.start()
        mut.join(30.0)
        for th in threads:
            th.join(30.0)
            assert not th.is_alive()
        assert srv.close(drain_s=2.0)

        kinds = {row[0] for row in observations}
        assert "error" not in kinds, observations
        # every successful answer is internally consistent with the
        # generation it was pinned to: the item count matches what the
        # mutator had (atomically) published as that generation
        checked = 0
        for kind, generation, n in observations:
            if kind != "n":
                continue
            if generation in expected and expected[generation] is not None:
                assert n == expected[generation], (
                    generation, n, expected,
                )
                checked += 1
        # and no generation was observed with two different answers
        by_gen = {}
        for kind, generation, n in observations:
            if kind == "n":
                by_gen.setdefault(generation, set()).add(n)
        assert all(len(v) == 1 for v in by_gen.values()), by_gen

    def test_caches_rebuild_exactly_once_per_generation_bump(self):
        store = XMLStore()
        store.load("base.xml", BASE_DOC)
        store.load("live.xml", live_doc(2))
        col = obs.Collector()
        obs.install(col)
        try:
            srv = QueryServer(store, port=0).start()  # rebuild #1
            stop = threading.Event()
            errors = []

            def reader():
                cl = PooledClient(srv.host, srv.port,
                                  call_timeout_s=10.0)
                try:
                    while not stop.is_set():
                        try:
                            cl.query(QUERY_BASE)
                        except (TIXError, OSError) as exc:
                            errors.append(exc)
                            return
                finally:
                    cl.close()

            threads = [threading.Thread(target=reader)
                       for _ in range(2)]
            for th in threads:
                th.start()
            n_mutations = 6
            for step in range(n_mutations):
                if step % 2 == 0:
                    srv.remove_document("live.xml")
                else:
                    srv.add_document("live.xml", live_doc(step))
            stop.set()
            for th in threads:
                th.join(30.0)
                assert not th.is_alive()
            assert srv.close(drain_s=2.0)
            assert not errors
            snap = col.metrics.snapshot()
            # one eager rebuild at start() + one per mutation — reader
            # threads never trigger (or race) a lazy rebuild
            assert snap.get("estimate.catalog_rebuilds") \
                == n_mutations + 1
        finally:
            obs.uninstall()
