"""Guarded execution over the Table-1 synthetic corpus: the acceptance
scenarios for the resource governor.

- a 1 ms deadline (or a 1-row budget) over a real planted-term workload
  terminates promptly with the right error in strict mode;
- in degrade mode the same budgets return partial, correctly-ranked,
  truncated results;
- with no guard installed, the hot-loop hooks are cheap (hoisted
  boolean + strided checks).
"""

import time
from statistics import median

import pytest

from repro.access.termjoin import TermJoin
from repro.core.scoring import WeightedCountScorer
from repro.engine import Sort, TermJoinScan
from repro.errors import (
    QueryTimeoutError,
    ResourceExhaustedError,
)
from repro.resilience import QueryGuard, execute_guarded, guarded
from repro.workload import generate_corpus, table123_spec

SCALE = 0.05


@pytest.fixture(scope="module")
def corpus():
    spec, rows = table123_spec(scale=SCALE, n_articles=600)
    return generate_corpus(spec), rows


def _plan(store, freq):
    terms = [f"qa{freq}", f"qb{freq}"]
    scorer = WeightedCountScorer(terms)
    return Sort(TermJoinScan(store, terms, TermJoin(store, scorer)))


class TestDeadline:
    def test_one_ms_deadline_strict_trips_promptly(self, corpus):
        store, _ = corpus
        store.index  # pre-build: the deadline governs the query, not setup
        guard = QueryGuard(timeout_ms=1.0)
        t0 = time.perf_counter()
        with pytest.raises(QueryTimeoutError, match="deadline"):
            while True:  # spin until the 1 ms deadline is checked
                execute_guarded(_plan(store, 10000), guard)
        elapsed = time.perf_counter() - t0
        # "promptly": well under a second even on a slow machine
        assert elapsed < 1.0

    def test_one_ms_deadline_degrade_returns_result(self, corpus):
        store, _ = corpus
        store.index
        guard = QueryGuard(timeout_ms=1.0, degrade=True)
        deadline = time.perf_counter() + 1.0
        while True:
            res = execute_guarded(_plan(store, 10000), guard)
            if res.truncated or time.perf_counter() > deadline:
                break
        assert res.truncated
        assert isinstance(res.error, QueryTimeoutError)


class TestRowBudget:
    def test_one_row_budget_strict(self, corpus):
        store, _ = corpus
        with pytest.raises(ResourceExhaustedError, match="row budget"):
            execute_guarded(_plan(store, 10000), QueryGuard(max_rows=1))

    def test_degrade_prefix_is_correctly_ranked(self, corpus):
        store, _ = corpus
        full = execute_guarded(_plan(store, 10000), QueryGuard())
        res = execute_guarded(
            _plan(store, 10000), QueryGuard(max_rows=10, degrade=True)
        )
        assert res.truncated and res.n_results == 10
        scores = [t.score for t in res.results]
        assert scores == sorted(scores, reverse=True)
        # the prefix matches the unbudgeted ranking exactly
        assert [(t.root.source, t.score) for t in res.results] == \
            [(t.root.source, t.score) for t in full.results[:10]]

    def test_materialization_budget_over_corpus(self, corpus):
        store, _ = corpus
        from repro.engine import Materialize

        plan = Materialize(
            TermJoinScan(store, ["qa10000"],
                         TermJoin(store, WeightedCountScorer(["qa10000"]))),
            store,
        )
        res = execute_guarded(
            plan, QueryGuard(max_materialized=5, degrade=True)
        )
        assert res.truncated
        assert res.n_results <= 5


class TestDisabledOverhead:
    def test_guard_hooks_cheap_when_disabled(self, corpus):
        """Target: <5% overhead on the Table-1 freq=10000 row with no
        guard installed.  The assertion bound is looser (30%) because CI
        timer noise at these run lengths dwarfs the real delta — the
        strided-check design is what keeps the true cost low."""
        store, _ = corpus
        store.index

        def run_once():
            terms = ["qa10000", "qb10000"]
            tj = TermJoin(store, WeightedCountScorer(terms))
            t0 = time.perf_counter()
            tj.run(terms)
            return time.perf_counter() - t0

        # warm-up, then interleaved samples without/with an active guard
        run_once()
        plain, guarded_times = [], []
        for _ in range(5):
            plain.append(run_once())
            with guarded(QueryGuard(timeout_ms=60_000)):
                guarded_times.append(run_once())
        # sanity only: an *active* guard must not blow up the hot loop
        assert median(guarded_times) < median(plain) * 2.0

        # the disabled-path claim: hooks present vs a guardless baseline
        # cannot be compared in-process (the hooks are compiled in), so
        # assert the strided design property instead — even an *active*
        # guard evaluates the deadline on a small fraction of the loop
        # iterations (1/256 stride), so the disabled path (one hoisted
        # boolean per iteration) is strictly cheaper still.

        class CountingGuard(QueryGuard):
            def __init__(self, **kw):
                super().__init__(**kw)
                self.tick_calls = 0

            def tick(self, n=1):
                self.tick_calls += 1
                super().tick(n)

        g = CountingGuard(timeout_ms=60_000)
        with guarded(g):
            run_once()
        n_postings = (store.index.frequency("qa10000")
                      + store.index.frequency("qb10000"))
        assert g.tick_calls * 64 <= n_postings
