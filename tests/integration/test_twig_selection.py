"""Integration: scored selection over the twig matching backend equals
the backtracking backend, on the example store and random corpora."""

import pytest

from repro.core import scored_selection, tree_from_document
from repro.core.pattern import (
    EdgeType,
    FromLabel,
    PatternNode,
    PhraseScore,
    ScoredPatternTree,
)
from repro.core.scoring import WeightedCountScorer
from repro.core.twigmatch import matcher_for
from repro.exampledata import example_store
from repro.workload import CorpusSpec, generate_corpus


def chapter_pattern():
    p1 = PatternNode("$1", tag="chapter")
    p1.add_child(PatternNode("$2", tag="p"), EdgeType.AD)
    return ScoredPatternTree(p1, scoring={
        "$2": PhraseScore(WeightedCountScorer(["search"], ["retrieval"])),
        "$1": FromLabel("$2"),
    })


class TestExampleStore:
    def test_selection_equal(self):
        store = example_store()
        tree = tree_from_document(store.document("articles.xml"))
        pattern = chapter_pattern()
        plain = [t.sketch() for t in scored_selection([tree], pattern)]
        twig = [
            t.sketch() for t in scored_selection(
                [tree], pattern, matcher=matcher_for(store)
            )
        ]
        assert twig == plain
        assert len(twig) == 3  # three p's under the third chapter

    def test_inapplicable_pattern_falls_back(self):
        from repro.exampledata import query2_pattern

        store = example_store()
        tree = tree_from_document(store.document("articles.xml"))
        pattern = query2_pattern()  # has ad* + untagged node
        plain = [t.sketch() for t in scored_selection([tree], pattern)]
        auto = [
            t.sketch() for t in scored_selection(
                [tree], pattern, matcher=matcher_for(store)
            )
        ]
        assert auto == plain


class TestSyntheticCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(CorpusSpec(
            n_articles=8, planted_terms={"needle": 25}, seed=3,
        ))

    def test_section_pattern_equal_across_documents(self, corpus):
        p1 = PatternNode("$1", tag="section")
        p1.add_child(PatternNode("$2", tag="p"), EdgeType.AD)
        pattern = ScoredPatternTree(p1, scoring={
            "$2": PhraseScore(WeightedCountScorer(["needle"])),
            "$1": FromLabel("$2"),
        })
        matcher = matcher_for(corpus)
        for doc in corpus.documents():
            tree = tree_from_document(doc)
            plain = [t.sketch() for t in scored_selection([tree], pattern)]
            twig = [
                t.sketch() for t in scored_selection(
                    [tree], pattern, matcher=matcher
                )
            ]
            assert twig == plain
