"""End-to-end runs over a varint-compressed inverted index: the whole
stack (query language, NEXI, access methods) must be oblivious to the
index representation."""

import pytest

from repro.exampledata import example_store
from repro.nexi import run_nexi
from repro.query import run_query

QUERY2 = '''
For $a := document("articles.xml")//article[/author/sname/text()="Doe"]/
        descendant-or-self::*
Score $a using ScoreFoo($a, {"search engine"},
        {"internet", "information retrieval"})
Pick $a using PickFoo($a)
Return <result><score>{ $a/@score }</score>{ $a }</result>
Sortby(score)
Threshold $a/@score > 4 stop after 5
'''


@pytest.fixture()
def stores():
    plain = example_store()
    compressed = example_store()
    compressed.enable_index_compression()
    return plain, compressed


class TestCompressedEquivalence:
    def test_query_language(self, stores):
        plain, compressed = stores
        a = [(t.score, t.root.children[1].tag)
             for t in run_query(plain, QUERY2)]
        b = [(t.score, t.root.children[1].tag)
             for t in run_query(compressed, QUERY2)]
        assert a == b

    def test_nexi(self, stores):
        plain, compressed = stores
        topic = '//article//section[about(., "search engine")]'
        a = [(h.node_id, h.score) for h in run_nexi(plain, topic)]
        b = [(h.node_id, h.score) for h in run_nexi(compressed, topic)]
        assert a == b

    def test_compiled_plan(self, stores):
        from repro.query import parse_query
        from repro.query.compiler import run_compiled

        plain, compressed = stores
        q = parse_query('''
            For $a in document("articles.xml")//article/
                    descendant-or-self::*
            Score $a using ScoreFooExact($a, {"search"}, {"retrieval"})
            Return $a
            Sortby(score)
            Threshold $a/@score > 0 stop after 5
        ''')
        a = sorted(t.score for t in run_compiled(plain, q))
        b = sorted(t.score for t in run_compiled(compressed, q))
        assert a == pytest.approx(b)

    def test_compression_actually_on(self, stores):
        from repro.index.compress import CompressedInvertedIndex

        _plain, compressed = stores
        assert isinstance(compressed.index, CompressedInvertedIndex)
        assert compressed.index.compression_ratio() > 1.5

    def test_synthetic_corpus_ratio(self, small_corpus):
        """On a realistic corpus the varint lists shrink considerably."""
        from repro.index.compress import CompressedInvertedIndex

        comp = CompressedInvertedIndex.from_index(small_corpus.index)
        assert comp.compression_ratio() > 3.0
