"""The paper's claim that K-thresholding is expressible with standard
operators (§3.3.1): the grouping expansion must agree with the dedicated
Threshold operator."""

import pytest

from repro.core import scored_selection, tree_from_document
from repro.core.operators import k_threshold_via_grouping, threshold
from repro.exampledata import example_store, query2_pattern


@pytest.fixture()
def witnesses():
    store = example_store()
    tree = tree_from_document(store.document("articles.xml"))
    return scored_selection([tree], query2_pattern())


class TestExpansionEquivalence:
    @pytest.mark.parametrize("k", [1, 3, 5, 10])
    def test_same_score_multiset_without_ties_at_cut(self, witnesses, k):
        via_operator = threshold(witnesses, "$4", top_k=k)
        via_expansion = k_threshold_via_grouping(witnesses, "$4", k)

        def best(tree):
            return max(
                n.score for n in tree.nodes()
                if "$4" in n.labels and n.score is not None
            )

        op_scores = sorted((best(t) for t in via_operator), reverse=True)
        ex_scores = sorted((best(t) for t in via_expansion), reverse=True)
        # The operator keeps rank-k ties (score >= cutoff); the expansion
        # cuts at exactly k members.  The top-k prefix always agrees.
        assert ex_scores == op_scores[: len(ex_scores)]
        assert len(via_expansion) == min(k, len(witnesses))
        assert len(via_operator) >= len(via_expansion)

    def test_expansion_orders_by_best_label_score(self, witnesses):
        out = k_threshold_via_grouping(witnesses, "$4", len(witnesses))

        def best(tree):
            scores = [
                n.score for n in tree.nodes()
                if "$4" in n.labels and n.score is not None
            ]
            return max(scores) if scores else float("-inf")

        values = [best(t) for t in out]
        assert values == sorted(values, reverse=True)

    def test_k_larger_than_collection(self, witnesses):
        out = k_threshold_via_grouping(witnesses, "$4", 999)
        assert len(out) == len(witnesses)
