"""Satellite loadtest coverage for distributed tracing: an 8-client
fleet against a live server yields exactly one trace tree per request
with correct span nesting, and trace-store eviction under pressure
counts ``trace.dropped`` without corrupting retained trees."""

import time

import pytest

from repro import obs
from repro.exampledata import example_store
from repro.obs.tracestore import RetentionPolicy, TraceStore
from repro.server import QueryServer, run_loadtest

QUERIES = [
    'For $x in document("articles.xml")/article/descendant-or-self::* '
    'Score $x using ScoreFooExact($x, {"search"}, {"engine"}) '
    'Return $x Sortby(score)',
    'For $x in document("articles.xml")//section '
    'Score $x using ScoreFoo($x, {"search engine"}, {"internet"}) '
    'Return $x Sortby(score)',
]

TOTAL = 32
CLIENTS = 8


def _quiesce(store, n, timeout_s=5.0):
    """The response hits the wire before the server's ``finally``
    completes the trace; wait for the store to catch up."""
    deadline = time.monotonic() + timeout_s
    while (store.stats()["completed"] < n
           and time.monotonic() < deadline):
        time.sleep(0.01)


@pytest.fixture()
def traced_server():
    col = obs.Collector()
    obs.install(col)
    srv = QueryServer(
        example_store(), port=0, max_inflight=4,
        trace_store=TraceStore(
            capacity=2 * TOTAL,
            policy=RetentionPolicy(slow_ms=0.0),  # retain everything
        ),
    )
    srv.start()
    try:
        yield srv, col
    finally:
        srv.close(drain_s=5.0)
        obs.uninstall()


class TestLoadtestTracing:
    def test_one_trace_tree_per_request(self, traced_server):
        srv, col = traced_server
        report = run_loadtest(
            srv.host, srv.port, QUERIES,
            clients=CLIENTS, total=TOTAL, seed=42,
        )
        assert report.n_transport_errors == 0
        assert report.sent == TOTAL

        # Every outcome carries the trace id the server echoed, and
        # the ids are pairwise distinct — one trace per request.
        ids = [o.trace_id for o in report.outcomes]
        assert all(len(t) == 16 for t in ids)
        assert len(set(ids)) == TOTAL

        store = srv.trace_store
        _quiesce(store, TOTAL)
        st = store.stats()
        assert st["started"] == TOTAL
        assert st["completed"] == TOTAL
        assert st["inflight"] == 0
        assert st["retained"] == TOTAL  # slow_ms=0 retains all
        assert st["dropped"] == 0

        # Each retained trace is a single well-nested tree rooted at
        # the request span.
        for o in report.outcomes:
            trace = store.get(o.trace_id)
            assert trace is not None
            assert trace.completed
            root = trace.root
            assert root is not None
            assert root.name == "server.request"
            assert root.attrs["trace_id"] == o.trace_id
            assert not root.open
            child_names = [c.name for c in root.children]
            assert child_names[0] == "queue.wait"
            assert "gate.pin" in child_names
            # Spans nest inside the root's window.
            def within(span, lo, hi):
                assert lo <= span.start_ns
                assert span.end_ns is not None and span.end_ns <= hi
                for c in span.children:
                    within(c, span.start_ns, span.end_ns)
            for child in root.children:
                within(child, root.start_ns, root.end_ns)
            assert trace.n_spans == root.n_spans()

        # The loadtest report surfaces the slowest ids for follow-up.
        slow = report.slowest_traces()
        assert slow and slow[0]["trace_id"] in set(ids)
        assert slow == sorted(slow, key=lambda t: -t["elapsed_ms"])

        # The request-latency histogram carries trace-id exemplars
        # joinable back to retained traces.
        snap = col.metrics.snapshot()["server.request_ms"]
        assert snap["count"] == TOTAL
        exemplars = snap["exemplars"]
        assert any(store.get(e["trace_id"]) is not None
                   for e in exemplars)

    def test_eviction_under_pressure_counts_dropped(self, traced_server):
        srv, col = traced_server
        srv.trace_store.capacity = 4
        report = run_loadtest(
            srv.host, srv.port, QUERIES,
            clients=CLIENTS, total=TOTAL, seed=7,
        )
        assert report.n_transport_errors == 0
        _quiesce(srv.trace_store, TOTAL)
        st = srv.trace_store.stats()
        assert st["retained"] == 4
        assert st["retained_total"] == TOTAL
        assert st["dropped"] == TOTAL - 4
        assert col.metrics.snapshot()["trace.dropped"] == TOTAL - 4
        # Survivors are intact trees, not torn by concurrent eviction.
        for trace in srv.trace_store.retained():
            assert trace.completed
            assert trace.root is not None
            assert trace.root.name == "server.request"
            assert trace.retained_for == "slow"
        snap = srv.trace_store.snapshot(limit=10)
        assert len(snap["retained"]) == 4
        assert snap["inflight"] == []
