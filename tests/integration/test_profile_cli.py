"""End-to-end tests for ``tix profile`` and ``tix query --analyze``."""

import json

import pytest

from repro.cli import main
from repro.obs.profile import profile_query
from repro.query import parse_query
from repro.query.compiler import compile_query
from repro.xmldb.store import XMLStore

DOC_XML = (
    "<a><b>structured queries here</b>"
    "<c>more queries <d>nested queries</d></c></a>"
)
QUERY = (
    'For $x in document("articles.xml")//a/descendant-or-self::* '
    'Score $x using ScoreFooExact($x, {"queries"}) '
    'Return $x Sortby(score)'
)


@pytest.fixture()
def articles(tmp_path):
    doc = tmp_path / "articles.xml"
    doc.write_text(DOC_XML)
    return doc


def _operator_names(plan):
    yield plan.name
    for child in plan.children:
        for name in _operator_names(child):
            yield name


class TestProfileCLI:
    def test_every_plan_operator_in_output(self, articles, capsys):
        rc = main(["profile", "--doc", f"articles.xml={articles}",
                   "-q", QUERY])
        assert rc == 0
        out = capsys.readouterr().out
        store = XMLStore()
        store.load("articles.xml", articles.read_text())
        plan = compile_query(store, parse_query(QUERY))
        for name in set(_operator_names(plan)):
            assert name in out, f"operator {name} missing from profile"
        assert "EXPLAIN ANALYZE" in out
        assert "time=" in out and "rows=" in out and "loops=" in out
        assert "postings_scanned=" in out     # access-method counter
        assert "phases:" in out and "parse" in out
        assert "store counters" in out
        assert "metrics:" in out

    def test_json_output_machine_readable(self, articles, capsys):
        rc = main(["profile", "--doc", f"articles.xml={articles}",
                   "-q", QUERY, "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["compiled"] is True
        assert doc["n_results"] > 0
        plan = doc["plan"]
        assert plan["rows"] >= 1
        assert plan["time_ms"] >= plan["self_time_ms"] >= 0.0
        # termjoin-scan with its counters is somewhere in the tree
        def find(node, name):
            if node["operator"] == name:
                return node
            for c in node["children"]:
                hit = find(c, name)
                if hit:
                    return hit
            return None
        scan = find(plan, "termjoin-scan")
        assert scan is not None
        assert scan["counters"]["postings_scanned"] > 0
        assert doc["trace"]["n_spans"] > 0
        assert any(k.startswith("index.") for k in doc["metrics"])

    def test_trace_out_writes_chrome_trace(self, articles, tmp_path,
                                           capsys):
        trace = tmp_path / "trace.json"
        rc = main(["profile", "--doc", f"articles.xml={articles}",
                   "-q", QUERY, "--trace-out", str(trace)])
        assert rc == 0
        events = json.loads(trace.read_text())["traceEvents"]
        assert events
        names = {e["name"] for e in events}
        assert "query" in names
        assert any(n.startswith("open:") for n in names)

    def test_evaluator_fallback(self, articles, capsys):
        # No Score clause: the query is outside the compilable shape.
        rc = main(["profile", "--doc", f"articles.xml={articles}",
                   "-q",
                   'For $x in document("articles.xml")//b Return $x'])
        assert rc == 0
        out = capsys.readouterr().out
        assert "evaluator fallback" in out
        assert "parse" in out

    def test_query_analyze_flag(self, articles, capsys):
        rc = main(["query", "--doc", f"articles.xml={articles}",
                   "-q", QUERY, "--analyze"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "results" in out              # normal query output first
        assert "time=" in out and "loops=" in out


class TestProfileQueryAPI:
    def test_recorder_restored_and_report_complete(self, articles):
        from repro import obs

        store = XMLStore()
        store.load("articles.xml", articles.read_text())
        before = obs.RECORDER
        report = profile_query(store, QUERY)
        assert obs.RECORDER is before        # collector uninstalled
        assert report.compiled
        assert report.n_results > 0
        assert report.store_counters         # deltas, not absolutes
        d = report.to_dict()
        json.dumps(d)                        # fully serializable
        assert d["plan"]["counters"] == {} or d["plan"]["counters"]
