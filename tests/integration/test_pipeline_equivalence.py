"""Cross-layer equivalence: engine plans vs algebra operators vs query
evaluator vs compiled plans, on the example store and a synthetic
corpus."""

import pytest

from repro.access.termjoin import TermJoin
from repro.core import scored_projection, scored_selection, tree_from_document
from repro.core.operators import pick as algebra_pick
from repro.core.scoring import WeightedCountScorer
from repro.engine import (
    DocumentSource,
    PickOp,
    Project,
    Select,
    Sort,
    TermJoinScan,
    execute,
)
from repro.exampledata import (
    example_store,
    pickfoo_criterion,
    query2_pattern,
)
from repro.query import parse_query, run_query
from repro.query.compiler import run_compiled
from repro.workload import CorpusSpec, generate_corpus


@pytest.fixture(scope="module")
def store():
    return example_store()


class TestEngineVsAlgebra:
    def test_select(self, store):
        pat = query2_pattern()
        tree = tree_from_document(store.document("articles.xml"))
        algebra = [t.sketch() for t in scored_selection([tree], pat)]
        engine = [
            t.sketch()
            for t in execute(Select(DocumentSource(store, "articles.xml"),
                                    pat))
        ]
        assert engine == algebra

    def test_project_pick_chain(self, store):
        pat = query2_pattern()
        tree = tree_from_document(store.document("articles.xml"))
        algebra = algebra_pick(
            scored_projection([tree], pat, ["$1", "$3", "$4"]),
            "$4", pickfoo_criterion(), pattern=pat,
        )
        engine = execute(PickOp(
            Project(DocumentSource(store, "articles.xml"), pat,
                    ["$1", "$3", "$4"]),
            "$4", pickfoo_criterion(), pat,
        ))
        assert [t.sketch() for t in engine] == \
            [t.sketch() for t in algebra]


class TestCompiledVsEvaluator:
    QUERY = '''
    For $a in document("articles.xml")//article/descendant-or-self::*
    Score $a using ScoreFooExact($a, {"search"}, {"retrieval"})
    Return <r><score>{ $a/@score }</score>{ $a }</r>
    Sortby(score)
    Threshold $a/@score > 0.5 stop after 6
    '''

    def test_same_scores(self, store):
        ev = sorted(t.score for t in run_query(store, self.QUERY))
        comp = sorted(
            t.score for t in run_compiled(store, parse_query(self.QUERY))
        )
        assert comp == pytest.approx(ev)

    def test_same_elements(self, store):
        ev = run_query(store, self.QUERY)
        ev_tags = sorted(t.root.children[1].tag for t in ev)
        comp = run_compiled(store, parse_query(self.QUERY))
        comp_tags = sorted(t.root.tag for t in comp)
        assert comp_tags == ev_tags


class TestSyntheticCorpusEndToEnd:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(CorpusSpec(
            n_articles=6,
            planted_terms={"needle": 30, "haystack": 12},
            seed=21,
        ))

    def test_termjoin_pipeline_ranks_planted_terms(self, corpus):
        scorer = WeightedCountScorer(["needle"], ["haystack"])
        plan = Sort(TermJoinScan(
            corpus, ["needle", "haystack"], TermJoin(corpus, scorer)
        ))
        out = execute(plan)
        assert out, "planted terms must be found"
        scores = [t.score for t in out]
        assert scores == sorted(scores, reverse=True)
        # the best-scoring element contains at least one needle
        best = out[0]
        doc = corpus.document(best.root.source[0])
        assert "needle" in doc.subtree_words(best.root.source[1])

    def test_query_language_on_synthetic_corpus(self, corpus):
        name = corpus.document(0).name
        out = run_query(corpus, f'''
            For $a in document("{name}")//article/descendant-or-self::*
            Score $a using ScoreFooExact($a, {{"needle"}})
            Return <r><score>{{ $a/@score }}</score></r>
            Sortby(score)
            Threshold $a/@score > 0 stop after 3
        ''')
        assert len(out) <= 3
        for t in out:
            assert t.score > 0
