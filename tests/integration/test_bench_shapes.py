"""Shape assertions on the benchmark harness at tiny scale: the paper's
qualitative results must hold even on a small corpus (who wins, what is
flat, what is linear).  Absolute times are never asserted."""

import pytest

from repro.bench import (
    run_pick_experiment,
    run_table1,
    run_table2,
    run_table4,
    run_table5,
)
from repro.workload import (
    generate_corpus,
    table123_spec,
    table4_spec,
    table5_spec,
)

SCALE = 0.05


@pytest.fixture(scope="module")
def store123():
    spec, rows = table123_spec(scale=SCALE, n_articles=600)
    return generate_corpus(spec), rows


class TestTable1Shape:
    @pytest.fixture(scope="class")
    def result(self, store123):
        store, rows = store123
        # a 4-point sweep is enough for shape checks
        sweep = [rows["table1"][i] for i in (0, 4, 7, 10)]
        return run_table1(store, sweep, runs=3)

    def test_termjoin_wins_at_high_frequency(self, result):
        last = result.rows[-1]
        freq, comp1, comp2, meet, termjoin = last
        # At this tiny scale constant factors dominate the TermJoin vs
        # Generalized Meet margin, so only a loose bound is asserted
        # here; the full-scale benchmarks show the paper's ~2-4× gap.
        assert termjoin <= meet * 2.0
        assert termjoin < comp1
        assert termjoin < comp2

    def test_comp2_flat_comp1_grows(self, result):
        comp1 = result.column("Comp1")
        comp2 = result.column("Comp2")
        # Comp1 grows by a large factor over the sweep; Comp2 much less.
        comp1_growth = comp1[-1] / max(comp1[0], 1e-9)
        comp2_growth = comp2[-1] / max(comp2[0], 1e-9)
        assert comp1_growth > comp2_growth

    def test_comp2_dominates_at_low_frequency(self, result):
        first = result.rows[0]
        _freq, comp1, comp2, _meet, termjoin = first
        assert comp2 > comp1
        assert comp2 > termjoin * 5


class TestTable2Shape:
    def test_enhanced_beats_base_termjoin(self, store123):
        store, rows = store123
        sweep = [rows["table1"][i] for i in (7, 10)]
        # full 5-run trim: the 2-3x margin is real but single samples
        # are noisy enough to flake under load
        result = run_table2(store, sweep, runs=5)
        for row in result.rows:
            termjoin = row[result.columns.index("TermJoin")]
            enhanced = row[result.columns.index("EnhTermJoin")]
            assert enhanced < termjoin


class TestTable4Shape:
    def test_costs_grow_with_phrase_size(self):
        spec, rows = table4_spec(scale=SCALE)
        store = generate_corpus(spec)
        result = run_table4(store, [rows[0], rows[-1]], runs=3)
        tj = result.column("TermJoin")
        assert tj[-1] > tj[0]  # 7 terms cost more than 2
        last = result.rows[-1]
        termjoin = last[result.columns.index("TermJoin")]
        comp2 = last[result.columns.index("Comp2")]
        assert termjoin < comp2


class TestTable5Shape:
    def test_phrasefinder_beats_comp3(self):
        spec, rows = table5_spec(scale=0.02)
        store = generate_corpus(spec)
        result = run_table5(store, rows, runs=3)
        wins = sum(
            1 for row in result.rows
            if row[result.columns.index("PhraseFinder")]
            < row[result.columns.index("Comp3")]
        )
        # PhraseFinder wins on (nearly) every query, as in the paper
        assert wins >= len(result.rows) - 1

    def test_result_sizes_reported(self):
        spec, rows = table5_spec(scale=0.02)
        store = generate_corpus(spec)
        result = run_table5(store, rows[:3], runs=1)
        for row in result.rows:
            assert row[result.columns.index("result")] > 0


class TestPickShape:
    def test_near_linear_scaling(self):
        result = run_pick_experiment(sizes=[500, 4000, 16000], runs=3)
        times = result.column("seconds")
        # 32× more nodes should cost far less than 320× the time
        # (linear would be 32×; allow generous constant noise)
        assert times[-1] / max(times[0], 1e-9) < 150
        assert times == sorted(times)

    def test_picked_counts_scale(self):
        result = run_pick_experiment(sizes=[500, 4000], runs=1)
        picked = result.column("picked")
        assert 0 < picked[0] < picked[1]
