"""Smoke tests: every example script runs to completion and prints what
its docstring promises."""

import runpy
import sys

import pytest

EXAMPLES = [
    ("examples/quickstart.py", ["ranked hits", "TermJoin's best element"]),
    ("examples/paper_walkthrough.py",
     ["Figure 6", "Figure 8", "chapter", "2.8"]),
    ("examples/literature_search.py",
     ["physical plan", "top 5 elements", "logical I/O", "Pick"]),
    ("examples/similarity_join.py",
     ["extended XQuery front end", "algebra", "trail running shoes"]),
    ("examples/inex_topics.py",
     ["CO topic", "CAS", "granularities retrieved"]),
]


@pytest.mark.parametrize("path,expected", EXAMPLES,
                         ids=[p for p, _e in EXAMPLES])
def test_example_runs(path, expected, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    for needle in expected:
        assert needle in out, f"{path} output missing {needle!r}"
