"""Differential tests: independent implementations must agree exactly.

On seeded random corpora (multi-document, deterministic per seed) the
paper's redundant access paths are run against each other — TermJoin
against the Comp1/Comp2 composites and PhraseFinder against Comp3 — for
both the simple (weighted-count) and complex (proximity) scoring
functions.  Unlike the hypothesis property suite, these corpora are
fixed, multi-document, and larger, so a regression reproduces under the
same seed every time.
"""

import random

import pytest

from repro.access.composite import Comp1, Comp2, Comp3
from repro.access.phrasefinder import PhraseFinder
from repro.access.termjoin import EnhancedTermJoin, TermJoin
from repro.core.scoring import ProximityScorer, WeightedCountScorer
from repro.xmldb.store import XMLStore

from tests.conftest import build_random_document

pytestmark = pytest.mark.differential

SEEDS = [7, 21, 99, 1234]
TERMS = ["red", "green"]


def seeded_store(seed: int, n_docs: int = 3,
                 n_elements: int = 60) -> XMLStore:
    rng = random.Random(seed)
    store = XMLStore()
    for d in range(n_docs):
        store.add_document(build_random_document(
            rng, n_elements, doc_id=d, name=f"diff{d}.xml"
        ))
    return store


def by_node(results):
    return {(r.doc_id, r.node_id): r.score for r in results}


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("complex_scoring", [False, True],
                         ids=["simple", "complex"])
def test_termjoin_equals_composites(seed, complex_scoring):
    store = seeded_store(seed)
    scorer = (
        ProximityScorer(TERMS) if complex_scoring
        else WeightedCountScorer([TERMS[0]], TERMS[1:])
    )
    reference = by_node(
        TermJoin(store, scorer, complex_scoring).run(list(TERMS))
    )
    assert reference, "seeded corpus must contain the terms"
    rivals = {
        "Comp1": Comp1(store, scorer, complex_scoring),
        "Comp2": Comp2(store, scorer, complex_scoring),
        "EnhTermJoin": EnhancedTermJoin(store, scorer, complex_scoring),
    }
    for name, method in rivals.items():
        got = by_node(method.run(list(TERMS)))
        assert got.keys() == reference.keys(), name
        for key in reference:
            assert got[key] == pytest.approx(reference[key]), (name, key)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("phrase", [["red", "green"], ["blue"]],
                         ids=["two-word", "one-word"])
def test_phrasefinder_equals_comp3(seed, phrase):
    store = seeded_store(seed)
    pf = [(m.doc_id, m.node_id, m.count)
          for m in PhraseFinder(store).run(phrase)]
    c3 = [(m.doc_id, m.node_id, m.count)
          for m in Comp3(store).run(phrase)]
    assert pf == c3  # identity, order included


@pytest.mark.parametrize("seed", SEEDS)
def test_equivalences_hold_on_compressed_index(seed):
    """The same agreements must hold when the store serves postings from
    the varint-compressed index (decode path instead of plain lists)."""
    plain = seeded_store(seed)
    compressed = seeded_store(seed)
    compressed.enable_index_compression()
    scorer = WeightedCountScorer([TERMS[0]], TERMS[1:])
    a = by_node(TermJoin(plain, scorer).run(list(TERMS)))
    b = by_node(TermJoin(compressed, scorer).run(list(TERMS)))
    assert a.keys() == b.keys()
    for key in a:
        assert a[key] == pytest.approx(b[key])
