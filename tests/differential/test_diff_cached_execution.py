"""Differential tests: cached execution ≡ uncached execution.

Every :class:`repro.perf.querycache.QueryCache` answer — cold, warm
from the plan cache, warm from the result cache — must be
indistinguishable from an uncached run of the same dispatch
(:func:`run_query_guarded` with a null guard): same scores, same source
node ids, same serialized trees, same order.  Checked over seeded
random corpora, for the compilable pipeline path (``ScoreFooExact``)
and the evaluator fallback (``ScoreFoo`` has no compiler lowering), and
with the postings LRU / compressed index both on and off underneath.
"""

import random

import pytest

from repro.perf import QueryCache
from repro.resilience import NullGuard, run_query_guarded
from repro.xmldb.store import XMLStore

from tests.conftest import build_random_document

pytestmark = pytest.mark.differential

SEEDS = [7, 21, 99]


def seeded_store(seed: int, *, compress: bool = False,
                 postings_cache: bool = False) -> XMLStore:
    rng = random.Random(seed)
    store = XMLStore()
    for d in range(3):
        store.add_document(build_random_document(
            rng, 60, doc_id=d, name=f"diff{d}.xml"
        ))
    if compress:
        store.enable_index_compression()
    if postings_cache:
        store.enable_postings_cache(capacity=10_000)
    return store


def compilable_query(doc: str = "diff0.xml") -> str:
    return (
        f'For $x in document("{doc}")//root/descendant-or-self::* '
        'Score $x using ScoreFooExact($x, {"red"}, {"green"}) '
        "Return $x Sortby(score)"
    )


def evaluator_query(doc: str = "diff0.xml") -> str:
    # ScoreFoo has no register_score_factory lowering, so this takes the
    # reference-evaluator path in both the cache and the uncached run.
    return (
        f'For $x in document("{doc}")//root/descendant-or-self::* '
        'Score $x using ScoreFoo($x, {"red"}, {"green"}) '
        "Return $x Sortby(score)"
    )


def fingerprint(results):
    """Order-preserving identity: score, source node id, full tree."""
    return [
        (t.score, getattr(t.root, "source", None),
         t.to_xml(with_scores=True))
        for t in results
    ]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("query_fn", [compilable_query, evaluator_query],
                         ids=["compiled", "evaluator"])
@pytest.mark.parametrize("compress,postings_cache",
                         [(False, False), (True, False),
                          (False, True), (True, True)],
                         ids=["plain", "compressed", "lru", "lru+compressed"])
def test_cached_equals_uncached(seed, query_fn, compress, postings_cache):
    source = query_fn()
    uncached_store = seeded_store(seed)
    reference = fingerprint(
        run_query_guarded(uncached_store, source, NullGuard()).results
    )

    store = seeded_store(seed, compress=compress,
                         postings_cache=postings_cache)
    cache = QueryCache(store)
    cold = fingerprint(cache.run_query(source))       # fills both tiers
    warm = fingerprint(cache.run_query(source))       # result-cache hit
    assert cold == reference
    assert warm == reference

    plan_only = QueryCache(store, results=False)
    plan_only.run_query(source)
    plan_warm = fingerprint(plan_only.run_query(source))  # plan reuse
    assert plan_warm == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_normalized_spellings_share_results(seed):
    """Whitespace-different spellings of one query normalize to one cache
    entry and return the same answer as their uncached runs."""
    store = seeded_store(seed)
    cache = QueryCache(store)
    q1 = compilable_query()
    q2 = q1.replace(" Score", "\n   Score").replace(" Return", "\n Return")
    a = fingerprint(cache.run_query(q1))
    b = fingerprint(cache.run_query(q2))
    assert a == b
    assert len(cache.results._lru) == 1  # one normalized entry
    uncached = fingerprint(
        run_query_guarded(seeded_store(seed), q2, NullGuard()).results
    )
    assert b == uncached
