"""Differential tests: the cost-based planner never changes answers.

For every query in the corpus the planner-chosen plan is executed, then
every *legal forced alternative* at every decision point (``--force-op``
semantics, via ``force_ops=``) and the heuristic planner are executed
over the same store — all must return the same rows with the same rank
order.  Tie order *within* equal scores is operator-specific (TermJoin
streams in pop order, the composites sort by (doc, node)), so rows are
compared as a canonical multiset of ``(source, score)`` and rank order
as the full score sequence.

Two store shapes are covered: seeded random multi-document corpora
(tie-heavy, deep nesting) and the single-document many-``<article>``
store from ``tix bench planner`` (many regions — the shape where the
bisect structural filter wins and the planner actually flips a
decision).
"""

import random

import pytest

from repro.bench.plannerbench import build_planner_store
from repro.engine.base import execute
from repro.query import parse_query
from repro.query.compiler import compile_query
from repro.xmldb.store import XMLStore

from tests.conftest import build_random_document

pytestmark = pytest.mark.differential

SEEDS = [7, 1234]

RANDOM_QUERIES = [
    ("terms+sort", '''
For $x in document("diff.xml")//a/descendant-or-self::*
Score $x using ScoreFooExact($x, {"red"}, {"green"})
Return $x
Sortby(score)
'''),
    ("terms+threshold", '''
For $x in document("diff.xml")//a/descendant-or-self::*
Score $x using ScoreFooExact($x, {"red"}, {"blue"})
Return $x
Sortby(score)
Threshold $x/@score > 0
'''),
    ("phrase+sort", '''
For $x in document("diff.xml")//a/descendant-or-self::*
Score $x using ScoreFooExact($x, {"red green"})
Return $x
Sortby(score)
'''),
]

PLANNER_STORE_QUERIES = [
    ("many-regions+sort", '''
For $a in document("lib.xml")//article/descendant-or-self::*
Score $a using ScoreFooExact($a, {"planted"}, {"paper"})
Return $a
Sortby(score)
'''),
    ("many-regions+top10", '''
For $a in document("lib.xml")//article/descendant-or-self::*
Score $a using ScoreFooExact($a, {"planted"}, {"paper"})
Return $a
Sortby(score)
Threshold $a/@score > 0 stop after 10
'''),
]


def seeded_store(seed: int) -> XMLStore:
    rng = random.Random(seed)
    store = XMLStore()
    store.add_document(
        build_random_document(rng, 120, doc_id=0, name="diff.xml")
    )
    return store


def canonical(results):
    """Order-free row identity: multiset of (origin node, score)."""
    return sorted((t.root.source, t.score) for t in results)


def ranks(results):
    """Rank order: the emitted score sequence."""
    return [t.score for t in results]


def assert_equivalent(store, query, label):
    baseline_plan = compile_query(store, query, planner="cost")
    baseline = execute(baseline_plan)
    assert baseline, f"{label}: corpus must produce rows"
    base_rows, base_ranks = canonical(baseline), ranks(baseline)

    choices = baseline_plan.planner_choices
    assert choices is not None and choices.choices, \
        f"{label}: planner recorded no decisions"

    tried = 0
    for point, choice in sorted(choices.choices.items()):
        for alt in choice.alternatives:
            if alt.op == choice.chosen:
                continue
            forced = compile_query(store, query,
                                   force_ops={point: alt.op})
            assert forced.planner_choices.chosen(point) == alt.op
            rows = execute(forced)
            assert canonical(rows) == base_rows, \
                f"{label}: {point}={alt.op} changed the row set"
            assert ranks(rows) == base_ranks, \
                f"{label}: {point}={alt.op} changed the rank order"
            tried += 1
    assert tried >= 1, f"{label}: no alternatives exercised"

    heuristic = execute(compile_query(store, query, planner="heuristic"))
    assert canonical(heuristic) == base_rows
    assert ranks(heuristic) == base_ranks


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(("label", "text"), RANDOM_QUERIES,
                         ids=[q[0] for q in RANDOM_QUERIES])
def test_forced_alternatives_agree_on_random_corpus(seed, label, text):
    store = seeded_store(seed)
    assert_equivalent(store, parse_query(text), f"{label}[seed={seed}]")


@pytest.mark.parametrize(("label", "text"), PLANNER_STORE_QUERIES,
                         ids=[q[0] for q in PLANNER_STORE_QUERIES])
def test_forced_alternatives_agree_on_many_region_store(label, text):
    store = build_planner_store(n_articles=60)
    assert_equivalent(store, parse_query(text), label)


def test_planner_flips_filter_on_many_region_store():
    """The acceptance-criteria flip: with many sibling regions the
    cost-based planner picks the bisect structural filter where the
    heuristic default is linear — and the answer stays identical (the
    equivalence tests above)."""
    store = build_planner_store(n_articles=60)
    query = parse_query(PLANNER_STORE_QUERIES[0][1])
    cost_plan = compile_query(store, query, planner="cost")
    choice = cost_plan.planner_choices.choices["filter"]
    assert choice.chosen == "bisect"
    assert choice.flipped
    heur_plan = compile_query(store, query, planner="heuristic")
    assert heur_plan.planner_choices.choices["filter"].chosen == "linear"
