"""Exception hierarchy for the TIX reproduction.

Every error raised by the library derives from :class:`TIXError`, so callers
can catch a single base class at API boundaries.
"""

from __future__ import annotations


class TIXError(Exception):
    """Base class for all library errors."""


class XMLParseError(TIXError):
    """Raised when the XML parser encounters malformed input.

    Carries the (1-based) line and column of the offending position when
    known, so error messages point at the exact spot in the source text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DocumentNotFoundError(TIXError):
    """Raised when a store lookup names a document that was never loaded."""


class UnknownTermError(TIXError):
    """Raised when an index lookup is asked for a term with no postings and
    the caller requested strict behaviour."""


class PatternError(TIXError):
    """Raised for malformed scored pattern trees (bad edges, unknown labels,
    scoring functions referencing nodes that do not exist)."""


class QuerySyntaxError(TIXError):
    """Raised by the extended-XQuery front end on syntax errors."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class QueryCompileError(TIXError):
    """Raised when a parsed query cannot be translated to a plan
    (unknown function, unbound variable, unsupported construct)."""


class PlannerHintError(QueryCompileError):
    """Raised when a planner hint (``--force-op NAME=OP``) is malformed,
    names an unknown decision point, or forces an operator whose
    declared preconditions the query violates.  A subclass of
    :class:`QueryCompileError` so generic compile handling still
    applies, but evaluator-fallback paths re-raise it — a bad hint must
    surface, not silently change execution strategy."""


class PlanError(TIXError):
    """Raised when a physical plan is malformed or an operator is driven
    outside its open/next/close protocol."""


class QueryAbortedError(TIXError):
    """Base class for guard-initiated query termination (deadline, budget,
    cancellation).  Catch this to handle "the query did not run to
    completion" uniformly; the subclasses say why."""


class QueryTimeoutError(QueryAbortedError):
    """Raised when a query exceeds its :class:`~repro.resilience.QueryGuard`
    wall-clock deadline."""


class ResourceExhaustedError(QueryAbortedError):
    """Raised when a query exceeds a guard resource budget (output rows,
    materialized subtrees)."""


class QueryCancelledError(QueryAbortedError):
    """Raised when a query's cooperative
    :class:`~repro.resilience.CancellationToken` is cancelled."""


class ServerError(TIXError):
    """Base class for the query-serving layer (wire protocol, admission
    control, client pool).  Catch this to handle "the server could not
    run the query" uniformly; the subclasses say why."""


class ProtocolError(ServerError):
    """Raised on a malformed wire frame: torn length prefix, body that
    is not a JSON object, oversized frame, or unsupported protocol
    version."""


class OverloadedError(ServerError):
    """Raised when admission control rejects a request because the
    server is at ``max_inflight`` and the request waited longer than the
    queue timeout.  Clients should back off (with jitter) and retry."""


class ShuttingDownError(ServerError):
    """Raised when a request arrives while the server is draining for
    shutdown.  In-flight requests are answered; new work is refused."""


class CircuitOpenError(ServerError):
    """Raised by the pooled client when its circuit breaker is open:
    consecutive connect failures exceeded the threshold, so calls fail
    fast until the cooldown elapses."""


class PersistError(TIXError):
    """Raised by store persistence on any I/O, format, or integrity
    failure.  Wraps raw ``OSError``/``json.JSONDecodeError``/``KeyError``
    so callers see one exception type; ``path`` names the offending file
    when known (also embedded in the message)."""

    def __init__(self, message: str, path: str = ""):
        self.path = path
        super().__init__(message)
