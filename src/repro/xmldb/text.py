"""Text tokenization shared by the parser, the inverted index, and scoring.

The tokenizer is deliberately simple and deterministic: terms are maximal
runs of ASCII letters and digits, lowercased.  Everything else (punctuation,
whitespace, unicode symbols) is a separator.  Both the index build and the
query side must use the same function, so it lives here in one place.
"""

from __future__ import annotations

import re
from typing import List, Tuple

_TERM_RE = re.compile(r"[A-Za-z0-9]+")

#: Characters XML requires to be escaped in text content.
_XML_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_XML_ATTR_ESCAPES = {**_XML_ESCAPES, '"': "&quot;"}


def tokenize_text(text: str) -> List[str]:
    """Split ``text`` into lowercase terms.

    >>> tokenize_text("Search Engine basics, 2nd ed.")
    ['search', 'engine', 'basics', '2nd', 'ed']
    """
    return [m.group(0).lower() for m in _TERM_RE.finditer(text)]


def tokenize_with_spans(text: str) -> List[Tuple[str, int, int]]:
    """Like :func:`tokenize_text` but returns ``(term, start, end)`` character
    spans, used by tests that check offset bookkeeping."""
    return [(m.group(0).lower(), m.start(), m.end())
            for m in _TERM_RE.finditer(text)]


def tokenize_phrase(phrase: str) -> List[str]:
    """Tokenize a query phrase.  Identical to document tokenization so that
    a phrase matches itself when planted in a document."""
    return tokenize_text(phrase)


def escape_text(text: str) -> str:
    """Escape text content for XML serialization."""
    return "".join(_XML_ESCAPES.get(c, c) for c in text)


def escape_attr(value: str) -> str:
    """Escape an attribute value for XML serialization (double-quoted)."""
    return "".join(_XML_ATTR_ESCAPES.get(c, c) for c in value)
