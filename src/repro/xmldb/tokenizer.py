"""A from-scratch XML tokenizer.

Covers the subset of XML the reproduction needs: elements with attributes,
text with the five predefined entities plus numeric character references,
comments, CDATA sections, processing instructions, and an optional XML
declaration and DOCTYPE (both skipped).  Namespaces are passed through as
plain tag names (``ns:tag``).

The tokenizer yields a flat stream of tokens; :mod:`repro.xmldb.parser`
turns the stream into a :class:`~repro.xmldb.document.Document` via the
shared :class:`~repro.xmldb.builder.DocumentBuilder`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, Iterator, Optional

from repro.errors import XMLParseError

_NAME_RE = re.compile(r"[A-Za-z_:][A-Za-z0-9_.\-:]*")
_WS_RE = re.compile(r"[ \t\r\n]+")
_ENTITY_RE = re.compile(r"&(#x?[0-9A-Fa-f]+|[A-Za-z]+);")

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


class TokenType(Enum):
    """Kinds of tokens produced by :class:`XMLTokenizer`."""

    START_TAG = auto()   # value = (tag, attrs, self_closing)
    END_TAG = auto()     # value = tag
    TEXT = auto()        # value = decoded text
    EOF = auto()


@dataclass
class Token:
    """One token with its source location (1-based line/column)."""

    type: TokenType
    value: object
    line: int
    column: int


def decode_entities(raw: str, line: int = 0, column: int = 0) -> str:
    """Replace predefined entities and character references in ``raw``."""

    def repl(m: "re.Match[str]") -> str:
        body = m.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        try:
            return _PREDEFINED_ENTITIES[body]
        except KeyError:
            raise XMLParseError(
                f"unknown entity &{body};", line, column) from None

    return _ENTITY_RE.sub(repl, raw)


class XMLTokenizer:
    """Single-pass tokenizer over an XML source string."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 1

    # ------------------------------------------------------------------
    # Low-level cursor helpers
    # ------------------------------------------------------------------

    def _advance(self, n: int) -> None:
        chunk = self.source[self.pos: self.pos + n]
        newlines = chunk.count("\n")
        if newlines:
            self.line += newlines
            self.col = n - chunk.rfind("\n")
        else:
            self.col += n
        self.pos += n

    def _error(self, message: str) -> XMLParseError:
        return XMLParseError(message, self.line, self.col)

    def _expect(self, literal: str) -> None:
        if not self.source.startswith(literal, self.pos):
            raise self._error(f"expected {literal!r}")
        self._advance(len(literal))

    def _skip_until(self, terminator: str, what: str) -> None:
        end = self.source.find(terminator, self.pos)
        if end < 0:
            raise self._error(f"unterminated {what}")
        self._advance(end - self.pos + len(terminator))

    def _skip_ws(self) -> None:
        m = _WS_RE.match(self.source, self.pos)
        if m:
            self._advance(m.end() - m.start())

    def _read_name(self) -> str:
        m = _NAME_RE.match(self.source, self.pos)
        if not m:
            raise self._error("expected a name")
        self._advance(m.end() - m.start())
        return m.group(0)

    # ------------------------------------------------------------------
    # Token production
    # ------------------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield tokens until EOF.  Inter-token whitespace outside the root
        element is emitted as TEXT and filtered by the parser."""
        src = self.source
        n = len(src)
        while self.pos < n:
            line, col = self.line, self.col
            if src[self.pos] == "<":
                tok = self._read_markup(line, col)
                if tok is not None:
                    yield tok
            else:
                end = src.find("<", self.pos)
                if end < 0:
                    end = n
                raw = src[self.pos: end]
                self._advance(end - self.pos)
                yield Token(TokenType.TEXT,
                            decode_entities(raw, line, col), line, col)
        yield Token(TokenType.EOF, None, self.line, self.col)

    def _read_markup(self, line: int, col: int) -> Optional[Token]:
        src = self.source
        if src.startswith("<!--", self.pos):
            self._advance(4)
            self._skip_until("-->", "comment")
            return None
        if src.startswith("<![CDATA[", self.pos):
            self._advance(9)
            end = src.find("]]>", self.pos)
            if end < 0:
                raise self._error("unterminated CDATA section")
            raw = src[self.pos: end]
            self._advance(end - self.pos + 3)
            return Token(TokenType.TEXT, raw, line, col)
        if src.startswith("<!DOCTYPE", self.pos):
            # Skip to the matching '>' (internal subsets in brackets too).
            depth = 0
            i = self.pos
            while i < len(src):
                c = src[i]
                if c == "[":
                    depth += 1
                elif c == "]":
                    depth -= 1
                elif c == ">" and depth <= 0:
                    self._advance(i - self.pos + 1)
                    return None
                i += 1
            raise self._error("unterminated DOCTYPE")
        if src.startswith("<?", self.pos):
            self._advance(2)
            self._skip_until("?>", "processing instruction")
            return None
        if src.startswith("</", self.pos):
            self._advance(2)
            tag = self._read_name()
            self._skip_ws()
            self._expect(">")
            return Token(TokenType.END_TAG, tag, line, col)
        # Start tag
        self._expect("<")
        tag = self._read_name()
        attrs = self._read_attributes()
        self._skip_ws()
        self_closing = False
        if src.startswith("/>", self.pos):
            self._advance(2)
            self_closing = True
        else:
            self._expect(">")
        return Token(TokenType.START_TAG, (tag, attrs, self_closing),
                     line, col)

    def _read_attributes(self) -> Dict[str, str]:
        attrs: Dict[str, str] = {}
        while True:
            self._skip_ws()
            if self.pos >= len(self.source):
                raise self._error("unterminated start tag")
            c = self.source[self.pos]
            if c in (">", "/"):
                return attrs
            line, col = self.line, self.col
            name = self._read_name()
            self._skip_ws()
            self._expect("=")
            self._skip_ws()
            value = self._read_attr_value()
            if name in attrs:
                raise XMLParseError(f"duplicate attribute {name!r}", line, col)
            attrs[name] = value

    def _read_attr_value(self) -> str:
        if self.pos >= len(self.source):
            raise self._error("unterminated attribute value")
        quote = self.source[self.pos]
        if quote not in ("'", '"'):
            raise self._error("attribute value must be quoted")
        line, col = self.line, self.col
        self._advance(1)
        end = self.source.find(quote, self.pos)
        if end < 0:
            raise self._error("unterminated attribute value")
        raw = self.source[self.pos: end]
        self._advance(end - self.pos + 1)
        if "<" in raw:
            raise XMLParseError(
                "'<' not allowed in attribute value", line, col)
        return decode_entities(raw, line, col)
