"""XML storage substrate: data model, parser, documents, store, statistics.

This package is the "database" underneath the TIX algebra.  It provides:

- a region-encoded node model (:mod:`repro.xmldb.model`): every element gets
  ``(start, end, level)`` keys drawn from a single document-order counter
  that words also consume, so term positions nest inside element regions
  exactly as the structural-join literature assumes;
- a from-scratch XML tokenizer and parser (:mod:`repro.xmldb.tokenizer`,
  :mod:`repro.xmldb.parser`);
- an in-memory columnar :class:`~repro.xmldb.document.Document` with
  navigation primitives (parent, children, ancestors, descendants, subtree
  text) and serialization;
- a programmatic :class:`~repro.xmldb.builder.DocumentBuilder` used by the
  synthetic-workload generator and by tests;
- a multi-document :class:`~repro.xmldb.store.XMLStore` catalog with
  derived statistics (:mod:`repro.xmldb.stats`).
"""

from repro.xmldb.document import Document, NodeRecord, WordOccurrence
from repro.xmldb.builder import DocumentBuilder
from repro.xmldb.parser import parse_document, parse_fragment
from repro.xmldb.store import XMLStore
from repro.xmldb.text import tokenize_text

__all__ = [
    "Document",
    "NodeRecord",
    "WordOccurrence",
    "DocumentBuilder",
    "parse_document",
    "parse_fragment",
    "XMLStore",
    "tokenize_text",
]
