"""XML parser: token stream → region-encoded :class:`Document`.

The parser enforces well-formedness (single root, matching tags, no text
outside the root) and delegates numbering to the shared
:class:`~repro.xmldb.builder.DocumentBuilder`.
"""

from __future__ import annotations

from typing import List

from repro.errors import XMLParseError
from repro.xmldb.builder import DocumentBuilder
from repro.xmldb.document import Document
from repro.xmldb.tokenizer import TokenType, XMLTokenizer


def parse_document(source: str, name: str = "document.xml",
                   doc_id: int = 0) -> Document:
    """Parse an XML string into a :class:`Document`.

    Raises :class:`~repro.errors.XMLParseError` on malformed input, with
    line/column information.
    """
    builder = DocumentBuilder()
    open_tags: List[str] = []
    seen_root = False

    for token in XMLTokenizer(source).tokens():
        if token.type is TokenType.START_TAG:
            tag, attrs, self_closing = token.value  # type: ignore[misc]
            if not open_tags and seen_root:
                raise XMLParseError(
                    "multiple root elements", token.line, token.column
                )
            seen_root = True
            builder.start_element(tag, attrs or None)
            if self_closing:
                builder.end_element()
            else:
                open_tags.append(tag)
        elif token.type is TokenType.END_TAG:
            if not open_tags:
                raise XMLParseError(
                    f"unexpected closing tag </{token.value}>",
                    token.line, token.column,
                )
            expected = open_tags.pop()
            if token.value != expected:
                raise XMLParseError(
                    f"mismatched closing tag </{token.value}>, "
                    f"expected </{expected}>",
                    token.line, token.column,
                )
            builder.end_element()
        elif token.type is TokenType.TEXT:
            text = token.value  # type: ignore[assignment]
            if open_tags:
                builder.text(text)  # type: ignore[arg-type]
            elif str(text).strip():
                raise XMLParseError(
                    "text content outside the root element",
                    token.line, token.column,
                )
        else:  # EOF
            if open_tags:
                raise XMLParseError(
                    f"unclosed element <{open_tags[-1]}> at end of input",
                    token.line, token.column,
                )

    if not seen_root:
        raise XMLParseError("no root element found")
    return builder.finish(name, doc_id)


def parse_fragment(source: str, name: str = "fragment.xml",
                   doc_id: int = 0) -> Document:
    """Parse a fragment that may have multiple top-level elements by
    wrapping it in a synthetic ``<root>`` element.

    Used by tests and by the Query-3 style product construction where a
    ``<root>`` wrapper appears in the paper's own XQuery.
    """
    return parse_document(f"<root>{source}</root>", name, doc_id)
