"""Store persistence: save/load an :class:`~repro.xmldb.store.XMLStore`
to disk.

The on-disk layout is one directory with a JSON manifest and one XML file
per document.  Loading re-parses the XML, which regenerates identical
region numbering (the builder is deterministic), so persisted stores are
bit-for-bit equivalent to their originals — the round-trip tests assert
tags, regions and word tables match.

This is deliberately a *logical* dump (documents as XML), not a binary
page dump: it keeps the format durable, diffable and independent of the
in-memory layout, at the cost of re-indexing on load (indexes are lazy
and rebuild on first use anyway).
"""

from __future__ import annotations

import json
import os
from typing import Dict

from repro.errors import TIXError
from repro.xmldb.store import XMLStore

MANIFEST_NAME = "store.json"
FORMAT_VERSION = 1


def save_store(store: XMLStore, directory: str) -> None:
    """Write ``store`` to ``directory`` (created if missing).

    Layout::

        directory/
          store.json          # manifest: version + document list
          doc00000.xml        # one file per document, load order
          …
    """
    os.makedirs(directory, exist_ok=True)
    documents = []
    for doc in store.documents():
        filename = f"doc{doc.doc_id:05d}.xml"
        path = os.path.join(directory, filename)
        with open(path, "w", encoding="utf-8") as f:
            f.write(doc.serialize())
        documents.append({"name": doc.name, "file": filename})
    manifest = {
        "format_version": FORMAT_VERSION,
        "documents": documents,
    }
    with open(os.path.join(directory, MANIFEST_NAME), "w",
              encoding="utf-8") as f:
        json.dump(manifest, f, indent=2)


def load_store(directory: str) -> XMLStore:
    """Load a store previously written by :func:`save_store`."""
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(manifest_path, "r", encoding="utf-8") as f:
            manifest = json.load(f)
    except FileNotFoundError:
        raise TIXError(f"no store manifest at {manifest_path}")
    except json.JSONDecodeError as exc:
        raise TIXError(f"corrupt store manifest: {exc}")

    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise TIXError(
            f"unsupported store format version {version!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    store = XMLStore()
    for entry in manifest.get("documents", []):
        path = os.path.join(directory, entry["file"])
        try:
            with open(path, "r", encoding="utf-8") as f:
                source = f.read()
        except FileNotFoundError:
            raise TIXError(
                f"manifest references missing document file {path}"
            )
        store.load(entry["name"], source)
    return store
