"""Store persistence: save/load an :class:`~repro.xmldb.store.XMLStore`
to disk, hardened for faulty substrates.

The on-disk layout is one directory with a JSON manifest and one XML file
per document.  Loading re-parses the XML, which regenerates identical
region numbering (the builder is deterministic), so persisted stores are
bit-for-bit equivalent to their originals — the round-trip tests assert
tags, regions and word tables match.

This is deliberately a *logical* dump (documents as XML), not a binary
page dump: it keeps the format durable, diffable and independent of the
in-memory layout, at the cost of re-indexing on load (indexes are lazy
and rebuild on first use anyway).

Fault tolerance (format version 2, see ``docs/robustness.md``):

- **atomic writes** — every file is written to a ``*.tmp`` sibling,
  flushed, fsync'd, and ``os.replace``'d into place, so a crash mid-save
  never leaves a half-written document or manifest visible;
- **integrity** — the manifest records each document's SHA-256 and byte
  size; :func:`load_store` verifies them and fails with a
  :class:`~repro.errors.PersistError` *naming the corrupt file*;
- **error discipline** — raw ``OSError`` / ``json.JSONDecodeError`` /
  ``KeyError`` never escape; everything is wrapped in ``PersistError``
  with the offending path, chained to the original cause;
- **partial load** — ``load_store(dir, partial=True)`` (or
  :func:`load_store_report`) skips corrupt/missing documents, loads the
  rest, and reports what was skipped;
- **transient-I/O retries** — file reads/writes go through
  :func:`repro.resilience.retry` (missing files are not retried), and
  every I/O step is a named fault point for the chaos suite
  (``persist.read_manifest`` … ``persist.replace``).

Version-1 stores (no checksums) still load; checksum verification is
simply skipped for manifest entries without a ``sha256`` field.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List

from repro import obs as _obs
from repro.errors import PersistError, TIXError
from repro.resilience import faultinject as _fi
from repro.xmldb.store import XMLStore

MANIFEST_NAME = "store.json"
FORMAT_VERSION = 2
#: Versions :func:`load_store` accepts (v1 = no checksums).
SUPPORTED_VERSIONS = (1, 2)

#: Retry policy for transient I/O (module-level so tests can tune it).
IO_ATTEMPTS = 3
IO_BASE_DELAY = 0.005


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _read_file(path: str, point: str) -> str:
    """Read a text file through the fault-injection point and the
    transient-I/O retry policy."""

    def attempt() -> str:
        _fi.INJECTOR.fire(point, path=path)
        with open(path, "r", encoding="utf-8") as f:
            return f.read()

    return _fi.retry(attempt, attempts=IO_ATTEMPTS,
                     base_delay=IO_BASE_DELAY)


def _atomic_write(path: str, payload: str, point: str) -> None:
    """Write ``payload`` to ``path`` atomically (tmp + fsync + rename),
    through the fault-injection points and the retry policy."""

    tmp = path + ".tmp"

    def attempt() -> None:
        _fi.INJECTOR.fire(point, path=path)
        try:
            with open(tmp, "w", encoding="utf-8") as f:
                f.write(payload)
                f.flush()
                os.fsync(f.fileno())
            _fi.INJECTOR.fire("persist.replace", path=path)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass  # the original error wins
            raise

    try:
        _fi.retry(attempt, attempts=IO_ATTEMPTS, base_delay=IO_BASE_DELAY)
    except OSError as exc:
        raise PersistError(
            f"cannot write {path}: {exc}", path=path
        ) from exc


@dataclass
class LoadReport:
    """Outcome of a (possibly partial) store load."""

    store: XMLStore
    #: one :class:`~repro.errors.PersistError` per skipped document
    skipped: List[PersistError] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.skipped


def save_store(store: XMLStore, directory: str) -> None:
    """Write ``store`` to ``directory`` (created if missing).

    Layout::

        directory/
          store.json          # manifest: version + document list
                              #   (file, sha256, bytes per document)
          doc00000.xml        # one file per document, load order
          …

    Every file lands atomically and the manifest is written *last*, so a
    failed save leaves any previous manifest (and the store it describes)
    intact.
    """
    try:
        os.makedirs(directory, exist_ok=True)
    except OSError as exc:
        raise PersistError(
            f"cannot create store directory {directory}: {exc}",
            path=directory,
        ) from exc
    documents = []
    with _obs.RECORDER.span("persist.save", directory=directory):
        for doc in store.documents():
            filename = f"doc{doc.doc_id:05d}.xml"
            path = os.path.join(directory, filename)
            payload = doc.serialize()
            _atomic_write(path, payload, "persist.write_doc")
            documents.append({
                "name": doc.name,
                "file": filename,
                "sha256": _sha256(payload),
                "bytes": len(payload.encode("utf-8")),
            })
        manifest = {
            "format_version": FORMAT_VERSION,
            "documents": documents,
        }
        _atomic_write(
            os.path.join(directory, MANIFEST_NAME),
            json.dumps(manifest, indent=2),
            "persist.write_manifest",
        )


def _load_manifest(directory: str) -> Dict:
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    try:
        raw = _read_file(manifest_path, "persist.read_manifest")
    except FileNotFoundError as exc:
        raise PersistError(
            f"no store manifest at {manifest_path}", path=manifest_path
        ) from exc
    except OSError as exc:
        raise PersistError(
            f"cannot read store manifest {manifest_path}: {exc}",
            path=manifest_path,
        ) from exc
    try:
        manifest = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise PersistError(
            f"corrupt store manifest {manifest_path}: {exc}",
            path=manifest_path,
        ) from exc
    if not isinstance(manifest, dict):
        raise PersistError(
            f"corrupt store manifest {manifest_path}: not a JSON object",
            path=manifest_path,
        )
    version = manifest.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        raise PersistError(
            f"unsupported store format version {version!r} in "
            f"{manifest_path} (this build reads versions "
            f"{', '.join(map(str, SUPPORTED_VERSIONS))})",
            path=manifest_path,
        )
    return manifest


def _load_document(store: XMLStore, directory: str, entry: Dict,
                   manifest_path: str) -> None:
    """Read, verify, and parse one manifest entry into ``store``."""
    if not isinstance(entry, dict) or "name" not in entry \
            or "file" not in entry:
        missing = [k for k in ("name", "file")
                   if not isinstance(entry, dict) or k not in entry]
        raise PersistError(
            f"malformed manifest entry in {manifest_path}: missing "
            f"{', '.join(missing) or 'fields'} in {entry!r}",
            path=manifest_path,
        )
    path = os.path.join(directory, entry["file"])
    try:
        source = _read_file(path, "persist.read_doc")
    except FileNotFoundError as exc:
        raise PersistError(
            f"manifest references missing document file {path}",
            path=path,
        ) from exc
    except OSError as exc:
        raise PersistError(
            f"cannot read document file {path}: {exc}", path=path
        ) from exc
    expected = entry.get("sha256")
    if expected is not None:
        actual = _sha256(source)
        if actual != expected:
            raise PersistError(
                f"checksum mismatch in {path}: manifest says "
                f"{expected[:12]}…, file hashes to {actual[:12]}… — "
                "the document is corrupt",
                path=path,
            )
    try:
        _fi.INJECTOR.fire("store.parse_doc", path=path)
        # ValueError covers catalog conflicts (duplicate document names);
        # OSError covers injected parse faults from the chaos suite.
        store.load(entry["name"], source)
    except (TIXError, ValueError, OSError) as exc:
        raise PersistError(
            f"cannot parse document file {path}: {exc}", path=path
        ) from exc


def load_store_report(directory: str, partial: bool = False) -> LoadReport:
    """Load a store previously written by :func:`save_store`, returning a
    :class:`LoadReport`.

    With ``partial=False`` the first bad document aborts the load with a
    :class:`~repro.errors.PersistError` naming the file.  With
    ``partial=True`` bad documents are skipped (best effort), the rest
    load normally, and the report lists one error per skipped document.
    Manifest-level problems (missing/corrupt/unsupported) always raise —
    without a trustworthy catalog there is nothing to partially load.
    """
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    manifest = _load_manifest(directory)
    store = XMLStore()
    skipped: List[PersistError] = []
    entries = manifest.get("documents", [])
    if not isinstance(entries, list):
        raise PersistError(
            f"corrupt store manifest {manifest_path}: 'documents' is "
            "not a list",
            path=manifest_path,
        )
    with _obs.RECORDER.span("persist.load", directory=directory):
        for entry in entries:
            try:
                _load_document(store, directory, entry, manifest_path)
            except PersistError as exc:
                if not partial:
                    raise
                skipped.append(exc)
                rec = _obs.RECORDER
                if rec.enabled:
                    rec.count("persist.documents_skipped")
    return LoadReport(store=store, skipped=skipped)


def load_store(directory: str, partial: bool = False) -> XMLStore:
    """Load a store previously written by :func:`save_store`.

    ``partial=True`` skips corrupt or missing documents instead of
    failing (use :func:`load_store_report` to also see *what* was
    skipped).
    """
    return load_store_report(directory, partial=partial).store
