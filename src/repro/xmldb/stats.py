"""Corpus statistics and histograms.

Two consumers:

- the benchmark workload builders, which need per-term corpus frequencies
  to select terms with target frequencies (the paper sweeps term frequency
  from 20 to 10,000);
- the Pick access method, whose auxiliary data (§5.3) is a histogram of
  data IR-node scores that lets a user express "top X% relevant" without
  knowing the absolute score distribution;
- the plan estimator (:mod:`repro.plan.estimate`), which derives
  per-operator cardinality estimates from the term frequencies, the
  fan-out statistics, and the level histogram.  The store caches one
  :class:`StoreStatistics` per ``store.generation``
  (:meth:`repro.xmldb.store.XMLStore.stats`), so estimation never pays
  the corpus scan twice for the same document set.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.xmldb.store import XMLStore


@dataclass
class StoreStatistics:
    """Aggregate statistics over an :class:`~repro.xmldb.store.XMLStore`."""

    term_frequency: Dict[str, int]
    """Total occurrences of each term across the corpus."""

    tag_counts: Dict[str, int]
    """Number of elements per tag."""

    level_counts: Dict[int, int]
    """Elements per tree level (root = 0) — the level histogram the
    plan estimator reads containment selectivity off."""

    n_elements: int
    n_words: int
    max_fanout: int
    avg_fanout: float
    max_depth: int

    @classmethod
    def build(cls, store: "XMLStore") -> "StoreStatistics":
        term_freq: Counter = Counter()
        tag_counts: Counter = Counter()
        level_counts: Counter = Counter()
        max_fanout = 0
        total_children = 0
        internal_nodes = 0
        max_depth = 0
        for doc in store.documents():
            term_freq.update(doc.word_terms)
            tag_counts.update(doc.tags)
            level_counts.update(doc.levels)
            for nid in range(len(doc)):
                k = doc.n_children(nid)
                if k:
                    internal_nodes += 1
                    total_children += k
                    if k > max_fanout:
                        max_fanout = k
            if doc.levels:
                max_depth = max(max_depth, max(doc.levels))
        return cls(
            term_frequency=dict(term_freq),
            tag_counts=dict(tag_counts),
            level_counts=dict(level_counts),
            n_elements=store.n_elements,
            n_words=store.n_words,
            max_fanout=max_fanout,
            avg_fanout=((total_children / internal_nodes)
                        if internal_nodes else 0.0),
            max_depth=max_depth,
        )

    @property
    def avg_depth(self) -> float:
        """Mean element level, from the level histogram."""
        total = sum(self.level_counts.values())
        if not total:
            return 0.0
        weighted = sum(
            level * count for level, count in self.level_counts.items()
        )
        return weighted / total

    def frequency(self, term: str) -> int:
        """Corpus frequency of ``term`` (0 if absent)."""
        return self.term_frequency.get(term, 0)

    def terms_with_frequency(
        self, target: int, tolerance: float = 0.25
    ) -> List[str]:
        """Terms whose corpus frequency is within ``tolerance`` (relative)
        of ``target``, sorted by distance to the target.  Used by benchmark
        workload selection when planted terms are not used."""
        lo = target * (1.0 - tolerance)
        hi = target * (1.0 + tolerance)
        candidates = [
            (abs(freq - target), term)
            for term, freq in self.term_frequency.items()
            if lo <= freq <= hi
        ]
        candidates.sort()
        return [term for _, term in candidates]


class ScoreHistogram:
    """Equi-width histogram over a set of scores.

    This is the Pick auxiliary structure from §5.3: given a qualification
    like "the top 20% of scored nodes are relevant", the histogram converts
    the percentage into an absolute score threshold without a full sort.
    """

    def __init__(self, scores: Sequence[float], n_buckets: int = 32):
        if n_buckets <= 0:
            raise ValueError("n_buckets must be positive")
        self.n_buckets = n_buckets
        self.total = len(scores)
        if self.total == 0:
            self.lo = 0.0
            self.hi = 1.0
            self.counts = [0] * n_buckets
            return
        self.lo = min(scores)
        self.hi = max(scores)
        width = (self.hi - self.lo) or 1.0
        self.counts = [0] * n_buckets
        for s in scores:
            b = int((s - self.lo) / width * n_buckets)
            if b == n_buckets:  # max score lands in the last bucket
                b -= 1
            self.counts[b] += 1

    def bucket_bounds(self, b: int) -> Tuple[float, float]:
        """[lo, hi) score range of bucket ``b``."""
        width = (self.hi - self.lo) / self.n_buckets or 1.0 / self.n_buckets
        return self.lo + b * width, self.lo + (b + 1) * width

    def threshold_for_top_fraction(self, fraction: float) -> float:
        """Smallest score ``t`` such that (approximately) ``fraction`` of
        all scores are ``>= t``.  The answer is conservative: it returns
        the lower bound of the bucket where the cumulative count crosses
        the target, so at least the requested fraction qualifies."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.total == 0:
            return 0.0
        target = fraction * self.total
        cum = 0
        for b in range(self.n_buckets - 1, -1, -1):
            cum += self.counts[b]
            if cum >= target:
                return self.bucket_bounds(b)[0]
        return self.lo

    def count_at_least(self, threshold: float) -> int:
        """Approximate number of scores ``>= threshold`` (bucket
        resolution; exact at bucket boundaries)."""
        if self.total == 0:
            return 0
        n = 0
        for b in range(self.n_buckets):
            blo, bhi = self.bucket_bounds(b)
            if blo >= threshold:
                n += self.counts[b]
            elif bhi > threshold:
                # Partial bucket: assume uniform within the bucket.
                frac = (bhi - threshold) / (bhi - blo)
                n += int(round(self.counts[b] * frac))
        return n
