"""Multi-document XML store (the "database" of the reproduction).

The store is a catalog of named documents with global node addressing
``(doc_id, node_id)``, lazily-built indexes (inverted term index,
parent/child-count index, tag index) and derived statistics.  It also
carries :class:`AccessCounters`, the logical-I/O accounting used by the
benchmark harness to report substrate-independent cost measures alongside
wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

from repro import obs as _obs
from repro.errors import DocumentNotFoundError
from repro.xmldb.document import Document
from repro.xmldb.parser import parse_document

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.index.inverted import InvertedIndex
    from repro.index.structure import StructureIndex
    from repro.xmldb.stats import StoreStatistics


@dataclass
class AccessCounters:
    """Logical access counters, incremented by access methods.

    These model the disk-page touches a real system (TIMBER) would pay:
    postings read from the inverted index, node records fetched from the
    element table, and parent/child-index lookups.  Benchmarks report them
    next to wall-clock time so the relative comparison is visible even on
    substrates with very different constants.
    """

    postings_read: int = 0
    nodes_fetched: int = 0
    index_lookups: int = 0
    navigations: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.postings_read = 0
        self.nodes_fetched = 0
        self.index_lookups = 0
        self.navigations = 0

    def snapshot(self) -> Dict[str, int]:
        """Current values as a plain dict (for reports)."""
        return {
            "postings_read": self.postings_read,
            "nodes_fetched": self.nodes_fetched,
            "index_lookups": self.index_lookups,
            "navigations": self.navigations,
        }

    def publish(self, recorder=None) -> None:
        """Mirror the current values into the observability metrics
        registry as ``store.*`` gauges (no-op with no collector)."""
        rec = recorder if recorder is not None else _obs.RECORDER
        if not rec.enabled:
            return
        for name, value in self.snapshot().items():
            rec.set_gauge(f"store.{name}", value)


class XMLStore:
    """A catalog of documents plus lazily-built indexes and statistics."""

    def __init__(self) -> None:
        self._documents: List[Document] = []
        self._by_name: Dict[str, int] = {}
        self._inverted = None  # InvertedIndex or CompressedInvertedIndex
        self._structure: Optional["StructureIndex"] = None
        self._stats: Optional["StoreStatistics"] = None
        self._stats_generation = -1
        self._compress_index = False
        self._postings_cache_capacity: Optional[int] = None
        #: Monotonic corpus-version counter, bumped whenever the document
        #: set changes.  The :mod:`repro.perf` caches key every entry on
        #: it, which makes stale answers unreachable by construction.
        self.generation = 0
        self.counters = AccessCounters()

    def enable_index_compression(self, enabled: bool = True) -> None:
        """Use varint-compressed posting lists for the inverted index
        (see :mod:`repro.index.compress`).  Takes effect on the next
        (re)build — any existing index is discarded."""
        self._compress_index = enabled
        self._inverted = None

    def enable_postings_cache(self, capacity: Optional[int] = None,
                              enabled: bool = True) -> None:
        """Serve ``index.postings()`` through a size-bounded LRU
        (:class:`repro.perf.postings.CachingIndex`) wrapped around the
        plain or compressed index.  ``capacity`` is in *postings*
        (default :data:`repro.perf.postings.DEFAULT_POSTINGS_CAPACITY`).
        Takes effect on the next (re)build — any existing index is
        discarded."""
        if enabled:
            if capacity is None:
                from repro.perf.postings import DEFAULT_POSTINGS_CAPACITY

                capacity = DEFAULT_POSTINGS_CAPACITY
            self._postings_cache_capacity = capacity
        else:
            self._postings_cache_capacity = None
        self._inverted = None

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load(self, name: str, source: str) -> Document:
        """Parse ``source`` and register it under ``name``."""
        doc = parse_document(source, name=name, doc_id=len(self._documents))
        return self.add_document(doc)

    def add_document(self, doc: Document) -> Document:
        """Register a pre-built document (e.g. from the workload
        generator).  The document's ``doc_id`` must match its slot."""
        if doc.name in self._by_name:
            raise ValueError(f"document {doc.name!r} already loaded")
        expected = len(self._documents)
        if doc.doc_id != expected:
            raise ValueError(
                f"document {doc.name!r} has doc_id {doc.doc_id}, "
                f"expected {expected}"
            )
        self._documents.append(doc)
        self._by_name[doc.name] = doc.doc_id
        self._invalidate()
        return doc

    def remove_document(self, name_or_id) -> Document:
        """Unregister a document (by name or id) and return it.

        Remaining documents are renumbered to keep doc_ids dense (the
        ``doc_id == slot`` invariant that global node addressing and the
        index builders rely on), so node addresses from before a removal
        must not be held across it — the generation bump invalidates
        every cache that might."""
        doc = self.document(name_or_id)
        del self._documents[doc.doc_id]
        for slot in range(doc.doc_id, len(self._documents)):
            self._documents[slot].doc_id = slot
        self._by_name = {d.name: d.doc_id for d in self._documents}
        self._invalidate()
        return doc

    def _invalidate(self) -> None:
        self._inverted = None
        self._structure = None
        self._stats = None
        self.generation += 1

    # ------------------------------------------------------------------
    # Catalog access
    # ------------------------------------------------------------------

    def document(self, name_or_id) -> Document:
        """Look up a document by name or id."""
        if isinstance(name_or_id, int):
            try:
                return self._documents[name_or_id]
            except IndexError:
                raise DocumentNotFoundError(
                    f"no document with id {name_or_id}")
        try:
            return self._documents[self._by_name[name_or_id]]
        except KeyError:
            raise DocumentNotFoundError(f"no document named {name_or_id!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def documents(self) -> Iterator[Document]:
        """All documents in load order."""
        return iter(self._documents)

    @property
    def n_documents(self) -> int:
        return len(self._documents)

    @property
    def n_elements(self) -> int:
        """Total element count across all documents."""
        return sum(len(d) for d in self._documents)

    @property
    def n_words(self) -> int:
        """Total word occurrences across all documents."""
        return sum(d.n_words for d in self._documents)

    # ------------------------------------------------------------------
    # Indexes and statistics (lazy)
    # ------------------------------------------------------------------

    @property
    def index(self) -> "InvertedIndex":
        """The positional inverted term index (built on first use;
        compressed when :meth:`enable_index_compression` was called)."""
        if self._inverted is None:
            rec = _obs.RECORDER
            with rec.span("index.build", compressed=self._compress_index):
                if self._compress_index:
                    from repro.index.compress import CompressedInvertedIndex

                    self._inverted = CompressedInvertedIndex.build(self)
                else:
                    from repro.index.inverted import InvertedIndex

                    self._inverted = InvertedIndex.build(self)
                if self._postings_cache_capacity is not None:
                    from repro.perf.postings import CachingIndex

                    self._inverted = CachingIndex(
                        self._inverted, self._postings_cache_capacity
                    )
            if rec.enabled:
                rec.set_gauge("index.n_terms", self._inverted.n_terms)
        return self._inverted

    @property
    def structure(self) -> "StructureIndex":
        """Parent / child-count / tag index (built on first use).  This is
        the index Enhanced TermJoin consults instead of navigating."""
        if self._structure is None:
            from repro.index.structure import StructureIndex

            with _obs.RECORDER.span("structure.build"):
                self._structure = StructureIndex.build(self)
        return self._structure

    @property
    def stats(self) -> "StoreStatistics":
        """Corpus statistics (term frequencies, fan-out, the level
        histogram) — the estimation catalog of
        :mod:`repro.plan.estimate`.

        Built at most once per ``store.generation``: the cached copy is
        keyed on the generation counter explicitly (not just cleared by
        ``_invalidate``), so per-query estimation and ``tix stats``
        never repeat the full corpus scan for an unchanged document
        set.  Rebuilds are counted in ``estimate.catalog_rebuilds``."""
        if self._stats is None or self._stats_generation != self.generation:
            from repro.xmldb.stats import StoreStatistics

            rec = _obs.RECORDER
            with rec.span("stats.build"):
                self._stats = StoreStatistics.build(self)
            self._stats_generation = self.generation
            if rec.enabled:
                rec.count("estimate.catalog_rebuilds")
        return self._stats

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "XMLStore":
        """Build a store from a mapping ``{name: xml_source}``."""
        store = cls()
        for name, source in sources.items():
            store.load(name, source)
        return store

    def global_node(self, doc_id: int, node_id: int) -> Tuple[Document, int]:
        """Resolve a global node address to ``(document, node_id)``."""
        return self.document(doc_id), node_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"XMLStore({self.n_documents} documents, "
            f"{self.n_elements} elements, {self.n_words} words)"
        )
