"""Region-encoded XML documents.

Every element node receives three keys drawn from one monotonically
increasing per-document counter:

- ``start``: taken when the element opens,
- one position per *word* of text content (words consume counter values so
  that term positions nest strictly inside the regions of all their
  ancestor elements),
- ``end``: taken when the element closes.

This is the classic region/interval numbering used by the structural-join
literature the paper builds on (Zhang et al. SIGMOD'01, Al-Khalifa et al.
ICDE'01): element *a* is an ancestor of node *b* iff
``a.start < b.start and b.end <= a.end`` (for words, ``b.end == b.start``).

Node ids are assigned in document (pre-)order, so the descendants of node
``n`` are exactly the contiguous id range ``n+1 .. last_descendant(n)``.

The document is stored columnar: parallel lists for tags / starts / ends /
levels / parents, a flat word table in document order, and a per-node
content list (interleaved child ids and text segments) used only for
serialization and ``alltext``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.xmldb.text import escape_attr, escape_text

#: Sentinel parent id for document roots.
NO_PARENT = -1


@dataclass(frozen=True)
class NodeRecord:
    """Immutable view of one element node.

    This is a convenience wrapper materialized on demand by
    :meth:`Document.node`; the store of record is the columnar arrays.
    """

    node_id: int
    doc_id: int
    tag: str
    start: int
    end: int
    level: int
    parent: int
    attrs: Dict[str, str] = field(default_factory=dict)

    def contains(self, other: "NodeRecord") -> bool:
        """Region containment test: is ``other`` in this node's subtree
        (strictly below it)?"""
        return self.start < other.start and other.end <= self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NodeRecord(#{self.node_id} <{self.tag}> "
            f"[{self.start},{self.end}] lvl={self.level})"
        )


@dataclass(frozen=True)
class WordOccurrence:
    """One word occurrence in a document.

    ``pos`` is the global region-numbering position (nested inside every
    ancestor's [start, end] interval); ``node_id`` is the element whose
    *direct* text contains the word; ``offset`` is the word's ordinal within
    that element's direct text (phrase adjacency = consecutive offsets in
    the same node, in order — exactly the check PhraseFinder performs).
    """

    term: str
    doc_id: int
    pos: int
    node_id: int
    offset: int


# Content items are either a child element id (int) or a text segment (str).
ContentItem = Union[int, str]


class Document:
    """An immutable, columnar, region-encoded XML document.

    Instances are built by :class:`repro.xmldb.builder.DocumentBuilder` (used
    by both the parser and the synthetic generator) and then frozen; all
    query-time structures treat them as read-only.
    """

    def __init__(
        self,
        name: str,
        doc_id: int,
        tags: List[str],
        starts: List[int],
        ends: List[int],
        levels: List[int],
        parents: List[int],
        attrs: Dict[int, Dict[str, str]],
        content: List[List[ContentItem]],
        word_terms: List[str],
        word_pos: List[int],
        word_node: List[int],
        word_offset: List[int],
        word_slices: List[Tuple[int, int]],
    ):
        self.name = name
        self.doc_id = doc_id
        self.tags = tags
        self.starts = starts
        self.ends = ends
        self.levels = levels
        self.parents = parents
        self.attrs = attrs
        self.content = content
        # Flat word table, document order (ascending pos).
        self.word_terms = word_terms
        self.word_pos = word_pos
        self.word_node = word_node
        self.word_offset = word_offset
        # Per-node [lo, hi) slice into the word table covering the words of
        # the node's *entire subtree* (possible because preorder regions are
        # contiguous in the flat table).
        self.word_slices = word_slices
        # Children ids per node, derived once.
        self._children: List[List[int]] = [[] for _ in tags]
        for nid, parent in enumerate(parents):
            if parent != NO_PARENT:
                self._children[parent].append(nid)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of element nodes."""
        return len(self.tags)

    @property
    def n_words(self) -> int:
        """Number of word occurrences in the document."""
        return len(self.word_terms)

    @property
    def root(self) -> int:
        """Node id of the document root (always 0)."""
        return 0

    def node(self, node_id: int) -> NodeRecord:
        """Materialize a :class:`NodeRecord` view of ``node_id``."""
        return NodeRecord(
            node_id=node_id,
            doc_id=self.doc_id,
            tag=self.tags[node_id],
            start=self.starts[node_id],
            end=self.ends[node_id],
            level=self.levels[node_id],
            parent=self.parents[node_id],
            attrs=self.attrs.get(node_id, {}),
        )

    def nodes(self) -> Iterator[NodeRecord]:
        """Iterate all element nodes in document order."""
        for nid in range(len(self.tags)):
            yield self.node(nid)

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------

    def parent(self, node_id: int) -> int:
        """Parent element id, or :data:`NO_PARENT` for the root."""
        return self.parents[node_id]

    def children(self, node_id: int) -> Sequence[int]:
        """Child element ids in document order."""
        return self._children[node_id]

    def n_children(self, node_id: int) -> int:
        """Number of child elements (O(1); this is the statistic the
        Enhanced TermJoin fetches from an index)."""
        return len(self._children[node_id])

    def ancestors(self, node_id: int) -> List[int]:
        """Ancestor ids from the root down to the parent of ``node_id``.

        Root-first order matches what the TermJoin stack discipline wants:
        the stack bottom is the document root.
        """
        chain: List[int] = []
        cur = self.parents[node_id]
        while cur != NO_PARENT:
            chain.append(cur)
            cur = self.parents[cur]
        chain.reverse()
        return chain

    def ancestors_of_pos(self, pos: int) -> List[int]:
        """Ancestors (root-first) of the *word* at region position ``pos``:
        every element whose region contains the position."""
        nid = self.node_at_pos(pos)
        if nid is None:
            return []
        return self.ancestors(nid) + [nid]

    def node_at_pos(self, pos: int) -> Optional[int]:
        """The deepest element whose region contains position ``pos``.

        Because ids are preorder and regions nest, this is the last node
        with ``start <= pos`` whose ``end >= pos``.
        """
        i = bisect_right(self.starts, pos) - 1
        while i >= 0:
            if self.ends[i] >= pos:
                return i
            i = self.parents[i]
        return None

    def last_descendant(self, node_id: int) -> int:
        """Highest node id in the subtree of ``node_id`` (itself if leaf)."""
        end = self.ends[node_id]
        # All descendants have start < end; ids are preorder-contiguous.
        return bisect_left(self.starts, end) - 1

    def descendants(self, node_id: int) -> range:
        """Id range of strict descendants of ``node_id``."""
        return range(node_id + 1, self.last_descendant(node_id) + 1)

    def subtree(self, node_id: int) -> range:
        """Id range of the subtree rooted at ``node_id`` (inclusive)."""
        return range(node_id, self.last_descendant(node_id) + 1)

    def is_ancestor(self, anc: int, desc: int) -> bool:
        """Region-containment ancestor test (strict)."""
        return (self.starts[anc] < self.starts[desc]
                and self.ends[desc] <= self.ends[anc])

    def level(self, node_id: int) -> int:
        """Depth of the node; the root is level 0."""
        return self.levels[node_id]

    # ------------------------------------------------------------------
    # Text access
    # ------------------------------------------------------------------

    def direct_words(self, node_id: int) -> List[str]:
        """Words in the node's *direct* text content, in order."""
        lo, hi = self.word_slices[node_id]
        return [
            self.word_terms[i]
            for i in range(lo, hi)
            if self.word_node[i] == node_id
        ]

    def subtree_words(self, node_id: int) -> List[str]:
        """All words in the subtree of ``node_id`` — the paper's
        ``alltext()`` primitive, used by the naive scoring oracle."""
        lo, hi = self.word_slices[node_id]
        return self.word_terms[lo:hi]

    def alltext(self, node_id: int) -> str:
        """Subtree text as a single space-joined string."""
        return " ".join(self.subtree_words(node_id))

    def direct_text(self, node_id: int) -> str:
        """The node's direct text segments, concatenated verbatim."""
        return "".join(
            item for item in self.content[node_id] if isinstance(item, str)
        )

    def word_slice(self, node_id: int) -> Tuple[int, int]:
        """[lo, hi) range in the flat word table covering the subtree."""
        return self.word_slices[node_id]

    def word_occurrence(self, i: int) -> WordOccurrence:
        """Materialize word-table row ``i``."""
        return WordOccurrence(
            term=self.word_terms[i],
            doc_id=self.doc_id,
            pos=self.word_pos[i],
            node_id=self.word_node[i],
            offset=self.word_offset[i],
        )

    # ------------------------------------------------------------------
    # Matching helpers
    # ------------------------------------------------------------------

    def find_by_tag(self, tag: str) -> List[int]:
        """All node ids with the given tag, in document order."""
        return [nid for nid, t in enumerate(self.tags) if t == tag]

    def attr(self, node_id: int, name: str) -> Optional[str]:
        """Attribute value or ``None``."""
        return self.attrs.get(node_id, {}).get(name)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def serialize(self, node_id: Optional[int] = None,
                  indent: bool = False) -> str:
        """Serialize the subtree at ``node_id`` (default: root) back to XML.

        With ``indent=True`` a readable pretty-printed form is produced;
        otherwise the original text segments are emitted verbatim, so a
        parse → serialize round trip preserves text content exactly.
        """
        out: List[str] = []
        self._serialize_into(
            node_id if node_id is not None else 0, out, indent, 0)
        return "".join(out)

    def _serialize_into(
        self, nid: int, out: List[str], indent: bool, depth: int
    ) -> None:
        pad = "  " * depth if indent else ""
        attrs = self.attrs.get(nid)
        attr_str = ""
        if attrs:
            attr_str = "".join(
                f' {k}="{escape_attr(v)}"' for k, v in attrs.items()
            )
        items = self.content[nid]
        if not items:
            out.append(f"{pad}<{self.tags[nid]}{attr_str}/>")
            if indent:
                out.append("\n")
            return
        out.append(f"{pad}<{self.tags[nid]}{attr_str}>")
        if indent:
            out.append("\n")
        for item in items:
            if isinstance(item, int):
                self._serialize_into(item, out, indent, depth + 1)
            else:
                text = escape_text(item)
                if indent:
                    text = text.strip()
                    if text:
                        out.append(f"{'  ' * (depth + 1)}{text}\n")
                else:
                    out.append(text)
        out.append(f"{pad}</{self.tags[nid]}>")
        if indent:
            out.append("\n")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Document({self.name!r}, {len(self)} elements, "
            f"{self.n_words} words)"
        )
