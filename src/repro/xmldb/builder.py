"""Programmatic construction of region-encoded documents.

:class:`DocumentBuilder` is the single place region numbering is
implemented; both the XML parser and the synthetic-workload generator drive
it, so their documents are numbered identically.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.errors import TIXError
from repro.xmldb.document import ContentItem, Document, NO_PARENT
from repro.xmldb.text import tokenize_text


class DocumentBuilder:
    """Event-style builder: ``start_element`` / ``text`` / ``end_element``.

    One counter drives the region numbering: element opens, individual
    words, and element closes each consume one value, in document order.

    Example::

        b = DocumentBuilder()
        b.start_element("article")
        b.start_element("title")
        b.text("Internet Technologies")
        b.end_element()
        b.end_element()
        doc = b.finish("articles.xml")
    """

    def __init__(self) -> None:
        self._counter = 0
        self._stack: List[int] = []  # node ids of open elements
        self._tags: List[str] = []
        self._starts: List[int] = []
        self._ends: List[int] = []
        self._levels: List[int] = []
        self._parents: List[int] = []
        self._attrs: Dict[int, Dict[str, str]] = {}
        self._content: List[List[ContentItem]] = []
        self._word_terms: List[str] = []
        self._word_pos: List[int] = []
        self._word_node: List[int] = []
        self._word_offset: List[int] = []
        # words in the *direct* text of each currently open element
        self._direct_word_count: Dict[int, int] = {}
        self._finished = False

    def _next_key(self) -> int:
        self._counter += 1
        return self._counter

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------

    def start_element(self, tag: str,
                      attrs: Optional[Dict[str, str]] = None) -> int:
        """Open an element; returns its node id."""
        if self._finished:
            raise TIXError("builder already finished")
        if not self._stack and self._tags:
            raise TIXError("document may only have one root element")
        node_id = len(self._tags)
        self._tags.append(tag)
        self._starts.append(self._next_key())
        self._ends.append(-1)  # patched in end_element
        self._levels.append(len(self._stack))
        parent = self._stack[-1] if self._stack else NO_PARENT
        self._parents.append(parent)
        if attrs:
            self._attrs[node_id] = dict(attrs)
        self._content.append([])
        if parent != NO_PARENT:
            self._content[parent].append(node_id)
        self._stack.append(node_id)
        self._direct_word_count[node_id] = 0
        return node_id

    def text(self, text: str) -> None:
        """Append a text segment to the currently open element.

        The raw segment is kept for serialization; its words are numbered
        and appended to the flat word table.
        """
        if not self._stack:
            raise TIXError("text outside of any element")
        node_id = self._stack[-1]
        self._content[node_id].append(text)
        offset = self._direct_word_count[node_id]
        for term in tokenize_text(text):
            self._word_terms.append(term)
            self._word_pos.append(self._next_key())
            self._word_node.append(node_id)
            self._word_offset.append(offset)
            offset += 1
        self._direct_word_count[node_id] = offset

    def end_element(self) -> int:
        """Close the innermost open element; returns its node id."""
        if not self._stack:
            raise TIXError("end_element with no open element")
        node_id = self._stack.pop()
        self._ends[node_id] = self._next_key()
        del self._direct_word_count[node_id]
        return node_id

    # Convenience for generator / test code --------------------------------

    def element(self, tag: str, text: Optional[str] = None,
                attrs: Optional[Dict[str, str]] = None) -> int:
        """Open, optionally fill with text, and close an element."""
        nid = self.start_element(tag, attrs)
        if text is not None:
            self.text(text)
        self.end_element()
        return nid

    @property
    def depth(self) -> int:
        """Number of currently open elements."""
        return len(self._stack)

    # ------------------------------------------------------------------
    # Finish
    # ------------------------------------------------------------------

    def finish(self, name: str, doc_id: int = 0) -> Document:
        """Freeze the builder into an immutable :class:`Document`."""
        if self._stack:
            raise TIXError(
                f"unclosed elements at finish: "
                f"{[self._tags[n] for n in self._stack]}"
            )
        if not self._tags:
            raise TIXError("empty document")
        self._finished = True
        word_slices = self._compute_word_slices()
        return Document(
            name=name,
            doc_id=doc_id,
            tags=self._tags,
            starts=self._starts,
            ends=self._ends,
            levels=self._levels,
            parents=self._parents,
            attrs=self._attrs,
            content=self._content,
            word_terms=self._word_terms,
            word_pos=self._word_pos,
            word_node=self._word_node,
            word_offset=self._word_offset,
            word_slices=word_slices,
        )

    def _compute_word_slices(self) -> List[Tuple[int, int]]:
        """Per-node [lo, hi) slice of the flat word table covering the
        node's subtree.  Valid because the table is ascending in ``pos``
        and subtree word positions form the open interval (start, end)."""
        slices: List[Tuple[int, int]] = []
        for nid in range(len(self._tags)):
            lo = bisect_left(self._word_pos, self._starts[nid])
            hi = bisect_left(self._word_pos, self._ends[nid])
            slices.append((lo, hi))
        return slices
