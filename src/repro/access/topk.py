"""Top-k evaluation: the Threshold Algorithm family (§5.3).

The paper notes that the global-ranking information a K-Threshold needs
"can be efficiently generated from the input itself by employing
techniques proposed in [8, 5]" (MPro, Bruno et al.) — top-k combiners
that stop reading score lists early once no unseen element can enter the
answer.

:func:`threshold_algorithm` is the classic Fagin-style TA over per-source
descending score lists with random access: it returns the exact top-k of
``combine(scores…)`` while reading only a prefix of each list.  The
monotonicity requirement on ``combine`` is exactly the paper's [8]
assumption.

:func:`topk_termjoin_scores` adapts it to the TermJoin setting: per-term
lists of (element, weighted partial score) pairs rank elements by the
simple scoring function without materializing every total.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Hashable, List, Sequence, Tuple

from repro.resilience import guard as _resguard

#: One source list: descending (score, item) pairs.
ScoreList = Sequence[Tuple[float, Hashable]]


def threshold_algorithm(
    lists: Sequence[ScoreList],
    k: int,
    combine: Callable[[Sequence[float]], float] = sum,
    missing: float = 0.0,
) -> Tuple[List[Tuple[float, Hashable]], int]:
    """Exact top-k under a monotone ``combine``.

    ``lists`` are per-source score lists sorted descending by score; an
    item absent from a source contributes ``missing``.  Returns
    ``(top-k as descending (score, item) pairs, positions read)`` — the
    second component is the early-termination statistic the ablation
    benchmark reports.

    Stops when the k-th best combined score is at least the *threshold*
    ``combine(current frontier scores)``, which bounds every unseen item
    (monotonicity).
    """
    if k <= 0:
        return [], 0
    n = len(lists)
    if n == 0:
        return [], 0

    random_access: List[Dict[Hashable, float]] = [
        {item: score for score, item in lst} for lst in lists
    ]
    seen: Dict[Hashable, float] = {}
    heap: List[Tuple[float, int, Hashable]] = []  # min-heap of top-k
    counter = 0
    positions = [0] * n
    reads = 0
    guard = _resguard.GUARD
    guard_active = guard.active
    gi = 0

    while True:
        # One check per round of sorted accesses (n reads + n random
        # probes), strided so the uncontended path stays two int ops.
        if guard_active:
            gi += 1
            if not (gi & 63):
                guard.tick(64)
        frontier: List[float] = []
        progressed = False
        for i, lst in enumerate(lists):
            pos = positions[i]
            if pos < len(lst):
                frontier.append(lst[pos][0])
            else:
                frontier.append(missing)
        # Visit one new item per list (round-robin sorted access).
        for i, lst in enumerate(lists):
            pos = positions[i]
            if pos >= len(lst):
                continue
            progressed = True
            reads += 1
            _score, item = lst[pos]
            positions[i] = pos + 1
            if item in seen:
                continue
            total = combine([
                random_access[j].get(item, missing) for j in range(n)
            ])
            seen[item] = total
            counter += 1
            if len(heap) < k:
                heapq.heappush(heap, (total, counter, item))
            elif total > heap[0][0]:
                heapq.heapreplace(heap, (total, counter, item))
        threshold = combine(frontier)
        if len(heap) == k and heap[0][0] >= threshold:
            break
        if not progressed:
            break

    best = sorted(heap, key=lambda e: (-e[0], e[1]))
    return [(score, item) for score, _c, item in best], reads


def topk_termjoin_scores(
    results_per_term: Sequence[Sequence[Tuple[float, Hashable]]],
    k: int,
) -> Tuple[List[Tuple[float, Hashable]], int]:
    """Top-k elements by summed per-term partial scores.

    ``results_per_term[i]`` holds (partial score, element) pairs for term
    *i* in any order; they are sorted descending here (the inverted index
    could maintain them sorted).  Returns the exact top-k plus the number
    of sorted-access reads TA performed.
    """
    lists = [
        sorted(pairs, key=lambda p: -p[0]) for pairs in results_per_term
    ]
    return threshold_algorithm(lists, k)


def brute_force_topk(
    results_per_term: Sequence[Sequence[Tuple[float, Hashable]]],
    k: int,
) -> List[Tuple[float, Hashable]]:
    """Oracle: materialize every total, sort, cut."""
    totals: Dict[Hashable, float] = {}
    guard = _resguard.GUARD
    guard_active = guard.active
    gi = 0
    for pairs in results_per_term:
        for score, item in pairs:
            if guard_active:
                gi += 1
                if not (gi & 255):
                    guard.tick(256)
            totals[item] = totals.get(item, 0.0) + score
    ranked = sorted(totals.items(), key=lambda kv: -kv[1])[:k]
    return [(score, item) for item, score in ranked]
