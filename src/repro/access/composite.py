"""Composite-of-standard-operators baselines (§6.1, §6.2).

The paper expresses TermJoin as a composition of standard operators
(§5.1.1):

    op(C) = ⋃_i γ_i(σ_{P_i}(C))

i.e. per term: an index-driven selection producing one witness tree per
(occurrence, ancestor) pair, a grouping on node id to accumulate counts,
then a scored set union across terms.  Evaluating this expression directly
on the tree algebra is the **Comp1** baseline: it materializes witness
records for every ancestor of every occurrence, groups them by sorting,
and unions the per-term results — paying allocation and sort cost on a
volume of ``occurrences × depth`` records that grows with term frequency.

**Comp2** is the variant "as advised by recent studies" with the
structural joins pushed down: each term's posting list is structurally
joined against the *entire element table* (the generic
ancestor-candidates input a real plan uses before any term knowledge can
narrow it), making its cost dominated by the full element scan — large
but nearly independent of term frequency, exactly the flat-and-huge
profile of Tables 1-4.

**Comp3** (§6.2) is the phrase baseline: per-term index accesses, an
intersection of element ids, then a *filter* step that fetches each
candidate element's text from the database and re-scans it for the phrase
— the work PhraseFinder avoids by checking offsets during the
intersection itself.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.access.results import PhraseMatch, ScoredElement
from repro.core.scoring import count_phrase
from repro.index.inverted import P_DOC, P_NODE, P_OFFSET
from repro.joins.structural import stack_tree_join
from repro.resilience import guard as _resguard
from repro.xmldb.store import XMLStore


class Comp1:
    """Direct evaluation of ⋃ γ(σ_P_i(C)) — ancestor-walk selections,
    sort-based grouping, sort-merge scored union."""

    name = "Comp1"

    def __init__(self, store: XMLStore, scorer,
                 complex_scoring: bool = False):
        self.store = store
        self.scorer = scorer
        self.complex_scoring = complex_scoring

    def run(self, terms: Sequence[str]) -> List[ScoredElement]:
        from repro.core.trees import SNode

        index = self.store.index
        counters = self.store.counters
        per_term_groups: List[List[Tuple[Tuple[int, int], list]]] = []
        guard = _resguard.GUARD
        guard_active = guard.active
        gi = 0
        for term in terms:
            if guard_active:
                guard.tick()
            postings = index.postings(term)
            counters.index_lookups += 1
            counters.postings_read += len(postings)
            # Selection: the direct implementation materializes one
            # witness tree per (occurrence, ancestor) embedding, exactly
            # as the algebra-level scored selection does — the record
            # carries actual tree nodes, not just ids.  This allocation
            # volume (occurrences × depth) is what the paper's Comp1
            # pays and TermJoin avoids.
            witnesses: List[
                Tuple[int, int, Tuple[str, int, int], SNode]
            ] = []
            for p in postings:
                if guard_active:
                    gi += 1
                    if not (gi & 255):
                        guard.tick(256)
                doc = self.store.document(p[P_DOC])
                node = p[P_NODE]
                occ = (term, node, p[P_OFFSET])
                leaf = SNode(
                    doc.tags[node], source=(p[P_DOC], node)
                )
                cur = node
                while cur != -1:
                    counters.navigations += 1
                    witness_root = SNode(
                        doc.tags[cur], source=(p[P_DOC], cur)
                    )
                    if cur != node:
                        witness_root.add_child(leaf.shallow_copy())
                    witnesses.append((p[P_DOC], cur, occ, witness_root))
                    cur = doc.parents[cur]
            # Grouping on node id: sort then linear group.
            witnesses.sort(key=lambda w: (w[0], w[1]))
            groups: List[Tuple[Tuple[int, int], list]] = []
            for doc_id, node_id, occ, _witness in witnesses:
                key = (doc_id, node_id)
                if groups and groups[-1][0] == key:
                    groups[-1][1].append(occ)
                else:
                    groups.append((key, [occ]))
            per_term_groups.append(groups)

        # Scored set union across terms: sort-merge on the group key,
        # concatenating occurrence lists.
        merged: Dict[Tuple[int, int], list] = {}
        order: List[Tuple[int, int]] = []
        for groups in per_term_groups:
            for key, occs in groups:
                if key in merged:
                    merged[key].extend(occs)
                else:
                    merged[key] = list(occs)
                    order.append(key)
        order.sort()

        out: List[ScoredElement] = []
        for key in order:
            occs = merged[key]
            out.append(self._score(key, occs))
        return out

    def _score(self, key: Tuple[int, int], occs: list) -> ScoredElement:
        doc_id, node_id = key
        counters = self.store.counters
        if self.complex_scoring:
            occs.sort(key=lambda o: (o[1], o[2]))
            doc = self.store.document(doc_id)
            children = doc.children(node_id)
            counters.nodes_fetched += 1
            # Child relevance requires probing each child's region for
            # occurrences — done here against the occurrence list.
            relevant = 0
            for c in children:
                counters.navigations += 1
                lo, hi = doc.starts[c], doc.ends[c]
                if any(
                    lo < doc.starts[o[1]] and doc.ends[o[1]] <= hi
                    or o[1] == c
                    for o in occs
                ):
                    relevant += 1
            score = self.scorer.score_from_occurrences(
                occs, len(children), relevant
            )
        else:
            counts: Dict[str, int] = {}
            for t, _n, _o in occs:
                counts[t] = counts.get(t, 0) + 1
            score = self.scorer.score_from_counts(counts)
        return ScoredElement(doc_id, node_id, score)


class Comp2(Comp1):
    """Comp1 with the structural joins pushed down: each term's postings
    are joined against the full element table with the stack-based
    structural join, so the per-term cost is a full element scan plus the
    containment output — flat in term frequency, huge in the constant."""

    name = "Comp2"

    def run(self, terms: Sequence[str]) -> List[ScoredElement]:
        index = self.store.index
        structure = self.store.structure
        counters = self.store.counters
        all_elements = structure.all_elements()

        merged: Dict[Tuple[int, int], list] = {}
        order: List[Tuple[int, int]] = []
        guard = _resguard.GUARD
        guard_active = guard.active
        gi = 0
        for term in terms:
            if guard_active:
                guard.tick()
            postings = index.postings(term)
            counters.index_lookups += 1
            counters.postings_read += len(postings)
            counters.nodes_fetched += len(all_elements)  # full scan
            # stack_tree_join ticks internally; the containment output
            # it returns can still dwarf its inputs, so the pair loop
            # checks on its own stride too.
            pairs = stack_tree_join(all_elements, postings.postings)
            for anc, posting in pairs:
                if guard_active:
                    gi += 1
                    if not (gi & 255):
                        guard.tick(256)
                key = (anc[0], anc[4])
                occ = (term, posting[P_NODE], posting[P_OFFSET])
                if key in merged:
                    merged[key].append(occ)
                else:
                    merged[key] = [occ]
                    order.append(key)
        order.sort()
        return [self._score(key, merged[key]) for key in order]


class Comp3:
    """The phrase baseline (§6.2): index access per term, element-id
    intersection, then a text-refetch filter verifying that offsets are
    exactly 1 apart and in phrase order."""

    name = "Comp3"

    def __init__(self, store: XMLStore, phrase_weight: float = 1.0):
        self.store = store
        self.phrase_weight = phrase_weight

    def run(self, phrase_terms: Sequence[str]) -> List[PhraseMatch]:
        index = self.store.index
        counters = self.store.counters
        # Index access per term: the basic lookup returns element ids
        # only (§5.1) — offsets are not used until the filter.
        candidate_sets: List[set] = []
        guard = _resguard.GUARD
        guard_active = guard.active
        for term in phrase_terms:
            if guard_active:
                guard.tick()
            postings = index.postings(term)
            counters.index_lookups += 1
            counters.postings_read += len(postings)
            candidate_sets.append({(p[P_DOC], p[P_NODE]) for p in postings})
        if not candidate_sets:
            return []
        candidates = set.intersection(*candidate_sets)

        # Filter: fetch each candidate's text from the database and scan
        # it for the exact phrase.
        out: List[PhraseMatch] = []
        terms = [t.lower() for t in phrase_terms]
        for doc_id, node_id in sorted(candidates):
            # One check per candidate: each iteration refetches and
            # rescans an element's full text, heavy enough that strides
            # would only delay the deadline.
            if guard_active:
                guard.tick()
            doc = self.store.document(doc_id)
            counters.nodes_fetched += 1
            words = doc.direct_words(node_id)
            count = count_phrase(words, terms)
            if count:
                out.append(
                    PhraseMatch(
                        doc_id, node_id, count, count * self.phrase_weight
                    )
                )
        return out
