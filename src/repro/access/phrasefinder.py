"""PhraseFinder (§5.1.2).

Verifies phrase occurrence *during* the posting-list intersection using
the word-offset information kept in the index: an element contains the
phrase ``t1 t2 … tk`` iff its direct text has an occurrence of ``t1`` at
offset ``o`` and of each ``t_i`` at offset ``o+i-1`` — no database access,
no text re-scan.

Counts of phrase occurrences are turned into scores via a pluggable
per-count weight (the paper: "counts of phrase occurrences are then used
to generate appropriate score values").
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro import obs as _obs
from repro.resilience import guard as _resguard
from repro.access.results import PhraseMatch
from repro.index.inverted import P_DOC, P_NODE, P_OFFSET, P_POS
from repro.xmldb.store import XMLStore


class PhraseOccurrence(NamedTuple):
    """One phrase occurrence: where the phrase *starts*."""

    doc_id: int
    pos: int       # region position of the first word
    node_id: int   # element whose direct text holds the phrase
    offset: int    # word offset of the first word within that element


class PhraseFinder:
    """The PhraseFinder access method."""

    name = "PhraseFinder"

    def __init__(self, store: XMLStore, phrase_weight: float = 1.0,
                 strict: bool = False):
        self.store = store
        self.phrase_weight = phrase_weight
        #: raise :class:`~repro.errors.UnknownTermError` on phrase terms
        #: absent from the index (mirrors TermJoin's ``strict`` flag)
        self.strict = strict
        #: access-method counters of the most recent
        #: :meth:`occurrences`/:meth:`run` (``postings_scanned``,
        #: ``offset_comparisons``, ``candidates_rejected``,
        #: ``phrase_occurrences``) — surfaced by EXPLAIN ANALYZE.
        self.last_stats: Dict[str, int] = {}

    def run(self, phrase_terms: Sequence[str]) -> List[PhraseMatch]:
        """Elements whose direct text contains the phrase, with occurrence
        counts and scores, in document order."""
        occurrences = self.occurrences(phrase_terms)
        out: List[PhraseMatch] = []
        counts: Dict[Tuple[int, int], int] = {}
        for occ in occurrences:
            key = (occ.doc_id, occ.node_id)
            counts[key] = counts.get(key, 0) + 1
        for (doc_id, node_id), count in sorted(counts.items()):
            out.append(
                PhraseMatch(
                    doc_id, node_id, count, count * self.phrase_weight
                )
            )
        self.last_stats["phrase_matches"] = len(out)
        return out

    def occurrences(
        self, phrase_terms: Sequence[str]
    ) -> List[PhraseOccurrence]:
        """Every phrase occurrence, with the start word's region
        position — the input :class:`~repro.access.phrasejoin.PhraseJoin`
        needs to score *ancestors* by phrase counts.  Sorted by
        (doc, pos)."""
        if not phrase_terms:
            self.last_stats = {
                "postings_scanned": 0, "offset_comparisons": 0,
                "candidates_rejected": 0, "phrase_occurrences": 0,
            }
            return []
        index = self.store.index
        counters = self.store.counters
        terms = [t.lower() for t in phrase_terms]
        scanned = 0
        comparisons = 0
        rejected = 0

        # Guard hook: hoisted boolean per posting when inactive, a
        # deadline/cancellation check every 256 postings when active.
        guard = _resguard.GUARD
        guard_active = guard.active
        gi = 0

        # Offsets per (doc, node) for each term, gathered in one pass per
        # posting list.  Intersection and offset verification are fused:
        # a node survives only while every prefix term has a matching
        # offset chain.  Each chain remembers where it started.
        first = index.postings(terms[0], strict=self.strict)
        counters.index_lookups += 1
        counters.postings_read += len(first)
        scanned += len(first)
        # chains: (doc, node) -> {end_offset: (start_pos, start_offset)}
        chains: Dict[Tuple[int, int], Dict[int, Tuple[int, int]]] = {}
        for p in first:
            if guard_active:
                gi += 1
                if not (gi & 255):
                    guard.tick(256)
            chains.setdefault((p[P_DOC], p[P_NODE]), {})[p[P_OFFSET]] = (
                p[P_POS], p[P_OFFSET]
            )

        for term in terms[1:]:
            if not chains:
                break
            if guard_active:
                guard.tick()
            postings = index.postings(term, strict=self.strict)
            counters.index_lookups += 1
            counters.postings_read += len(postings)
            scanned += len(postings)
            comparisons += len(postings)  # one offset check per posting
            nxt: Dict[Tuple[int, int], Dict[int, Tuple[int, int]]] = {}
            for p in postings:
                if guard_active:
                    gi += 1
                    if not (gi & 255):
                        guard.tick(256)
                key = (p[P_DOC], p[P_NODE])
                prev = chains.get(key)
                if prev is not None and p[P_OFFSET] - 1 in prev:
                    nxt.setdefault(key, {})[p[P_OFFSET]] = \
                        prev[p[P_OFFSET] - 1]
            # candidate (doc, node) chains that no posting of this term
            # could extend are rejected here, never re-examined
            rejected += len(chains) - len(nxt)
            chains = nxt

        occs = [
            PhraseOccurrence(doc_id, start_pos, node_id, start_offset)
            for (doc_id, node_id), ends in chains.items()
            for (start_pos, start_offset) in ends.values()
        ]
        occs.sort()
        self.last_stats = {
            "postings_scanned": scanned,
            "offset_comparisons": comparisons,
            "candidates_rejected": rejected,
            "phrase_occurrences": len(occs),
        }
        rec = _obs.RECORDER
        if rec.enabled:
            rec.count("phrasefinder.runs")
            for key, value in self.last_stats.items():
                rec.count(f"phrasefinder.{key}", value)
        return occs
