"""PhraseJoin: TermJoin's stack over PhraseFinder's phrase occurrences.

The paper's two score-generating access methods compose naturally: the
``ScoreFoo`` family scores an element by *phrase* occurrence counts over
its whole subtree, so an efficient plan first finds phrase occurrences
with PhraseFinder (offset verification during intersection, §5.1.2), then
scores every ancestor with TermJoin's single stack pass (§5.1.1) — one
"posting" per phrase occurrence, weighted per phrase.

A single-term phrase degenerates to plain TermJoin, so PhraseJoin is the
general score-generating method for ``ScoreFoo``-style weighted phrase
scoring, and the plan compiler lowers multi-word Score clauses onto it.

Semantics note: phrases match within one text node's direct text (the
standard IR behaviour PhraseFinder implements); a phrase spanning an
element boundary does not count.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro import obs as _obs
from repro.resilience import guard as _resguard
from repro.access.phrasefinder import PhraseFinder
from repro.access.results import ScoredElement
from repro.xmldb.store import XMLStore
from repro.xmldb.text import tokenize_phrase


class PhraseJoin:
    """Score every element whose subtree contains at least one occurrence
    of any query phrase: ``score = Σ_i weight_i · count_i(subtree)``."""

    name = "PhraseJoin"

    def __init__(
        self,
        store: XMLStore,
        phrases: Sequence[str],
        weights: Sequence[float],
    ):
        if len(phrases) != len(weights):
            raise ValueError("phrases and weights must align")
        self.store = store
        self.phrases = [tokenize_phrase(p) for p in phrases]
        self.weights = list(weights)
        self._finder = PhraseFinder(store)
        #: access-method counters of the most recent :meth:`run`
        #: (PhraseFinder's, summed over phrases, plus the join's own
        #: ``stack_pushes``/``stack_pops``/``elements_scored``).
        self.last_stats: Dict[str, int] = {}

    @classmethod
    def from_scorer(cls, store: XMLStore, scorer) -> "PhraseJoin":
        """Build from a :class:`~repro.core.scoring.WeightedCountScorer`
        (its phrase list and weights carry over verbatim)."""
        phrases = []
        weights = []
        for terms, weight in scorer.phrases:
            phrases.append(" ".join(terms))
            weights.append(weight)
        return cls(store, phrases, weights)

    def run(self, phrases: Sequence[str] = ()) -> List[ScoredElement]:
        """Run the join.  ``phrases`` (if given) overrides the
        constructor's phrase list, keeping the constructor weights when
        the count matches (source-compatibility with the TermJoinScan
        operator, which passes its term list through)."""
        phrase_lists = (
            [tokenize_phrase(p) for p in phrases] if phrases
            else self.phrases
        )
        weights = (
            self.weights if len(phrase_lists) == len(self.weights)
            else [1.0] * len(phrase_lists)
        )

        # One merged, (doc, pos)-sorted occurrence stream, tagged with
        # the phrase index (Timsort merges the per-phrase sorted runs).
        merged: List[Tuple[int, int, int, int]] = []
        finder_totals: Dict[str, int] = {}
        for pi, terms in enumerate(phrase_lists):
            for occ in self._finder.occurrences(terms):
                merged.append((occ.doc_id, occ.pos, occ.node_id, pi))
            for key, value in self._finder.last_stats.items():
                finder_totals[key] = finder_totals.get(key, 0) + value
        merged.sort()

        out: List[ScoredElement] = []
        # stack entries: [node_id, counts per phrase index]
        stack: List[Tuple[int, List[int]]] = []
        n_phrases = len(phrase_lists)
        cur_doc = None
        cur_doc_id = -1
        parents: List[int] = []
        ends: List[int] = []

        def pop_and_emit() -> None:
            node_id, counts = stack.pop()
            if stack:
                top_counts = stack[-1][1]
                for i in range(n_phrases):
                    top_counts[i] += counts[i]
            score = sum(
                weights[i] * counts[i]
                for i in range(n_phrases) if counts[i]
            )
            out.append(ScoredElement(cur_doc_id, node_id, score))

        # Guard hook: hoisted boolean per occurrence when inactive, a
        # deadline/cancellation check every 256 occurrences when active.
        guard = _resguard.GUARD
        guard_active = guard.active
        gi = 0

        for doc_id, pos, node_id, pi in merged:
            if guard_active:
                gi += 1
                if not (gi & 255):
                    guard.tick(256)
            if doc_id != cur_doc_id:
                while stack:
                    pop_and_emit()
                cur_doc = self.store.document(doc_id)
                cur_doc_id = doc_id
                parents = cur_doc.parents
                ends = cur_doc.ends
            while stack and ends[stack[-1][0]] < pos:
                pop_and_emit()
            top_node = stack[-1][0] if stack else -1
            chain: List[int] = []
            cur = node_id
            while cur != -1 and cur != top_node:
                chain.append(cur)
                cur = parents[cur]
            for nid in reversed(chain):
                stack.append((nid, [0] * n_phrases))
            stack[-1][1][pi] += 1

        while stack:
            pop_and_emit()
        # pushes == pops == len(out): every pushed entry is popped once
        # and every pop emits one element, so nothing is counted in the
        # merge loop.
        self.last_stats = dict(finder_totals)
        self.last_stats.update(
            stack_pushes=len(out), stack_pops=len(out),
            elements_scored=len(out),
        )
        rec = _obs.RECORDER
        if rec.enabled:
            rec.count("phrasejoin.runs")
            rec.count("phrasejoin.stack_pushes", len(out))
            rec.count("phrasejoin.stack_pops", len(out))
            rec.count("phrasejoin.elements_scored", len(out))
        return out
