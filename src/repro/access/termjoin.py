"""TermJoin and Enhanced TermJoin (Fig. 11, §5.1.1, §6.1).

TermJoin generalizes the stack-based structural-join family to IR-style
score generation: one merge pass over the per-term posting lists, with a
stack holding the ancestor chain of the current occurrence.  Every element
whose subtree contains at least one query-term occurrence is pushed
exactly once, accumulates per-term counters (and, in complex mode, the
ordered occurrence buffer and child-relevance statistics), and is scored
and emitted when popped — i.e. when the merge has passed its region, so
all information about its subtree is complete.

Modes, matching the ``s`` flag of Fig. 11:

- **simple**: per-term counters only; scored via
  ``scorer.score_from_counts``;
- **complex** (``complex_scoring=True``): additionally maintains the
  document-ordered occurrence buffer (``AppendToBufferAndList`` in the
  pseudo-code) and the number of relevant children, and needs the total
  child count of each popped element.  Base TermJoin obtains that count by
  *navigating* the stored document (first-child / next-sibling walks, each
  step a data access); :class:`EnhancedTermJoin` instead reads it from the
  structure index in O(1) — the §6.1 variant that wins by a few times.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.resilience import guard as _resguard
from repro.access.results import ScoredElement
from repro.index.inverted import P_DOC, P_NODE, P_OFFSET, P_POS
from repro.xmldb.document import Document
from repro.xmldb.store import XMLStore


class _StackEntry:
    """One stacked ancestor: counters plus (complex mode) buffer/stats."""

    __slots__ = ("node_id", "counts", "occs", "relevant_children")

    def __init__(self, node_id: int, track_occurrences: bool):
        self.node_id = node_id
        self.counts: Dict[str, int] = {}
        self.occs: Optional[List[Tuple[str, int, int]]] = (
            [] if track_occurrences else None
        )
        self.relevant_children = 0


class TermJoin:
    """The TermJoin access method.

    ``scorer`` must provide ``score_from_counts`` (simple mode) or
    ``score_from_occurrences`` (complex mode) — see
    :mod:`repro.access.scorers`.
    """

    #: Human-readable name used by the benchmark tables.
    name = "TermJoin"

    def __init__(self, store: XMLStore, scorer,
                 complex_scoring: bool = False, strict: bool = False):
        self.store = store
        self.scorer = scorer
        self.complex_scoring = complex_scoring
        #: raise :class:`~repro.errors.UnknownTermError` on terms absent
        #: from the index instead of treating them as empty posting lists
        self.strict = strict
        #: access-method counters of the most recent :meth:`run`
        #: (``postings_scanned``, ``stack_pushes``, ``stack_pops``,
        #: ``elements_scored``) — surfaced by EXPLAIN ANALYZE.
        self.last_stats: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Child counting: base TermJoin navigates the data (§6.1: "a data
    # access to the database is performed and some navigation is needed
    # to get the number of children").
    # ------------------------------------------------------------------

    def _child_count(self, doc: Document, node_id: int) -> int:
        counters = self.store.counters
        count = 0
        last = doc.last_descendant(node_id)
        child = node_id + 1
        while child <= last:
            count += 1
            counters.navigations += 1
            child = doc.last_descendant(child) + 1
        counters.nodes_fetched += 1
        return count

    # ------------------------------------------------------------------
    # The merge pass
    # ------------------------------------------------------------------

    def run(self, terms: Sequence[str]) -> List[ScoredElement]:
        """Score every element whose subtree contains at least one
        occurrence of any term in ``terms``.  Output order is pop order =
        ascending end key (children before parents)."""
        index = self.store.index
        counters = self.store.counters
        track = self.complex_scoring

        # Merge the per-term posting lists into one document-ordered
        # stream.  Each list is already sorted by (doc, pos); Timsort on
        # the concatenation performs exactly the k-way run merge of the
        # paper's "single merge pass".
        merged: List[Tuple[int, int, int, int, str]] = []
        guard = _resguard.GUARD
        guard_active = guard.active
        for term in terms:
            if guard_active:
                guard.tick()
            postings = index.postings(term, strict=self.strict)
            counters.index_lookups += 1
            counters.postings_read += len(postings)
            merged.extend(
                (p[P_DOC], p[P_POS], p[P_NODE], p[P_OFFSET], term)
                for p in postings
            )
        merged.sort()

        out: List[ScoredElement] = []
        stack: List[_StackEntry] = []
        cur_doc: Optional[Document] = None
        cur_doc_id = -1
        parents: List[int] = []
        ends: List[int] = []

        def pop_and_emit() -> None:
            popped = stack.pop()
            if stack:
                top = stack[-1]
                for t, c in popped.counts.items():
                    top.counts[t] = top.counts.get(t, 0) + c
                if track:
                    assert top.occs is not None and popped.occs is not None
                    top.occs.extend(popped.occs)
                top.relevant_children += 1
            assert cur_doc is not None
            if track:
                n_children = self._child_count(cur_doc, popped.node_id)
                # Canonical occurrence order is (text node id, offset):
                # a node's direct text counts as appearing at the node's
                # start.  The merge stream orders trailing mixed content
                # by true position instead, so normalize before scoring —
                # every implementation (algebra oracle, Generalized Meet,
                # composites) uses this same convention.
                assert popped.occs is not None
                popped.occs.sort(key=lambda o: (o[1], o[2]))
                score = self.scorer.score_from_occurrences(
                    popped.occs, n_children, popped.relevant_children
                )
            else:
                score = self.scorer.score_from_counts(popped.counts)
            out.append(ScoredElement(cur_doc_id, popped.node_id, score))

        # Guard hook: one hoisted boolean test per posting when inactive,
        # a deadline/cancellation check every 256 postings when active.
        gi = 0

        for doc_id, pos, node_id, offset, term in merged:
            if guard_active:
                gi += 1
                if not (gi & 255):
                    guard.tick(256)
            if doc_id != cur_doc_id:
                while stack:
                    pop_and_emit()
                cur_doc = self.store.document(doc_id)
                cur_doc_id = doc_id
                parents = cur_doc.parents
                ends = cur_doc.ends
            # Pop every stacked element whose region ended before pos.
            while stack and ends[stack[-1].node_id] < pos:
                pop_and_emit()
            # Push the not-yet-stacked ancestors of this occurrence.
            top_node = stack[-1].node_id if stack else -1
            chain: List[int] = []
            cur = node_id
            while cur != -1 and cur != top_node:
                chain.append(cur)
                cur = parents[cur]
            for nid in reversed(chain):
                stack.append(_StackEntry(nid, track))
            # Credit the occurrence to its directly-containing element.
            top = stack[-1]
            top.counts[term] = top.counts.get(term, 0) + 1
            if track:
                assert top.occs is not None
                top.occs.append((term, node_id, offset))

        while stack:
            pop_and_emit()
        # Every pushed entry is popped exactly once and every pop emits
        # exactly one element, so pushes == pops == len(out): the stack
        # counters cost nothing in the merge loop.
        self.last_stats = {
            "postings_scanned": len(merged),
            "stack_pushes": len(out),
            "stack_pops": len(out),
            "elements_scored": len(out),
        }
        rec = _obs.RECORDER
        if rec.enabled:
            prefix = self.name.lower()
            rec.count(f"{prefix}.runs")
            for key, value in self.last_stats.items():
                rec.count(f"{prefix}.{key}", value)
        return out


class EnhancedTermJoin(TermJoin):
    """TermJoin with the child count taken from the structure index
    instead of data navigation (§6.1: "uses an index structure to get a
    parent of a given node; along with the parent information, the number
    of children of this parent is returned").  Only meaningful with the
    complex scoring function — the simple function never looks at
    children, which is why the paper omits Enhanced TermJoin from
    Table 1."""

    name = "EnhancedTermJoin"

    def _child_count(self, doc: Document, node_id: int) -> int:
        self.store.counters.index_lookups += 1
        return self.store.structure.fanout(doc.doc_id, node_id)
