"""Declared registry of the physical access methods.

The paper offers rival physical operators for the same logical work —
TermJoin vs EnhancedTermJoin vs the Comp1/Comp2 baselines for term
scoring, PhraseFinder vs Comp3 for phrase finding, PhraseJoin for
phrase scoring, Pick for score utilization.  The cost-based planner
(:mod:`repro.plan.optimizer`) enumerates its alternatives from this
table rather than from hard-coded lists, and the ``tix lint``
``planner-registry-drift`` rule pins the table to the code both ways:
every concrete access-method class under ``repro/access`` /
``repro/joins`` (a public class with a ``name`` literal and a ``run``
method) must be declared here, and every entry must name such a class.

Each entry declares the operator's *preconditions* — the properties the
planner needs to decide whether the method is a legal alternative for a
given query:

- ``work``: the logical job — ``"score"`` (score every element whose
  subtree matches the query items), ``"phrase-find"`` (enumerate phrase
  occurrences), or ``"pick"`` (score utilization);
- ``phrases``: whether the method handles multi-word phrase items;
- ``terms``: whether the method handles plain single-word term items;
- ``complex_scoring``: whether the method supports the paper's complex
  (occurrence-level) scoring mode;
- ``cost``: the key of the cost formula in :mod:`repro.plan.rules`.

The mapping is a **pure literal** on purpose: the lint rule reads it
with ``ast.literal_eval`` from the tree being checked (the same idiom
as the metric catalog and the fault-point registry), so linting never
depends on which copy of the package is importable.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = [
    "ACCESS_METHODS",
    "method_properties",
    "score_methods",
    "build_score_method",
]

# tix-lint: this mapping is read by AST, keep it a pure literal.
ACCESS_METHODS: Dict[str, Dict[str, Any]] = {
    "TermJoin": {
        "module": "repro.access.termjoin",
        "work": "score",
        "terms": True,
        "phrases": False,
        "complex_scoring": True,
        "cost": "termjoin",
        "doc": "stack-based single-pass posting merge (Fig. 11)",
    },
    "EnhancedTermJoin": {
        "module": "repro.access.termjoin",
        "work": "score",
        "terms": True,
        "phrases": False,
        "complex_scoring": True,
        "cost": "enhanced-termjoin",
        "doc": "TermJoin with child counts from the structure index",
    },
    "Comp1": {
        "module": "repro.access.composite",
        "work": "score",
        "terms": True,
        "phrases": False,
        "complex_scoring": True,
        "cost": "comp1",
        "doc": "composite baseline: per-term ancestor walks + union",
    },
    "Comp2": {
        "module": "repro.access.composite",
        "work": "score",
        "terms": True,
        "phrases": False,
        "complex_scoring": True,
        "cost": "comp2",
        "doc": "composite baseline with structural joins pushed down",
    },
    "PhraseJoin": {
        "module": "repro.access.phrasejoin",
        "work": "score",
        "terms": True,
        "phrases": True,
        "complex_scoring": False,
        "cost": "phrasejoin",
        "doc": "stack join over phrase occurrences (single words "
               "degenerate to TermJoin semantics)",
    },
    "PhraseFinder": {
        "module": "repro.access.phrasefinder",
        "work": "phrase-find",
        "terms": False,
        "phrases": True,
        "complex_scoring": False,
        "cost": "phrasefinder",
        "doc": "phrase verification during posting intersection",
    },
    "Comp3": {
        "module": "repro.access.composite",
        "work": "phrase-find",
        "terms": False,
        "phrases": True,
        "complex_scoring": False,
        "cost": "comp3",
        "doc": "phrase baseline: intersect, refetch, filter",
    },
    "PickAccess": {
        "module": "repro.access.pick",
        "work": "pick",
        "terms": False,
        "phrases": False,
        "complex_scoring": False,
        "cost": "pick",
        "doc": "stack-based Pick evaluator (Fig. 12)",
    },
}


def method_properties(name: str) -> Dict[str, Any]:
    """The declared properties of one access method; raises
    ``KeyError`` on undeclared names (the planner treats that as a
    registry-drift bug, which ``tix lint`` catches statically)."""
    return ACCESS_METHODS[name]


def score_methods(  # tix-lint: disable=guard-hook (fixed 8-entry dict)
        phrase_mode: bool) -> List[str]:
    """Names of the score-generating methods whose preconditions admit
    the query: with any multi-word phrase item only phrase-capable
    methods qualify, otherwise every term-capable scorer does.
    Registry order is preserved — it is the planner's tie-break."""
    out: List[str] = []
    for name, props in ACCESS_METHODS.items():
        if props["work"] != "score":
            continue
        if phrase_mode and not props["phrases"]:
            continue
        if not phrase_mode and not props["terms"]:
            continue
        out.append(name)
    return out


def build_score_method(name: str, store: Any, scorer: Any) -> Any:
    """Construct the named score-generating method over ``store`` with
    ``scorer``.  PhraseJoin is built through its scorer adapter (the
    phrase list and weights carry over); the others share the
    ``(store, scorer)`` constructor."""
    props = method_properties(name)
    if props["work"] != "score":
        raise ValueError(f"{name} is not a score-generating method")
    if name == "TermJoin":
        from repro.access.termjoin import TermJoin

        return TermJoin(store, scorer)
    if name == "EnhancedTermJoin":
        from repro.access.termjoin import EnhancedTermJoin

        return EnhancedTermJoin(store, scorer)
    if name == "Comp1":
        from repro.access.composite import Comp1

        return Comp1(store, scorer)
    if name == "Comp2":
        from repro.access.composite import Comp2

        return Comp2(store, scorer)
    if name == "PhraseJoin":
        from repro.access.phrasejoin import PhraseJoin

        return PhraseJoin.from_scorer(store, scorer)
    raise ValueError(f"no constructor for access method {name!r}")
