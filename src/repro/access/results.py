"""Result records shared by the access methods."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScoredElement:
    """One scored element produced by a score-generating access method
    (TermJoin, Generalized Meet, the composite plans, PhraseFinder): a
    global node address plus its relevance score."""

    doc_id: int
    node_id: int
    score: float

    def key(self):
        """(doc, node) grouping key."""
        return (self.doc_id, self.node_id)


@dataclass(frozen=True)
class PhraseMatch:
    """One element containing phrase occurrences, with the count of
    occurrences and the resulting score."""

    doc_id: int
    node_id: int
    count: int
    score: float
