"""Scorer protocols for the score-generating access methods.

TermJoin's ``ComputeScore`` callback (Fig. 11) comes in two shapes,
matching the paper's two scoring modes (§5.1.1 "Complex Scoring
Function"):

- **simple** (``s`` = true): the score of a popped element depends only on
  its accumulated per-term counters — :class:`SimpleScorer`;
- **complex** (``s`` = false): the score additionally examines the buffer
  of term occurrences (for proximity) and the number of relevant vs total
  children — :class:`ComplexScorer`.

:class:`~repro.core.scoring.WeightedCountScorer` satisfies
:class:`SimpleScorer`; :class:`~repro.core.scoring.ProximityScorer`
satisfies :class:`ComplexScorer`.  These protocols exist so custom scoring
functions can be plugged into the access methods, as the paper's
declarative-scoring goal requires.
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence, Tuple, runtime_checkable


@runtime_checkable
class SimpleScorer(Protocol):
    """Scores from per-term occurrence counters only."""

    def score_from_counts(self, counts: Mapping[str, int]) -> float:
        """Score of an element whose subtree holds ``counts[t]``
        occurrences of each query term ``t``."""
        ...


@runtime_checkable
class ComplexScorer(Protocol):
    """Scores from the ordered occurrence buffer plus child statistics."""

    def score_from_occurrences(
        self,
        occurrences: Sequence[Tuple[str, int, int]],
        n_children: int,
        n_relevant_children: int,
    ) -> float:
        """Score of an element given its document-ordered occurrence list
        ``(term, text_node_id, offset)``, total child-element count, and
        the number of children whose subtrees contain at least one query
        term."""
        ...
