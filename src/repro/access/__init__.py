"""Access methods (§5-6): the performance layer of the reproduction.

Score-generating methods:

- :class:`~repro.access.termjoin.TermJoin` — the stack-based TermJoin
  (Fig. 11), simple and complex scoring modes;
- :class:`~repro.access.termjoin.EnhancedTermJoin` — child counts from
  the structure index instead of navigation (§6.1);
- :class:`~repro.access.phrasefinder.PhraseFinder` — phrase verification
  during posting intersection via word offsets (§5.1.2);
- :func:`~repro.joins.meet.generalized_meet` — the Generalized Meet
  baseline (re-exported here for symmetry).

Baselines:

- :class:`~repro.access.composite.Comp1` — direct composite of standard
  operators (per-term selection → grouping → scored union);
- :class:`~repro.access.composite.Comp2` — composite with structural
  joins pushed down (full element-table joins);
- :class:`~repro.access.composite.Comp3` — phrase baseline
  (intersect-then-refetch-and-filter).

Score-utilizing methods:

- :class:`~repro.access.pick.PickAccess` — the stack-based Pick evaluator
  (Fig. 12).
"""

from repro.access.composite import Comp1, Comp2, Comp3
from repro.access.phrasefinder import PhraseFinder, PhraseOccurrence
from repro.access.phrasejoin import PhraseJoin
from repro.access.pick import PickAccess
from repro.access.results import PhraseMatch, ScoredElement
from repro.access.termjoin import EnhancedTermJoin, TermJoin
from repro.joins.meet import generalized_meet

__all__ = [
    "Comp1",
    "Comp2",
    "Comp3",
    "PhraseFinder",
    "PhraseOccurrence",
    "PhraseJoin",
    "PickAccess",
    "PhraseMatch",
    "ScoredElement",
    "EnhancedTermJoin",
    "TermJoin",
    "generalized_meet",
]
