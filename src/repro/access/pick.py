"""The Pick access method (Fig. 12): stack-based, single pass, linear.

Evaluates the Pick operator over a scored data tree using the two
user-supplied decisions of the paper's algorithm:

- ``DetWorth`` — is a candidate worth returning on its own (the
  :class:`~repro.core.pick.PickCriterion` encapsulates the paper's default:
  relevance threshold + child-qualification percentage, optionally driven
  by a score histogram);
- ``IsSameClass`` — optional horizontal redundancy elimination between
  sibling candidates of the same return class.

The paper's pseudo-code interleaves a node stack and an answer stack over
the leaf list; its net semantics (every candidate judged once, a candidate
blocked when its direct parent is picked, descendants of dropped nodes
promoted) are implemented here as one iterative document-order pass with
an explicit stack — no recursion, O(nodes) time, O(depth) live stack — and
are tested equivalent to the declarative two-pass formulation in
:mod:`repro.core.pick`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro import obs as _obs
from repro.resilience import guard as _resguard
from repro.core.pick import PickCriterion
from repro.core.trees import SNode, STree


class PickAccess:
    """Stack-based evaluator for the Pick operator."""

    name = "Pick"

    def __init__(self, criterion: PickCriterion,
                 is_candidate: Optional[Callable[[SNode], bool]] = None):
        self.criterion = criterion
        #: default candidate rule: every scored node is a data IR-node
        self.is_candidate = is_candidate or (
            lambda n: n.score is not None
        )
        #: access-method counters of the most recent
        #: :meth:`picked_nodes`/:meth:`run` (``max_stack_depth``,
        #: ``candidates_considered``, ``candidates_picked``,
        #: ``candidates_eliminated``) — surfaced by EXPLAIN ANALYZE.
        self.last_stats: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Decision pass
    # ------------------------------------------------------------------

    def picked_nodes(self, tree: STree) -> List[SNode]:
        """All picked candidates, document order, in one stack-driven
        pass.  ``worth`` reads only the children's scores, so each node is
        decided the moment it is first visited; the stack carries the
        parent's picked flag downward."""
        criterion = self.criterion
        is_candidate = self.is_candidate
        picked: List[SNode] = []
        picked_ids = set()
        candidates = 0
        max_depth = 1
        # Guard hook: hoisted boolean per visited node when inactive, a
        # deadline/cancellation check every 128 nodes when active.
        guard = _resguard.GUARD
        guard_active = guard.active
        gi = 0
        # stack of (node, parent_picked)
        stack: List[Tuple[SNode, bool]] = [(tree.root, False)]
        while stack:
            if guard_active:
                gi += 1
                if not (gi & 127):
                    guard.tick(128)
            node, parent_picked = stack.pop()
            node_picked = False
            if not parent_picked and is_candidate(node):
                candidates += 1
                if criterion.worth(node, node.children):
                    node_picked = True
                    picked.append(node)
                    picked_ids.add(id(node))
            for child in reversed(node.children):
                stack.append((child, node_picked))
            if len(stack) > max_depth:
                max_depth = len(stack)

        picked.sort(key=lambda n: n.order_start)
        if criterion.is_same_class is not None:
            picked = self._horizontal(tree, picked, picked_ids)
        self.last_stats = {
            "max_stack_depth": max_depth,
            "candidates_considered": candidates,
            "candidates_picked": len(picked),
            "candidates_eliminated": candidates - len(picked),
        }
        rec = _obs.RECORDER
        if rec.enabled:
            rec.count("pick.runs")
            rec.count("pick.candidates_considered", candidates)
            rec.count("pick.candidates_picked", len(picked))
            rec.count("pick.candidates_eliminated", candidates - len(picked))
            rec.observe("pick.max_stack_depth", max_depth)
        return picked

    def _horizontal(
        self, tree: STree, picked: List[SNode], picked_ids: set
    ) -> List[SNode]:
        """Drop picked siblings redundant under ``IsSameClass`` (keep the
        document-first of each class per parent)."""
        same = self.criterion.is_same_class
        assert same is not None
        survivors: List[SNode] = []
        stack: List[SNode] = [tree.root]
        while stack:
            node = stack.pop()
            leaders: List[SNode] = []
            for child in node.children:
                if id(child) in picked_ids:
                    if any(same(leader, child) for leader in leaders):
                        picked_ids.discard(id(child))
                    else:
                        leaders.append(child)
            for child in reversed(node.children):
                stack.append(child)
        for n in picked:
            if id(n) in picked_ids:
                survivors.append(n)
        return survivors

    # ------------------------------------------------------------------
    # Full operator: decide + prune
    # ------------------------------------------------------------------

    def run(self, tree: STree) -> Tuple[List[SNode], Optional[STree]]:
        """Return ``(picked candidates, pruned output tree)``.  Dropped
        candidates are removed with their children promoted; non-candidate
        nodes always survive as context."""
        picked = self.picked_nodes(tree)
        picked_ids = {id(n) for n in picked}
        is_candidate = self.is_candidate

        # Iterative prune (post-order via explicit stack) to keep the
        # access method recursion-free for deep inputs.
        # frames: (node, child_iter_index, rebuilt_children)
        result_of = {}
        stack: List[Tuple[SNode, int, List[SNode]]] = [(tree.root, 0, [])]
        guard = _resguard.GUARD
        guard_active = guard.active
        gi = 0
        while stack:
            if guard_active:
                gi += 1
                if not (gi & 255):
                    guard.tick(256)
            node, i, rebuilt = stack.pop()
            if i < len(node.children):
                stack.append((node, i + 1, rebuilt))
                stack.append((node.children[i], 0, []))
                continue
            # all children processed; children results in rebuilt
            if is_candidate(node) and id(node) not in picked_ids:
                result_of[id(node)] = rebuilt  # dropped: promote children
            else:
                clone = node.shallow_copy()
                clone.children = rebuilt
                result_of[id(node)] = [clone]
            if stack:
                parent_frame = stack[-1]
                parent_frame[2].extend(result_of.pop(id(node)))

        roots = result_of.pop(id(tree.root))
        if not roots:
            return picked, None
        if len(roots) == 1:
            return picked, STree(roots[0])
        context = tree.root.shallow_copy()
        context.score = None
        context.children = roots
        return picked, STree(context)
