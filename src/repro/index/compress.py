"""Posting-list compression: delta + varint encoding.

A real disk-based system (the paper loads 500 MB of INEX into 5 GB of
TIMBER storage) keeps inverted lists compressed.  This module provides
the classic scheme — per-posting delta encoding of the sort key followed
by unsigned varints — behind the same :class:`PostingList` API, so every
access method runs unchanged over a compressed index
(:meth:`XMLStore.enable_index_compression` flips it on).

Posting fields ``(doc, pos, node, offset)`` are encoded as:

- ``Δdoc``    — delta against the previous posting's doc id;
- ``Δpos``    — delta against the previous pos when the doc repeats,
  else the absolute pos (pos is strictly increasing within a doc);
- ``Δnode``   — zig-zag delta against the previous node id in the same
  doc (nodes are non-monotonic across pops, hence zig-zag);
- ``offset``  — absolute (small).

Decoding materializes plain tuples, so correctness tests can compare
byte-identical posting lists.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, TYPE_CHECKING

from repro import obs as _obs
from repro.index.inverted import InvertedIndex, Posting, PostingList

if TYPE_CHECKING:  # pragma: no cover
    from repro.xmldb.store import XMLStore


# ----------------------------------------------------------------------
# Varint primitives
# ----------------------------------------------------------------------

def write_varint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError("varint requires a non-negative value")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, i: int) -> Tuple[int, int]:
    """Read an unsigned varint at offset ``i``; returns (value, next_i)."""
    result = 0
    shift = 0
    while True:
        byte = data[i]
        i += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, i
        shift += 7


def zigzag(value: int) -> int:
    """Map a signed int to unsigned (0, -1, 1, -2 → 0, 1, 2, 3)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


# ----------------------------------------------------------------------
# Posting-list codec
# ----------------------------------------------------------------------

def encode_postings(postings: List[Posting]) -> bytes:
    """Encode a (doc, pos)-sorted posting list."""
    out = bytearray()
    write_varint(len(postings), out)
    prev_doc = 0
    prev_pos = 0
    prev_node = 0
    for doc, pos, node, offset in postings:
        d_doc = doc - prev_doc
        write_varint(d_doc, out)
        if d_doc:
            prev_pos = 0
            prev_node = 0
        write_varint(pos - prev_pos, out)
        write_varint(zigzag(node - prev_node), out)
        write_varint(offset, out)
        prev_doc, prev_pos, prev_node = doc, pos, node
    return bytes(out)


def decode_postings(data: bytes) -> List[Posting]:
    """Decode :func:`encode_postings` output."""
    i = 0
    count, i = read_varint(data, i)
    postings: List[Posting] = []
    doc = 0
    pos = 0
    node = 0
    for _ in range(count):
        d_doc, i = read_varint(data, i)
        doc += d_doc
        if d_doc:
            pos = 0
            node = 0
        d_pos, i = read_varint(data, i)
        pos += d_pos
        zz, i = read_varint(data, i)
        node += unzigzag(zz)
        offset, i = read_varint(data, i)
        postings.append((doc, pos, node, offset))
    return postings


# ----------------------------------------------------------------------
# Compressed index
# ----------------------------------------------------------------------

class CompressedInvertedIndex:
    """Drop-in replacement for :class:`InvertedIndex` that stores each
    posting list varint-compressed and decodes on access.

    ``postings`` returns a fully decoded :class:`PostingList` and always
    pays the decode — caching decoded lists is the job of the LRU layer
    above (:class:`repro.perf.postings.CachingIndex`, enabled via
    :meth:`XMLStore.enable_postings_cache`).  The single most-recent-term
    cache this class used to keep internally is gone: it double-counted
    ``index.postings_returned`` on hits against the cold-path counters,
    and the LRU layer subsumes it.
    """

    def __init__(self, blobs: Dict[str, bytes], n_documents: int):
        self._blobs = blobs
        self.n_documents = n_documents

    @classmethod
    def from_index(cls, index: InvertedIndex) -> "CompressedInvertedIndex":
        blobs = {
            term: encode_postings(index.postings(term).postings)
            for term in index.vocabulary()
        }
        return cls(blobs, index.n_documents)

    @classmethod
    def build(cls, store: "XMLStore") -> "CompressedInvertedIndex":
        return cls.from_index(InvertedIndex.build(store))

    # -- API parity with InvertedIndex -----------------------------------

    def postings(self, term: str, strict: bool = False) -> PostingList:
        rec = _obs.RECORDER
        if rec.enabled:
            rec.count("index.posting_fetches")
        blob = self._blobs.get(term)
        if blob is None:
            if strict:
                from repro.errors import UnknownTermError

                raise UnknownTermError(f"term {term!r} not in index")
            return PostingList(term, [])
        decoded = PostingList(term, decode_postings(blob))
        if rec.enabled:
            rec.count("index.posting_decodes")
            rec.count("index.bytes_read", len(blob))
            rec.count("index.postings_returned", len(decoded))
        return decoded

    def __contains__(self, term: str) -> bool:
        return term in self._blobs

    def frequency(self, term: str) -> int:
        return len(self.postings(term))

    def document_frequency(self, term: str) -> int:
        return self.postings(term).document_frequency

    def idf(self, term: str) -> float:
        import math

        df = self.document_frequency(term)
        return math.log((self.n_documents + 1) / (df + 1)) + 1.0

    def vocabulary(self) -> Iterable[str]:
        return self._blobs.keys()

    @property
    def n_terms(self) -> int:
        return len(self._blobs)

    def element_counts(self, term: str):
        from collections import Counter

        from repro.index.inverted import P_DOC, P_NODE

        counts: Counter = Counter()
        for p in self.postings(term):
            counts[(p[P_DOC], p[P_NODE])] += 1
        return dict(counts)

    def terms_sorted_by_frequency(self) -> List[Tuple[str, int]]:
        pairs = [(t, self.frequency(t)) for t in self._blobs]
        pairs.sort(key=lambda x: (-x[1], x[0]))
        return pairs

    # -- compression statistics --------------------------------------------

    def compressed_bytes(self) -> int:
        """Total bytes of all encoded lists."""
        return sum(len(b) for b in self._blobs.values())

    def uncompressed_bytes(self) -> int:
        """Size of a flat 4×4-byte-int representation, for the ratio."""
        total_postings = sum(
            decode_postings(b).__len__() for b in self._blobs.values()
        )
        return total_postings * 16

    def compression_ratio(self) -> float:
        """uncompressed / compressed (higher is better)."""
        compressed = self.compressed_bytes()
        return self.uncompressed_bytes() / compressed if compressed else 1.0
