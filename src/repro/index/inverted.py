"""Positional inverted index.

For every term the index keeps a posting list sorted by ``(doc_id, pos)``.
A posting is the 4-tuple ``(doc_id, pos, node_id, offset)``:

- ``pos`` — global region position of the word occurrence; because words
  consume values of the same counter as element start/end keys, ``pos``
  falls strictly inside the region of every ancestor element.  TermJoin's
  merge pass is driven by this field.
- ``node_id`` — the element whose *direct* text contains the word.
- ``offset`` — word ordinal within that element's direct text.  PhraseFinder
  verifies phrase adjacency with ``same node_id ∧ offsets consecutive``.

An index lookup "at the very least returns identifiers of XML elements in
which this term occurs … but one can easily return more, such as the number
of occurrences" (§5.1); :meth:`InvertedIndex.element_counts` is that
enriched lookup, used by the composite baselines.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from repro import obs as _obs
from repro.errors import UnknownTermError

if TYPE_CHECKING:  # pragma: no cover
    from repro.xmldb.store import XMLStore

#: A posting: (doc_id, pos, node_id, offset).
Posting = Tuple[int, int, int, int]

#: Logical on-disk size of one posting record (four 32-bit fields) —
#: what ``index.bytes_read`` charges per posting for the uncompressed
#: index; the compressed index reports actual encoded bytes instead.
POSTING_NOMINAL_BYTES = 16

#: Field indices within a posting tuple (kept as module constants so hot
#: loops can use literal integer indexing without magic numbers).
P_DOC = 0
P_POS = 1
P_NODE = 2
P_OFFSET = 3


@dataclass
class PostingList:
    """A term's postings plus cached aggregate statistics."""

    term: str
    postings: List[Posting]

    @property
    def frequency(self) -> int:
        """Total number of occurrences of the term in the corpus."""
        return len(self.postings)

    @property
    def document_frequency(self) -> int:
        """Number of distinct documents containing the term."""
        return len({p[P_DOC] for p in self.postings})

    def __iter__(self) -> Iterator[Posting]:
        return iter(self.postings)

    def __len__(self) -> int:
        return len(self.postings)

    def for_document(self, doc_id: int) -> List[Posting]:
        """Postings restricted to one document (contiguous slice)."""
        # Binary search bounds on the (doc, pos)-sorted list.
        lo = _lower_bound(self.postings, doc_id)
        hi = _lower_bound(self.postings, doc_id + 1)
        return self.postings[lo:hi]


def _lower_bound(postings: Sequence[Posting], doc_id: int) -> int:
    """First index whose posting has ``doc >= doc_id``."""
    lo, hi = 0, len(postings)
    while lo < hi:
        mid = (lo + hi) // 2
        if postings[mid][P_DOC] < doc_id:
            lo = mid + 1
        else:
            hi = mid
    return lo


class InvertedIndex:
    """The corpus-wide positional inverted index."""

    def __init__(self, lists: Dict[str, PostingList], n_documents: int):
        self._lists = lists
        self.n_documents = n_documents

    @classmethod
    def build(cls, store: "XMLStore") -> "InvertedIndex":
        """Build the index by one scan over every document's word table."""
        from repro.resilience import faultinject as _fi

        _fi.INJECTOR.fire("index.build", n_documents=store.n_documents)
        lists: Dict[str, List[Posting]] = {}
        for doc in store.documents():
            d = doc.doc_id
            terms = doc.word_terms
            pos = doc.word_pos
            nodes = doc.word_node
            offs = doc.word_offset
            for i in range(len(terms)):
                lists.setdefault(terms[i], []).append(
                    (d, pos[i], nodes[i], offs[i])
                )
        # Documents are scanned in doc_id order and word tables are in
        # ascending pos, so each list is already sorted by (doc, pos).
        return cls(
            {t: PostingList(t, p) for t, p in lists.items()},
            n_documents=store.n_documents,
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------

    def postings(self, term: str, strict: bool = False) -> PostingList:
        """Posting list for ``term``.  Unknown terms yield an empty list
        unless ``strict`` is set."""
        try:
            pl = self._lists[term]
        except KeyError:
            if strict:
                raise UnknownTermError(f"term {term!r} not in index")
            pl = PostingList(term, [])
        rec = _obs.RECORDER
        if rec.enabled:
            rec.count("index.posting_fetches")
            rec.count("index.postings_returned", len(pl))
            rec.count("index.bytes_read", len(pl) * POSTING_NOMINAL_BYTES)
        return pl

    def __contains__(self, term: str) -> bool:
        return term in self._lists

    def frequency(self, term: str) -> int:
        """Corpus frequency of ``term``."""
        pl = self._lists.get(term)
        return pl.frequency if pl else 0

    def document_frequency(self, term: str) -> int:
        """Number of documents containing ``term``."""
        pl = self._lists.get(term)
        return pl.document_frequency if pl else 0

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency:
        ``log((N + 1) / (df + 1)) + 1``; always positive."""
        df = self.document_frequency(term)
        return math.log((self.n_documents + 1) / (df + 1)) + 1.0

    def vocabulary(self) -> Iterable[str]:
        """All indexed terms."""
        return self._lists.keys()

    @property
    def n_terms(self) -> int:
        return len(self._lists)

    # ------------------------------------------------------------------
    # Enriched lookups used by the composite baselines
    # ------------------------------------------------------------------

    def element_counts(self, term: str) -> Dict[Tuple[int, int], int]:
        """``{(doc_id, node_id): occurrence count}`` for the elements whose
        *direct* text contains ``term`` — the enriched index lookup of
        §5.1 that seeds score generation in the composite plans."""
        counts: Counter = Counter()
        for p in self.postings(term):
            counts[(p[P_DOC], p[P_NODE])] += 1
        return dict(counts)

    def terms_sorted_by_frequency(self) -> List[Tuple[str, int]]:
        """``(term, frequency)`` pairs, most frequent first (workload
        selection helper)."""
        pairs = [(t, pl.frequency) for t, pl in self._lists.items()]
        pairs.sort(key=lambda x: (-x[1], x[0]))
        return pairs
