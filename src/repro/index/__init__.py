"""Index structures over the XML store.

- :mod:`repro.index.inverted`: the positional inverted term index.  Each
  posting records the document, the global region position (which nests
  inside every ancestor element's region), the element whose direct text
  holds the word, and the word's offset within that element's text —
  everything TermJoin and PhraseFinder need.
- :mod:`repro.index.structure`: the structure index — parent pointers,
  child counts, and per-tag element lists sorted by start key.  Enhanced
  TermJoin reads child counts here instead of navigating the data, and the
  structural-join baselines scan the per-tag element lists.
"""

from repro.index.inverted import InvertedIndex, Posting, PostingList
from repro.index.structure import StructureIndex

__all__ = ["InvertedIndex", "Posting", "PostingList", "StructureIndex"]
