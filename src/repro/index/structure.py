"""Structure index: parents, child counts, per-tag element lists.

Three consumers:

- **Enhanced TermJoin** (§6.1): "uses an index structure to get a parent of
  a given node.  Along with the parent information, the number of children
  of this parent is returned."  :meth:`StructureIndex.parent_and_fanout`
  is exactly that O(1) lookup.
- the **structural-join baselines** (Comp1/Comp2), which need the element
  lists (optionally per tag) sorted by start key;
- the engine's tag-scan operator.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.xmldb.store import XMLStore

#: An element reference as used by structural joins:
#: (doc_id, start, end, level, node_id).
ElementRef = Tuple[int, int, int, int, int]

E_DOC = 0
E_START = 1
E_END = 2
E_LEVEL = 3
E_NODE = 4


class StructureIndex:
    """Precomputed structural lookups over an entire store."""

    def __init__(
        self,
        parents: List[List[int]],
        fanouts: List[List[int]],
        by_tag: Dict[str, List[ElementRef]],
        all_elements: List[ElementRef],
    ):
        self._parents = parents       # per doc: node -> parent id
        self._fanouts = fanouts       # per doc: node -> child count
        self._by_tag = by_tag         # tag -> element refs (doc order)
        self._all = all_elements      # every element ref (doc order)

    @classmethod
    def build(cls, store: "XMLStore") -> "StructureIndex":
        parents: List[List[int]] = []
        fanouts: List[List[int]] = []
        by_tag: Dict[str, List[ElementRef]] = {}
        all_elements: List[ElementRef] = []
        for doc in store.documents():
            parents.append(list(doc.parents))
            fanouts.append([doc.n_children(n) for n in range(len(doc))])
            d = doc.doc_id
            for nid in range(len(doc)):
                ref: ElementRef = (
                    d, doc.starts[nid], doc.ends[nid], doc.levels[nid], nid
                )
                all_elements.append(ref)
                by_tag.setdefault(doc.tags[nid], []).append(ref)
        return cls(parents, fanouts, by_tag, all_elements)

    # ------------------------------------------------------------------
    # O(1) lookups
    # ------------------------------------------------------------------

    def parent(self, doc_id: int, node_id: int) -> int:
        """Parent node id (``-1`` for a root)."""
        return self._parents[doc_id][node_id]

    def fanout(self, doc_id: int, node_id: int) -> int:
        """Number of child elements."""
        return self._fanouts[doc_id][node_id]

    def parent_and_fanout(self, doc_id: int, node_id: int) -> Tuple[int, int]:
        """The Enhanced-TermJoin lookup: parent id and *that parent's*
        child count, in one index probe.  Returns ``(-1, 0)`` for roots."""
        parent = self._parents[doc_id][node_id]
        if parent < 0:
            return -1, 0
        return parent, self._fanouts[doc_id][parent]

    # ------------------------------------------------------------------
    # Scans
    # ------------------------------------------------------------------

    def elements_with_tag(self, tag: str) -> List[ElementRef]:
        """Element refs with the given tag, in global document order."""
        return self._by_tag.get(tag, [])

    def all_elements(self) -> List[ElementRef]:
        """Every element ref in global document order.  The Comp2 baseline
        scans this list: its cost is what makes Comp2 frequency-independent
        (and slow)."""
        return self._all

    @property
    def n_elements(self) -> int:
        return len(self._all)

    def tags(self) -> List[str]:
        """All distinct tags."""
        return list(self._by_tag.keys())
