"""``tix`` command-line interface.

Subcommands:

- ``tix demo`` — the paper's running example end-to-end: Figure 1
  database, Query 2, the Figure 6 projection, Figure 8 pick, and the
  top-ranked answer.
- ``tix query -q QUERY --doc name=path …`` — run an extended-XQuery
  query against XML files loaded into a fresh store (``-f FILE`` reads
  the query from a file).
- ``tix explain -q QUERY --doc name=path …`` — show the compiled
  pipelined plan for a compilable query, each operator annotated with
  its estimated cardinality (``est_rows``, from the statistics
  catalog).  ``--analyze`` executes the plan and shows estimated vs
  actual rows with the per-operator q-error; ``--json`` emits the
  plan tree (estimates, actuals, timings) as JSON.
- ``tix profile -q QUERY --doc name=path …`` — execute the query under
  the observability collector and print an EXPLAIN ANALYZE tree with
  per-operator time/rows/loops and access-method counters, phase span
  timings, and the metrics registry (``--json`` for machine-readable
  output, ``--trace-out FILE`` for a Chrome trace).
- ``tix query --analyze`` — run a query and append the EXPLAIN ANALYZE
  tree to the normal output.
- ``tix query --timeout MS --max-rows N [--degrade]`` — run under a
  resource guard (see ``docs/robustness.md``): strict mode exits with
  status 3 on a trip, ``--degrade`` prints the partial results flagged
  truncated instead; combined with ``--analyze`` the metrics report
  (including the ``guard.*`` counters) is appended to the output.
  ``--store-partial`` loads a damaged ``--store`` directory best-effort,
  reporting skipped documents on stderr.
- ``tix batch -q Q -q Q … | -f FILE`` — run many queries concurrently
  over one shared store (``repro.perf.execute_batch``): per-query
  ``--timeout``/``--max-rows`` guards with ``--no-degrade`` for strict
  mode, ``--workers`` for pool width, ``--no-cache`` to disable the
  shared plan/result cache, ``--json`` for machine-readable output.
  ``-f FILE`` holds a JSON array of query strings, or plain text with
  queries separated by lines containing only ``---``.  Results print in
  submission order; the exit status is 3 when any query failed.
- ``tix bench {table1,table2,table3,table4,table5,pick}`` — regenerate a
  table of the paper's evaluation section (``--scale`` shrinks planted
  frequencies for quick runs; ``--profile`` adds per-access-method
  metric breakdowns).
- ``tix serve --store DIR|--doc name=path …`` — expose the telemetry
  pipeline over HTTP (stdlib only): ``/metrics`` in the OpenMetrics
  text format, ``/healthz`` liveness, ``/varz`` JSON (registry snapshot
  + windowed rates from the time-series ring), ``/traces`` for the
  distributed trace store.  ``-q``/``-f`` run a warmup batch at
  startup; ``--audit-log FILE`` appends one JSONL record per query
  with ``--sample-rate``/``--slow-ms`` controls.
  ``--query-port N`` additionally serves the length-prefixed JSON
  wire protocol (:mod:`repro.server`) with admission control
  (``--max-inflight``, ``--queue-timeout-ms``) and a draining
  shutdown (``--drain-timeout``); served requests are traced with
  tail-based retention (``--trace-capacity``, ``--trace-slow-ms``,
  ``--trace-sample`` — see ``docs/observability.md``).
- ``tix client --port N -q QUERY`` — query a running server over the
  wire protocol: ``--timeout``/``--max-rows`` set server-side budgets,
  ``--no-degrade`` requests strict execution, ``--ping``/``--stats``
  for health and admission statistics, ``--json`` for raw output.
- ``tix loadtest --port N -q Q …`` — drive a running server with
  ``--clients`` concurrent workers sending ``--total`` requests and
  report the outcome mix (ok/truncated/rejected/error/transport plus
  latency quantiles); exit status 3 on any transport error.
- ``tix top`` — live view of a running ``tix serve``: polls ``/varz``
  and ``/traces`` every ``--interval`` seconds and renders request
  latency, admission state, and the in-flight / slowest-retained trace
  tables (``--iterations N --plain`` for a one-shot scriptable dump).
- ``tix trace FILE | --server HOST:PORT`` — fetch, inspect, or export
  distributed traces: without ``--id`` the in-flight/retained listing,
  with ``--id`` one trace's full span tree, ``--chrome-out FILE`` the
  Chrome ``traceEvents`` export (Perfetto-loadable), ``--json`` the
  raw payload.  ``--server`` talks the wire protocol to the *query*
  port; ``FILE`` re-reads a previously saved ``--json`` payload.
- ``tix events FILE`` — inspect a query audit log: filter by
  ``--outcome``, ``--kind``, ``--min-wall MS`` or ``--slow-only``,
  ``--limit N`` for the tail, ``--json`` for raw records.
- ``tix feedback FILE`` — aggregate an audit log into a misestimation
  report: the worst-misestimated operators and query shapes ranked by
  median q-error (count, median/max q-error, mean estimated vs actual
  rows).  Reads both audit-log schema versions; ``--min-count`` drops
  singletons, ``--json`` for the machine-readable report.
- ``tix lint [PATH]`` — run the engine invariant linter
  (:mod:`repro.analysis`) over the source tree: operator lifecycle,
  guard ticks, metric/fault-point drift, lock discipline, resource
  safety.  ``--json`` for the machine-readable report, ``--rule`` to
  select rules, ``--fail-on warning|error`` for the exit-code
  threshold (exit 1 when findings reach it), ``--list-rules`` for the
  catalog.  See ``docs/static-analysis.md``.

See ``docs/observability.md`` for the metric catalog and output formats.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.errors import TIXError
from repro.xmldb.store import XMLStore


def _load_store(doc_args: List[str],
                store_dir: Optional[str] = None,
                partial: bool = False) -> XMLStore:
    if store_dir:
        from repro.xmldb.persist import load_store_report

        report = load_store_report(store_dir, partial=partial)
        for err in report.skipped:
            print(f"warning: skipped {err}", file=sys.stderr)
        store = report.store
    else:
        store = XMLStore()
    for spec in doc_args:
        if "=" not in spec:
            raise SystemExit(
                f"--doc expects name=path, got {spec!r}"
            )
        name, path = spec.split("=", 1)
        with open(path, "r", encoding="utf-8") as f:
            store.load(name, f.read())
    return store


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.exampledata import (
        example_store, pickfoo_criterion, query2_pattern,
    )
    from repro.core import (
        pick, scored_projection, scored_selection, tree_from_document,
    )
    from repro.core.operators import top_k_trees

    store = example_store()
    articles = store.document("articles.xml")
    tree = tree_from_document(articles)
    pattern = query2_pattern()

    print("Figure 1 database loaded:", store)
    proj = scored_projection([tree], pattern, ["$1", "$3", "$4"])
    print("\nFigure 6 (projection, PL={$1,$3,$4}):")
    print(" ", proj[0].sketch())
    picked = pick(proj, "$4", pickfoo_criterion(), pattern=pattern)
    print("\nFigure 8 (after Pick):")
    print(" ", picked[0].sketch())
    witnesses = scored_selection(picked, _existing_score_pattern())
    top = top_k_trees(witnesses, 1)[0]
    best = [n for n in top.nodes() if "$4" in n.labels][0]
    print("\nTop-ranked element:", best.tag, f"(score {best.score:g})")
    doc_id, node_id = best.source
    print(store.document(doc_id).serialize(node_id, indent=True)[:400])
    return 0


def _existing_score_pattern():
    from repro.core.pattern import (
        EdgeType, ExistingScore, FromLabel, PatternNode, ScoredPatternTree,
    )

    p1 = PatternNode("$1", tag="article")
    p1.add_child(
        PatternNode(
            "$4",
            predicate=lambda n: n.score is not None and n.tag != "article",
        ),
        EdgeType.ADS,
    )
    return ScoredPatternTree(
        p1, scoring={"$4": ExistingScore(), "$1": FromLabel("$4")}
    )


def _read_query(args: argparse.Namespace) -> str:
    if args.query:
        return args.query
    if args.file:
        with open(args.file, "r", encoding="utf-8") as f:
            return f.read()
    raise SystemExit("provide a query with -q or -f")


def _add_planner_args(parser: argparse.ArgumentParser) -> None:
    """Planner options shared by ``query``, ``explain``, ``profile``."""
    parser.add_argument("--planner", choices=("cost", "heuristic"),
                        help="physical plan selection policy "
                             "(default: cost; heuristic reproduces the "
                             "pre-planner hard-coded choices)")
    parser.add_argument("--force-op", action="append", metavar="NAME=OP",
                        dest="force_op",
                        help="pin a planner decision point, e.g. "
                             "score=Comp2, filter=bisect, "
                             "rank=sort-limit (repeatable)")
    parser.add_argument("--feedback", metavar="FILE",
                        help="audit log (JSONL) whose misestimation "
                             "report re-costs the plan (see tix "
                             "feedback)")


def _planner_opts(args: argparse.Namespace) -> dict:
    """Build ``compile_query`` planner kwargs from parsed CLI args.

    Raises :class:`~repro.errors.PlannerHintError` on malformed
    ``--force-op`` values (callers surface it, never swallow it)."""
    from repro.plan.optimizer import parse_force_ops

    opts: dict = {}
    if getattr(args, "planner", None):
        opts["planner"] = args.planner
    if getattr(args, "force_op", None):
        opts["force_ops"] = parse_force_ops(args.force_op)
    if getattr(args, "feedback", None):
        from repro.obs.events import iter_events
        from repro.plan.feedback import feedback_report
        from repro.plan.optimizer import corrections_from_feedback

        with open(args.feedback, "r", encoding="utf-8") as f:
            records = list(iter_events(f))
        opts["corrections"] = corrections_from_feedback(
            feedback_report(records))
    return opts


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.errors import PlannerHintError
    from repro.query import run_query

    store = _load_store(args.doc or [], args.store,
                        partial=args.store_partial)
    try:
        opts = _planner_opts(args)
        if args.timeout is not None or args.max_rows is not None \
                or args.degrade:
            return _query_guarded(store, _read_query(args), args, opts)
        if args.analyze:
            return _query_analyze(store, _read_query(args), args, opts)
        if opts:
            return _query_planned(store, _read_query(args), args, opts)
    except PlannerHintError as exc:
        print(f"planner: {exc}", file=sys.stderr)
        return 2
    results = run_query(store, _read_query(args))
    for i, tree in enumerate(results, 1):
        score = f" score={tree.score:g}" if tree.score is not None else ""
        print(f"-- result {i}{score}")
        print(tree.to_xml(with_scores=args.scores))
    print(f"({len(results)} results)")
    return 0


def _query_planned(store, source: str, args: argparse.Namespace,
                   opts: dict) -> int:
    """``tix query`` with explicit planner options: run the compiled
    plan.  Non-compilable queries fall back to the evaluator with a
    notice (the planner options cannot apply there); bad hints
    propagate as :class:`~repro.errors.PlannerHintError`."""
    from repro.errors import PlannerHintError, QueryCompileError
    from repro.query import parse_query, run_query
    from repro.query.compiler import run_compiled

    try:
        results = run_compiled(store, parse_query(source), **opts)
    except PlannerHintError:
        raise
    except QueryCompileError as exc:
        print(f"planner: query not compilable ({exc}); "
              "evaluator fallback", file=sys.stderr)
        results = run_query(store, source)
    for i, tree in enumerate(results, 1):
        score = f" score={tree.score:g}" if tree.score is not None else ""
        print(f"-- result {i}{score}")
        print(tree.to_xml(with_scores=args.scores))
    print(f"({len(results)} results)")
    return 0


def _query_guarded(store, source: str, args: argparse.Namespace,
                   planner_opts: Optional[dict] = None) -> int:
    """``tix query --timeout/--max-rows/--degrade``: run under a
    :class:`~repro.resilience.QueryGuard`.  Strict mode exits with status
    3 on a guard trip; degrade mode prints the partial results with a
    truncation notice."""
    from repro import obs
    from repro.errors import QueryAbortedError
    from repro.resilience import QueryGuard, run_query_guarded

    guard = QueryGuard(
        timeout_ms=args.timeout,
        max_rows=args.max_rows,
        degrade=args.degrade,
    )
    opts = planner_opts or {}
    collector = None
    try:
        if args.analyze:
            # --analyze composes with the guard: run under a collector so
            # the guard.* counters (checks, rows, trips) land in the
            # metrics report alongside the operator counters.
            with obs.collecting() as collector:
                res = run_query_guarded(store, source, guard, **opts)
        else:
            res = run_query_guarded(store, source, guard, **opts)
    except QueryAbortedError as exc:
        print(f"query aborted: {exc}", file=sys.stderr)
        if collector is not None:
            print(collector.metrics.render(), file=sys.stderr)
        return 3
    for i, tree in enumerate(res.results, 1):
        score = f" score={tree.score:g}" if tree.score is not None else ""
        print(f"-- result {i}{score}")
        print(tree.to_xml(with_scores=args.scores))
    if res.truncated:
        print(f"({res.n_results} results, truncated: {res.reason})")
    else:
        print(f"({res.n_results} results)")
    if collector is not None:
        print()
        print(collector.metrics.render())
    return 0


def _query_analyze(store, source: str, args: argparse.Namespace,
                   planner_opts: Optional[dict] = None) -> int:
    """``tix query --analyze``: results first, then the EXPLAIN ANALYZE
    tree (or phase timings when the query is not compilable)."""
    from repro.engine.base import explain
    from repro.obs.profile import profile_query

    report = profile_query(store, source, **(planner_opts or {}))
    for i, tree in enumerate(report.results, 1):
        score = f" score={tree.score:g}" if tree.score is not None else ""
        print(f"-- result {i}{score}")
        print(tree.to_xml(with_scores=args.scores))
    print(f"({report.n_results} results)")
    print()
    if report.plan is not None:
        print("EXPLAIN ANALYZE")
        print(explain(report.plan, analyze=True))
    else:
        print("plan: not compilable (evaluator fallback)")
        for span in report.collector.tracer.roots:
            for child in span.children:
                print(f"  {child.name}: {child.duration_ms:.3f}ms")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.errors import PlannerHintError
    from repro.obs.profile import profile_query

    store = _load_store(args.doc or [], args.store)
    try:
        report = profile_query(store, _read_query(args),
                               **_planner_opts(args))
    except PlannerHintError as exc:
        print(f"planner: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    if args.trace_out:
        report.write_chrome_trace(args.trace_out)
        if not args.json:
            print(f"chrome trace written to {args.trace_out}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.engine.base import explain, plan_stats
    from repro.errors import PlannerHintError, QueryCompileError
    from repro.query import parse_query
    from repro.query.compiler import compile_query

    store = _load_store(args.doc or [], args.store)
    try:
        plan = compile_query(store, parse_query(_read_query(args)),
                             **_planner_opts(args))
    except PlannerHintError as exc:
        print(f"planner: {exc}", file=sys.stderr)
        return 2
    except QueryCompileError as exc:
        print(f"not compilable: {exc}", file=sys.stderr)
        return 2
    if args.analyze:
        from repro import obs
        from repro.engine.base import execute
        from repro.plan.estimate import publish_qerrors

        with obs.collecting():
            execute(plan)
            publish_qerrors(plan)
    if args.json:
        print(json.dumps(plan_stats(plan), indent=2, sort_keys=True))
    else:
        print(explain(plan, analyze=args.analyze))
    return 0


def _cmd_save(args: argparse.Namespace) -> int:
    from repro.xmldb.persist import save_store

    store = _load_store(args.doc or [])
    save_store(store, args.directory)
    print(
        f"saved {store.n_documents} documents "
        f"({store.n_elements} elements) to {args.directory}"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    # Served entirely from the generation-cached statistics catalog —
    # no inverted-index build just to print frequencies.
    store = _load_store(args.doc or [], args.store)
    stats = store.stats
    print(store)
    print(f"  max depth:   {stats.max_depth}")
    print(f"  avg depth:   {stats.avg_depth:.2f}")
    print(f"  max fan-out: {stats.max_fanout}")
    print(f"  avg fan-out: {stats.avg_fanout:.2f}")
    print(f"  vocabulary:  {len(stats.term_frequency)} terms")
    print("  most frequent terms:")
    ranked = sorted(stats.term_frequency.items(),
                    key=lambda kv: (-kv[1], kv[0]))
    for term, freq in ranked[:10]:
        print(f"    {term:<20} {freq}")
    return 0


def _cmd_nexi(args: argparse.Namespace) -> int:
    from repro.nexi import run_nexi

    store = _load_store(args.doc or [], args.store)
    hits = run_nexi(store, _read_query(args), top_k=args.top)
    for i, hit in enumerate(hits, 1):
        doc = store.document(hit.doc_id)
        print(f"{i:3}. score={hit.score:<8g} <{doc.tags[hit.node_id]}> "
              f"in {doc.name}")
        if args.show:
            print("     " + doc.serialize(hit.node_id)[:120])
    print(f"({len(hits)} hits)")
    return 0


def _read_batch_queries(args: argparse.Namespace) -> List[str]:
    queries: List[str] = list(args.query or [])
    if args.file:
        with open(args.file, "r", encoding="utf-8") as f:
            text = f.read()
        stripped = text.lstrip()
        if stripped.startswith("["):
            loaded = json.loads(text)
            if not isinstance(loaded, list) or not all(
                    isinstance(q, str) for q in loaded):
                raise SystemExit(
                    f"{args.file}: expected a JSON array of query strings"
                )
            queries.extend(loaded)
        else:
            block: List[str] = []
            for line in text.splitlines():
                if line.strip() == "---":
                    if "".join(block).strip():
                        queries.append("\n".join(block))
                    block = []
                else:
                    block.append(line)
            if "".join(block).strip():
                queries.append("\n".join(block))
    if not queries:
        raise SystemExit("provide queries with -q (repeatable) or -f")
    return queries


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.perf import QueryCache, execute_batch

    store = _load_store(args.doc or [], args.store)
    queries = _read_batch_queries(args)
    cache = None if args.no_cache else QueryCache(store)
    result = execute_batch(
        store, queries,
        max_workers=args.workers,
        timeout_ms=args.timeout,
        max_rows=args.max_rows,
        degrade=not args.no_degrade,
        cache=cache,
    )
    if args.json:
        print(json.dumps({
            "n_queries": result.n_queries,
            "n_failed": result.n_failed,
            "n_truncated": result.n_truncated,
            "wall_ms": result.wall_ms,
            "outcomes": [
                {
                    "index": o.index,
                    "n_results": o.n_results,
                    "truncated": o.truncated,
                    "reason": o.reason,
                    "error": o.error,
                    "error_type": o.error_type,
                    "elapsed_ms": o.elapsed_ms,
                }
                for o in result
            ],
        }, indent=2, sort_keys=True))
    else:
        for o in result:
            if not o.ok:
                print(f"-- query {o.index + 1}: FAILED "
                      f"({o.error_type}: {o.error})")
            elif o.truncated:
                print(f"-- query {o.index + 1}: {o.n_results} results "
                      f"(truncated: {o.reason}) [{o.elapsed_ms:.1f}ms]")
            else:
                print(f"-- query {o.index + 1}: {o.n_results} results "
                      f"[{o.elapsed_ms:.1f}ms]")
        print(f"({result.n_queries} queries, {result.n_failed} failed, "
              f"{result.n_truncated} truncated, {result.wall_ms:.1f}ms)")
    return 3 if result.n_failed else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        run_pick_experiment, run_table1, run_table2, run_table3,
        run_table4, run_table5,
    )
    from repro.workload import (
        generate_corpus, table123_spec, table4_spec, table5_spec,
    )

    def finish(result) -> int:
        if args.json_out:
            from repro.bench.artifact import make_artifact

            artifact = make_artifact(result, table=args.table,
                                     scale=args.scale, runs=args.runs)
            with open(args.json_out, "w", encoding="utf-8") as f:
                json.dump(artifact, f, indent=2, sort_keys=True)
            print(f"wrote {args.json_out}")
        return 0

    which = args.table
    runs = args.runs
    profile = args.profile
    if which == "pick":
        return finish(run_pick_experiment(runs=runs, profile=profile))
    if which == "planner":
        from repro.bench import run_planner_bench

        return finish(run_planner_bench(scale=args.scale, runs=runs))
    if which == "quality":
        from repro.workload import (
            build_relevance_workload, score_quality_experiment,
        )

        workload = build_relevance_workload()
        print("Scoring quality (simple vs complex, §6.1's accuracy claim)")
        print(f"{'scorer':<10} {'P@10':>6} {'MAP':>6} {'nDCG@10':>8}")
        for r in score_quality_experiment(workload):
            print(f"{r.scorer_name:<10} {r.precision_at_10:>6.2f} "
                  f"{r.average_precision:>6.2f} {r.ndcg_at_10:>8.2f}")
        return 0
    if which in ("table1", "table2", "table3"):
        spec, rows = table123_spec(scale=args.scale)
        store = generate_corpus(spec)
        if which == "table1":
            res = run_table1(store, rows["table1"], runs=runs,
                             profile=profile)
        elif which == "table2":
            res = run_table2(store, rows["table1"], runs=runs,
                             profile=profile)
        else:
            res = run_table3(store, rows["table3"], runs=runs,
                             profile=profile)
        return finish(res)
    if which == "table4":
        spec, rows4 = table4_spec(scale=args.scale)
        return finish(run_table4(generate_corpus(spec), rows4, runs=runs,
                                 profile=profile))
    spec, rows5 = table5_spec(scale=args.scale * 0.05)
    return finish(run_table5(generate_corpus(spec), rows5, runs=runs,
                             profile=profile))


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro import obs as _obs
    from repro.obs import events as _events
    from repro.obs.serve import ObsServer
    from repro.obs.snapshot import Snapshotter

    # SIGTERM (and a SIGINT left at SIG_IGN by a backgrounding shell)
    # must take the same clean-teardown path as Ctrl-C, or supervisors
    # would kill the process without closing the sink and snapshotter.
    def _terminate(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _terminate)
    signal.signal(signal.SIGINT, _terminate)

    store = _load_store(args.doc or [], args.store)
    col = _obs.Collector()
    _obs.install(col)
    sink = None
    if args.audit_log:
        sink = _events.JsonlSink(
            args.audit_log, sample_rate=args.sample_rate,
            slow_ms=args.slow_ms,
        )
        _events.install_sink(sink)
    # Build the lazy index/structure under the collector so the store
    # gauges (index.n_terms, …) are populated before the first scrape.
    store.index
    store.structure
    if args.query or args.file:
        from repro.perf import QueryCache, execute_batch

        queries = _read_batch_queries(args)
        warm = execute_batch(store, queries, cache=QueryCache(store))
        print(f"warmup: {warm.n_queries} queries, "
              f"{warm.n_failed} failed", file=sys.stderr)
    snap = Snapshotter(col.metrics, interval_s=args.snapshot_interval,
                       capacity=args.snapshot_capacity)
    snap.start()
    from repro.obs.tracestore import RetentionPolicy, TraceStore

    tstore = TraceStore(
        capacity=args.trace_capacity,
        policy=RetentionPolicy(slow_ms=args.trace_slow_ms,
                               sample_rate=args.trace_sample),
    )
    qserver = None
    if args.query_port is not None:
        from repro.perf import QueryCache as _QC
        from repro.server import QueryServer

        qserver = QueryServer(
            store, host=args.host, port=args.query_port,
            max_inflight=args.max_inflight,
            queue_timeout_ms=args.queue_timeout_ms,
            max_timeout_ms=args.max_timeout,
            cache=None if args.no_query_cache else _QC(store),
            trace_store=tstore,
        )
        qserver.start()
        print(f"serving queries on {qserver.address}  "
              f"(wire protocol v1; max_inflight={args.max_inflight})",
              file=sys.stderr)
    server = ObsServer(col.metrics, snapshotter=snap, trace_store=tstore,
                       host=args.host, port=args.port)
    print(f"serving metrics on {server.url}  "
          f"(/metrics /healthz /varz /traces; Ctrl-C to stop)",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if qserver is not None:
            # Drain before the telemetry teardown so every accepted
            # request is answered while metrics are still live.
            drained = qserver.close(drain_s=args.drain_timeout)
            stats = qserver.admission.snapshot()
            state = "drained clean" if drained else "drain timed out"
            print(f"query server {state}: {stats['admitted']} admitted, "
                  f"{stats['rejected_overload']} rejected overloaded, "
                  f"{stats['degraded']} degraded", file=sys.stderr)
            ts = tstore.stats()
            print(f"traces: {ts['retained']} retained "
                  f"({ts['retained_total']} promoted, "
                  f"{ts['dropped']} dropped)", file=sys.stderr)
        server.server_close()
        snap.stop()
        if sink is not None:
            _events.uninstall_sink()
            sink.close()
        _obs.uninstall()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.errors import QueryAbortedError, ServerError
    from repro.server import PooledClient

    with PooledClient(args.host, args.port,
                      call_timeout_s=args.call_timeout) as client:
        if args.ping:
            ok = client.ping()
            print("pong" if ok else "no response")
            return 0 if ok else 3
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        source = _read_query(args)
        try:
            res = client.query(
                source, timeout_ms=args.timeout, max_rows=args.max_rows,
                degrade=not args.no_degrade, with_scores=args.scores,
            )
        except (QueryAbortedError, ServerError) as exc:
            print(f"query refused/aborted: {exc}", file=sys.stderr)
            return 3
        if args.json:
            print(json.dumps({
                "n_results": res.n_results,
                "truncated": res.truncated,
                "reason": res.reason,
                "degraded": res.degraded,
                "generation": res.generation,
                "rows": [
                    {"score": r.score, "xml": r.xml} for r in res.rows
                ],
            }, indent=2, sort_keys=True))
            return 0
        for i, row in enumerate(res.rows, 1):
            score = f" score={row.score:g}" if row.score is not None else ""
            print(f"-- result {i}{score}")
            print(row.xml)
        notes = []
        if res.truncated:
            notes.append(f"truncated: {res.reason}")
        if res.degraded:
            notes.append("degraded under load")
        tail = f" ({'; '.join(notes)})" if notes else ""
        print(f"({res.n_results} results, generation "
              f"{res.generation}){tail}")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.server import run_loadtest

    queries = _read_batch_queries(args)
    report = run_loadtest(
        args.host, args.port, queries,
        clients=args.clients, total=args.total,
        timeout_ms=args.timeout, max_rows=args.max_rows,
        degrade=not args.no_degrade,
        call_timeout_s=args.call_timeout,
        seed=args.seed,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 3 if report.n_transport_errors else 0


def _trace_row(t: dict) -> str:
    """One trace-summary line shared by ``tix top`` and ``tix trace``."""
    flags = []
    if t.get("degraded"):
        flags.append("degraded")
    if t.get("truncated"):
        flags.append("truncated")
    tail = f"  [{','.join(flags)}]" if flags else ""
    outcome = t.get("outcome") or "-"
    why = t.get("retained_for") or "-"
    return (f"  {t.get('trace_id', ''):<18} {t.get('op', ''):<6} "
            f"{t.get('wall_ms', 0.0):>9.1f} {t.get('queued_ms', 0.0):>8.1f} "
            f"{outcome:<9} {why:<8} {t.get('n_spans', 0):>5}  "
            f"{str(t.get('query_sha256', ''))[:12]}{tail}")


_TRACE_HEADER = (f"  {'trace':<18} {'op':<6} {'wall ms':>9} {'queued':>8} "
                 f"{'outcome':<9} {'kept':<8} {'spans':>5}  query")


def _render_top(base: str, varz: dict, traces: Optional[dict],
                limit: int) -> str:
    metrics = varz.get("metrics") or {}

    def num(name: str) -> float:
        v = metrics.get(name, 0)
        return float(v) if isinstance(v, (int, float)) else 0.0

    lines = [f"tix top — {base}  "
             f"uptime {float(varz.get('uptime_s', 0.0)):.0f}s"]
    req = metrics.get("server.request_ms")
    if isinstance(req, dict):
        lines.append(
            f"  requests: {req.get('count', 0):g} served  "
            f"p50/p95/p99 {req.get('p50', 0.0):.1f}/"
            f"{req.get('p95', 0.0):.1f}/{req.get('p99', 0.0):.1f} ms")
    lines.append(
        f"  admission: inflight {num('server.inflight'):g}  "
        f"admitted {num('server.admitted'):g}  "
        f"rejected {num('server.rejected.overload'):g}  "
        f"degraded {num('server.degraded'):g}")
    if traces is None:
        lines.append("  traces: (no trace store attached)")
        return "\n".join(lines)
    st = traces.get("stats") or {}
    lines.append(
        f"  traces: {st.get('inflight', 0)} in flight  "
        f"{st.get('retained', 0)}/{st.get('capacity', 0)} retained  "
        f"{st.get('retained_total', 0)} promoted  "
        f"{st.get('dropped', 0)} dropped")
    inflight = traces.get("inflight") or []
    if inflight:
        lines += ["", "  IN FLIGHT", _TRACE_HEADER]
        by_age = sorted(inflight, key=lambda t: -t.get("wall_ms", 0.0))
        lines += [_trace_row(t) for t in by_age[:limit]]
    retained = traces.get("retained") or []
    if retained:
        slowest = sorted(retained, key=lambda t: -t.get("wall_ms", 0.0))
        lines += ["", "  SLOWEST RETAINED", _TRACE_HEADER]
        lines += [_trace_row(t) for t in slowest[:limit]]
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time
    import urllib.error
    import urllib.request

    base = f"http://{args.host}:{args.port}"

    def fetch(path: str) -> Optional[dict]:
        try:
            with urllib.request.urlopen(
                    base + path, timeout=args.call_timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError:
            return None  # endpoint 404s when no trace store is attached

    done = 0
    try:
        while True:
            varz = fetch("/varz")
            traces = fetch(f"/traces?limit={args.limit}")
            body = _render_top(base, varz or {}, traces, args.limit)
            if not args.plain:
                sys.stdout.write("\x1b[2J\x1b[H")
            print(body)
            sys.stdout.flush()
            done += 1
            if args.iterations and done >= args.iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except OSError as exc:
        print(f"tix top: cannot reach {base}: {exc}", file=sys.stderr)
        return 3


def _render_span_tree(d: dict, depth: int = 0) -> List[str]:
    dur = float(d.get("duration_ms", 0.0))
    attrs = d.get("attrs") or {}
    extra = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    mark = " (open)" if d.get("open") else ""
    pad = "  " * depth
    name = str(d.get("name", "?"))
    width = max(1, 32 - len(pad))
    lines = [f"  {pad}{name:<{width}} {dur:>9.3f} ms{mark}"
             + (f"  {extra}" if extra else "")]
    for child in d.get("children") or []:
        if isinstance(child, dict):
            lines += _render_span_tree(child, depth + 1)
    return lines


def _render_trace(trace: dict) -> str:
    lines = [
        f"trace {trace.get('trace_id', '?')}  op={trace.get('op', '?')}  "
        f"attempt={trace.get('attempt', 0)}  "
        f"status={trace.get('status', '?')}",
        f"  outcome={trace.get('outcome') or '-'}  "
        f"retained_for={trace.get('retained_for') or '-'}  "
        f"wall={trace.get('wall_ms', 0.0):.3f} ms  "
        f"queued={trace.get('queued_ms', 0.0):.3f} ms",
        f"  query_sha256={trace.get('query_sha256') or '-'}",
    ]
    spans = trace.get("spans")
    if isinstance(spans, dict):
        lines.append("  spans:")
        lines += _render_span_tree(spans, depth=1)
    else:
        lines.append("  spans: (none recorded — collector not installed)")
    return "\n".join(lines)


def _render_trace_listing(snapshot: dict, limit: int) -> str:
    st = snapshot.get("stats") or {}
    lines = [
        f"trace store: {st.get('inflight', 0)} in flight, "
        f"{st.get('retained', 0)}/{st.get('capacity', 0)} retained "
        f"({st.get('retained_total', 0)} promoted, "
        f"{st.get('dropped', 0)} dropped)",
    ]
    inflight = snapshot.get("inflight") or []
    if inflight:
        lines += ["", "IN FLIGHT", _TRACE_HEADER]
        lines += [_trace_row(t) for t in inflight[:limit]]
    retained = snapshot.get("retained") or []
    if retained:
        lines += ["", "RETAINED (newest first)", _TRACE_HEADER]
        lines += [_trace_row(t) for t in retained[:limit]]
    if not inflight and not retained:
        lines.append("(no traces)")
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.tracestore import chrome_trace_from_dict

    if bool(args.file) == bool(args.server):
        print("tix trace: give exactly one of FILE or --server HOST:PORT",
              file=sys.stderr)
        return 2
    chrome: Optional[dict] = None
    if args.server:
        host, _, port_s = args.server.rpartition(":")
        if not host or not port_s.isdigit():
            print(f"tix trace: --server wants HOST:PORT, "
                  f"got {args.server!r}", file=sys.stderr)
            return 2
        from repro.server import PooledClient

        try:
            with PooledClient(host, int(port_s),
                              call_timeout_s=args.call_timeout) as client:
                if args.id:
                    payload = client.traces(args.id)
                    if args.chrome_out:
                        chrome = client.traces(args.id, fmt="chrome")
                else:
                    payload = client.traces(limit=args.limit)
        except OSError as exc:
            print(f"tix trace: cannot reach {args.server}: {exc}",
                  file=sys.stderr)
            return 3
    else:
        with open(args.file, "r", encoding="utf-8") as f:
            payload = json.load(f)
        if not isinstance(payload, dict):
            print(f"tix trace: {args.file} is not a trace JSON object",
                  file=sys.stderr)
            return 2
    is_single = "spans" in payload or "trace_id" in payload
    if args.chrome_out:
        if not is_single:
            print("tix trace: --chrome-out needs one trace "
                  "(use --id, or a single-trace FILE)", file=sys.stderr)
            return 2
        if chrome is None:
            chrome = chrome_trace_from_dict(payload)
        with open(args.chrome_out, "w", encoding="utf-8") as f:
            json.dump(chrome, f, indent=1)
        n = len(chrome.get("traceEvents", []))
        print(f"wrote {n} events to {args.chrome_out} "
              f"(load at https://ui.perfetto.dev)", file=sys.stderr)
        if not args.json:
            return 0
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif is_single:
        print(_render_trace(payload))
    else:
        print(_render_trace_listing(payload, args.limit))
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    from repro.obs.events import filter_events, iter_events

    with open(args.file, "r", encoding="utf-8") as f:
        records = list(iter_events(f))
    selected = list(filter_events(
        records, outcome=args.outcome, min_wall_ms=args.min_wall,
        slow_only=args.slow_only,
    ))
    if args.kind:
        selected = [r for r in selected if r.get("kind") == args.kind]
    if args.limit is not None:
        selected = selected[-args.limit:]
    if args.json:
        for record in selected:
            print(json.dumps(record, sort_keys=True))
    else:
        for r in selected:
            mark = " SLOW" if r.get("slow") else ""
            extras = []
            if r.get("cache"):
                extras.append(f"cache={r['cache']}")
            if r.get("error_type"):
                extras.append(f"error={r['error_type']}")
            trip = r.get("guard", {}).get("trip")
            if trip:
                extras.append(f"trip={trip}")
            tail = (" " + " ".join(extras)) if extras else ""
            print(f"{r['ts']:.3f} {r['kind']:<6} {r['outcome']:<9} "
                  f"{r['wall_ms']:8.2f}ms {r['rows']:>6} rows "
                  f"{r['query_sha256']}{tail}{mark}")
        print(f"({len(selected)} of {len(records)} events)")
    return 0


def _cmd_feedback(args: argparse.Namespace) -> int:
    from repro.obs.events import iter_events
    from repro.plan.feedback import feedback_report

    with open(args.file, "r", encoding="utf-8") as f:
        records = list(iter_events(f))
    report = feedback_report(records, min_count=args.min_count)
    if args.corrections:
        from repro.plan.optimizer import corrections_from_feedback

        print(json.dumps(corrections_from_feedback(report),
                         indent=2, sort_keys=True))
        return 0
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render(limit=args.limit))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        Severity, lint, render_human, render_json, rule_classes,
    )

    if args.list_rules:
        for name, cls in sorted(rule_classes().items()):
            print(f"{name:<20} [{cls.severity.name}] {cls.description}")
        return 0
    try:
        result = lint(root=args.path, rules=args.rule or None)
    except ValueError as exc:
        raise SystemExit(f"tix lint: {exc}")
    if args.json:
        print(render_json(result))
    else:
        print(render_human(result, verbose=args.verbose))
    return 1 if result.count_at_least(Severity(args.fail_on)) else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tix",
        description="TIX: querying structured text in an XML database "
                    "(SIGMOD 2003 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="run the paper's running example") \
        .set_defaults(fn=_cmd_demo)

    q = sub.add_parser("query", help="run an extended-XQuery query")
    q.add_argument("-q", "--query", help="query text")
    q.add_argument("-f", "--file", help="file containing the query")
    q.add_argument("--doc", action="append",
                   help="load a document: name=path (repeatable)")
    q.add_argument("--store", help="load a saved store directory")
    q.add_argument("--scores", action="store_true",
                   help="serialize node scores as attributes")
    q.add_argument("--analyze", action="store_true",
                   help="also print the EXPLAIN ANALYZE tree")
    q.add_argument("--timeout", type=float, metavar="MS",
                   help="wall-clock deadline in milliseconds; exceeding "
                        "it aborts the query (exit status 3) unless "
                        "--degrade is set")
    q.add_argument("--max-rows", type=int, metavar="N",
                   help="output-row budget; the plan is aborted before "
                        "computing row N+1")
    q.add_argument("--degrade", action="store_true",
                   help="on a guard trip, print the partial results "
                        "flagged truncated instead of failing")
    q.add_argument("--store-partial", action="store_true",
                   help="with --store: skip corrupt/missing documents "
                        "(reported on stderr) instead of failing")
    _add_planner_args(q)
    q.set_defaults(fn=_cmd_query)

    p = sub.add_parser(
        "profile",
        help="execute a query under the observability collector and "
             "print EXPLAIN ANALYZE + metrics",
    )
    p.add_argument("-q", "--query", help="query text")
    p.add_argument("-f", "--file", help="file containing the query")
    p.add_argument("--doc", action="append",
                   help="load a document: name=path (repeatable)")
    p.add_argument("--store", help="load a saved store directory")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Chrome trace (chrome://tracing) to FILE")
    _add_planner_args(p)
    p.set_defaults(fn=_cmd_profile)

    e = sub.add_parser("explain", help="show the compiled plan with "
                                       "cardinality estimates")
    e.add_argument("-q", "--query", help="query text")
    e.add_argument("-f", "--file", help="file containing the query")
    e.add_argument("--doc", action="append",
                   help="load a document: name=path (repeatable)")
    e.add_argument("--store", help="load a saved store directory")
    e.add_argument("--analyze", action="store_true",
                   help="execute the plan and show estimated vs actual "
                        "rows with per-operator q-error")
    e.add_argument("--json", action="store_true",
                   help="emit the plan tree (est_rows, rows, q_error, "
                        "timings) as JSON")
    _add_planner_args(e)
    e.set_defaults(fn=_cmd_explain)

    s = sub.add_parser("save", help="persist documents as a store dir")
    s.add_argument("directory", help="target directory")
    s.add_argument("--doc", action="append", required=True,
                   help="load a document: name=path (repeatable)")
    s.set_defaults(fn=_cmd_save)

    st = sub.add_parser("stats", help="corpus statistics")
    st.add_argument("--doc", action="append",
                    help="load a document: name=path (repeatable)")
    st.add_argument("--store", help="load a saved store directory")
    st.set_defaults(fn=_cmd_stats)

    nx = sub.add_parser("nexi", help="run an INEX/NEXI query")
    nx.add_argument("-q", "--query", help="NEXI query text")
    nx.add_argument("-f", "--file", help="file containing the query")
    nx.add_argument("--doc", action="append",
                    help="load a document: name=path (repeatable)")
    nx.add_argument("--store", help="load a saved store directory")
    nx.add_argument("--top", type=int, default=10, help="top-k cutoff")
    nx.add_argument("--show", action="store_true",
                    help="print a snippet of each hit")
    nx.set_defaults(fn=_cmd_nexi)

    ba = sub.add_parser(
        "batch",
        help="run many queries concurrently over one shared store",
    )
    ba.add_argument("-q", "--query", action="append",
                    help="query text (repeatable)")
    ba.add_argument("-f", "--file",
                    help="JSON array of queries, or text blocks separated "
                         "by lines containing only ---")
    ba.add_argument("--doc", action="append",
                    help="load a document: name=path (repeatable)")
    ba.add_argument("--store", help="load a saved store directory")
    ba.add_argument("--workers", type=int, metavar="N",
                    help="thread-pool width (default: auto)")
    ba.add_argument("--timeout", type=float, metavar="MS",
                    help="per-query wall-clock deadline in milliseconds")
    ba.add_argument("--max-rows", type=int, metavar="N",
                    help="per-query output-row budget")
    ba.add_argument("--no-degrade", action="store_true",
                    help="record guard trips as per-query failures "
                         "instead of partial truncated results")
    ba.add_argument("--no-cache", action="store_true",
                    help="disable the shared plan/result cache")
    ba.add_argument("--json", action="store_true",
                    help="emit the batch report as JSON")
    ba.set_defaults(fn=_cmd_batch)

    b = sub.add_parser("bench", help="regenerate a paper table")
    b.add_argument("table", choices=[
        "table1", "table2", "table3", "table4", "table5", "pick",
        "quality", "planner",
    ])
    b.add_argument("--scale", type=float, default=1.0,
                   help="scale planted term frequencies (default 1.0)")
    b.add_argument("--runs", type=int, default=5,
                   help="timing repetitions (paper protocol: 5)")
    b.add_argument("--profile", action="store_true",
                   help="add a per-access-method metric breakdown per "
                        "cell (one extra instrumented run each)")
    b.add_argument("--json-out", metavar="FILE",
                   help="write the table (and any profiles) as JSON")
    b.set_defaults(fn=_cmd_bench)

    sv = sub.add_parser(
        "serve",
        help="expose an OpenMetrics /metrics endpoint (plus /healthz "
             "and /varz) for a loaded store",
    )
    sv.add_argument("--doc", action="append",
                    help="load a document: name=path (repeatable)")
    sv.add_argument("--store", help="load a saved store directory")
    sv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default 127.0.0.1)")
    sv.add_argument("--port", type=int, default=9184,
                    help="bind port (default 9184; 0 = ephemeral)")
    sv.add_argument("-q", "--query", action="append",
                    help="warmup query run once at startup to populate "
                         "the metrics (repeatable)")
    sv.add_argument("-f", "--file",
                    help="file of warmup queries (tix batch format)")
    sv.add_argument("--snapshot-interval", type=float, default=1.0,
                    metavar="S",
                    help="time-series sampling period in seconds "
                         "(default 1.0)")
    sv.add_argument("--snapshot-capacity", type=int, default=600,
                    metavar="N",
                    help="time-series ring slots kept (default 600)")
    sv.add_argument("--audit-log", metavar="FILE",
                    help="append one JSONL audit record per query "
                         "to FILE")
    sv.add_argument("--sample-rate", type=float, default=1.0,
                    metavar="P",
                    help="audit-log sampling probability (default 1.0)")
    sv.add_argument("--slow-ms", type=float, default=None, metavar="MS",
                    help="force-log queries slower than MS even when "
                         "sampled out")
    sv.add_argument("--query-port", type=int, default=None, metavar="N",
                    help="also serve the wire-protocol query endpoint "
                         "on this port (0 = ephemeral)")
    sv.add_argument("--max-inflight", type=int, default=8, metavar="N",
                    help="admission control: concurrent queries "
                         "executing at once (default 8)")
    sv.add_argument("--queue-timeout-ms", type=float, default=1000.0,
                    metavar="MS",
                    help="admission control: how long a request may "
                         "queue before a typed OVERLOADED rejection "
                         "(default 1000)")
    sv.add_argument("--max-timeout", type=float, default=None,
                    metavar="MS",
                    help="cap every remote query's deadline at MS even "
                         "if the client asks for more")
    sv.add_argument("--no-query-cache", action="store_true",
                    help="serve queries without the result/plan cache")
    sv.add_argument("--drain-timeout", type=float, default=5.0,
                    metavar="S",
                    help="on shutdown, wait up to S seconds for "
                         "in-flight queries to finish (default 5)")
    sv.add_argument("--trace-capacity", type=int, default=256,
                    metavar="N",
                    help="retained distributed traces kept before "
                         "oldest-first eviction (default 256)")
    sv.add_argument("--trace-slow-ms", type=float, default=250.0,
                    metavar="MS",
                    help="tail retention: always keep traces slower "
                         "than MS (default 250)")
    sv.add_argument("--trace-sample", type=float, default=0.0,
                    metavar="P",
                    help="head-sample rate for fast successful traces "
                         "(default 0.0 — keep only the tail)")
    sv.set_defaults(fn=_cmd_serve)

    cl = sub.add_parser(
        "client",
        help="query a running `tix serve --query-port` server over "
             "the wire protocol",
    )
    cl.add_argument("--host", default="127.0.0.1",
                    help="server address (default 127.0.0.1)")
    cl.add_argument("--port", type=int, required=True,
                    help="server query port")
    cl.add_argument("-q", "--query", help="query text")
    cl.add_argument("-f", "--file", help="file containing the query")
    cl.add_argument("--timeout", type=float, metavar="MS",
                    help="server-side wall-clock deadline in "
                         "milliseconds")
    cl.add_argument("--max-rows", type=int, metavar="N",
                    help="server-side output-row budget")
    cl.add_argument("--no-degrade", action="store_true",
                    help="abort on a guard trip (typed error) instead "
                         "of returning partial results")
    cl.add_argument("--scores", action="store_true",
                    help="serialize node scores as attributes")
    cl.add_argument("--call-timeout", type=float, default=30.0,
                    metavar="S",
                    help="client-side socket timeout per call "
                         "(default 30)")
    cl.add_argument("--ping", action="store_true",
                    help="health-check the server and exit")
    cl.add_argument("--stats", action="store_true",
                    help="print the server's admission statistics")
    cl.add_argument("--json", action="store_true",
                    help="emit the response as JSON")
    cl.set_defaults(fn=_cmd_client)

    lt = sub.add_parser(
        "loadtest",
        help="drive a running query server with a concurrent client "
             "fleet and report the outcome mix",
    )
    lt.add_argument("--host", default="127.0.0.1",
                    help="server address (default 127.0.0.1)")
    lt.add_argument("--port", type=int, required=True,
                    help="server query port")
    lt.add_argument("-q", "--query", action="append",
                    help="query text (repeatable; requests round-robin "
                         "over the set)")
    lt.add_argument("-f", "--file",
                    help="file of queries (tix batch format)")
    lt.add_argument("--clients", type=int, default=8,
                    help="concurrent client workers (default 8)")
    lt.add_argument("--total", type=int, default=64,
                    help="total requests to send (default 64)")
    lt.add_argument("--timeout", type=float, metavar="MS",
                    help="per-request server-side deadline")
    lt.add_argument("--max-rows", type=int, metavar="N",
                    help="per-request server-side row budget")
    lt.add_argument("--no-degrade", action="store_true",
                    help="request strict (non-degrading) execution")
    lt.add_argument("--call-timeout", type=float, default=30.0,
                    metavar="S",
                    help="client-side socket timeout per call "
                         "(default 30)")
    lt.add_argument("--seed", type=int, default=0,
                    help="retry-jitter RNG seed (default 0)")
    lt.add_argument("--json", action="store_true",
                    help="emit the report as JSON")
    lt.set_defaults(fn=_cmd_loadtest)

    tp = sub.add_parser(
        "top",
        help="live view of a running `tix serve`: polls /varz and "
             "/traces for admission, latency, and trace tables",
    )
    tp.add_argument("--host", default="127.0.0.1",
                    help="server address (default 127.0.0.1)")
    tp.add_argument("--port", type=int, default=9184,
                    help="the *metrics* port of tix serve, not the "
                         "query port (default 9184)")
    tp.add_argument("--interval", type=float, default=2.0, metavar="S",
                    help="refresh period in seconds (default 2)")
    tp.add_argument("--iterations", type=int, default=0, metavar="N",
                    help="refresh N times then exit (default 0 = "
                         "until Ctrl-C)")
    tp.add_argument("--limit", type=int, default=10, metavar="N",
                    help="rows per trace table (default 10)")
    tp.add_argument("--call-timeout", type=float, default=5.0,
                    metavar="S",
                    help="HTTP timeout per poll (default 5)")
    tp.add_argument("--plain", action="store_true",
                    help="append refreshes instead of redrawing the "
                         "screen (for logs and CI)")
    tp.set_defaults(fn=_cmd_top)

    tr = sub.add_parser(
        "trace",
        help="fetch, inspect, or export distributed traces (from a "
             "saved JSON file or a live server)",
    )
    tr.add_argument("file", nargs="?",
                    help="a saved trace JSON file (e.g. "
                         "`tix trace --server … --id … --json > FILE`)")
    tr.add_argument("--server", metavar="HOST:PORT",
                    help="fetch from a running server's *query* port "
                         "over the wire protocol")
    tr.add_argument("--id", metavar="TRACE_ID",
                    help="one trace's full span tree; without it, the "
                         "in-flight/retained listing")
    tr.add_argument("--limit", type=int, default=20, metavar="N",
                    help="listing rows (default 20)")
    tr.add_argument("--chrome-out", metavar="FILE",
                    help="write the trace in Chrome traceEvents format "
                         "(needs --id or a single-trace FILE)")
    tr.add_argument("--call-timeout", type=float, default=30.0,
                    metavar="S",
                    help="client-side socket timeout per call "
                         "(default 30)")
    tr.add_argument("--json", action="store_true",
                    help="emit the raw JSON payload")
    tr.set_defaults(fn=_cmd_trace)

    ev = sub.add_parser(
        "events",
        help="inspect a query audit log (JSONL, written by "
             "--audit-log or repro.obs.events)",
    )
    ev.add_argument("file", help="audit-log file to read")
    ev.add_argument("--outcome", choices=["ok", "truncated", "error"],
                    help="keep only this outcome")
    ev.add_argument("--kind", help="keep only this query kind "
                                   "(e.g. query, batch)")
    ev.add_argument("--min-wall", type=float, metavar="MS",
                    help="keep only queries at least this slow")
    ev.add_argument("--slow-only", action="store_true",
                    help="keep only slow-threshold force-logged queries")
    ev.add_argument("--limit", type=int, metavar="N",
                    help="show only the last N matching events")
    ev.add_argument("--json", action="store_true",
                    help="print raw JSON records instead of the "
                         "human-readable table")
    ev.set_defaults(fn=_cmd_events)

    fb = sub.add_parser(
        "feedback",
        help="aggregate an audit log into a misestimation report "
             "(worst operators and query shapes by median q-error)",
    )
    fb.add_argument("file", help="audit-log JSONL file to read")
    fb.add_argument("--min-count", type=int, default=1, metavar="N",
                    help="hide operators/shapes seen fewer than N times "
                         "(default 1)")
    fb.add_argument("--limit", type=int, default=10, metavar="N",
                    help="show the N worst entries per section "
                         "(default 10)")
    fb.add_argument("--json", action="store_true",
                    help="emit the full report as JSON")
    fb.add_argument("--corrections", action="store_true",
                    help="emit per-operator cardinality correction "
                         "factors as JSON (feed back with tix query "
                         "--feedback FILE)")
    fb.set_defaults(fn=_cmd_feedback)

    ln = sub.add_parser(
        "lint",
        help="run the engine invariant linter over the source tree",
    )
    ln.add_argument("path", nargs="?", default=None,
                    help="source root to lint (default: the directory "
                         "containing the importable repro package)")
    ln.add_argument("--rule", action="append", metavar="NAME",
                    help="run only this rule (repeatable; see "
                         "--list-rules)")
    ln.add_argument("--json", action="store_true",
                    help="emit the versioned JSON report")
    ln.add_argument("--fail-on", choices=["warning", "error"],
                    default="error",
                    help="exit 1 when findings of at least this "
                         "severity exist (default: error)")
    ln.add_argument("--list-rules", action="store_true",
                    help="list registered rules and exit")
    ln.add_argument("--verbose", action="store_true",
                    help="also show suppressed findings")
    ln.set_defaults(fn=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    # Patch locks before any engine object exists so every lock the
    # run creates is instrumented (no-op unless TIX_LOCK_SANITIZER=1).
    from repro.analysis.sanitizer import install_from_env

    install_from_env()
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except TIXError as exc:
        # engine errors (syntax, compile, persistence, …) are expected
        # failure modes: render the message, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # ``tix … | head`` closes stdout early — a normal way to
        # consume listing output, not a failure.  Repoint stdout at
        # devnull so the interpreter's exit flush doesn't raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
