"""Structural-join substrate.

The paper builds on the stack-based family of structural join algorithms
(Al-Khalifa et al. ICDE'01, Chien et al. VLDB'02, Bruno et al. SIGMOD'02);
TermJoin "generalizes the stack-based family … to support the IR-style
query processing model".  This package provides that substrate:

- :func:`repro.joins.structural.stack_tree_join` — the Stack-Tree
  ancestor/descendant merge join over start-key-sorted inputs;
- :func:`repro.joins.structural.naive_structural_join` — the quadratic
  nested-loop oracle used by tests;
- :mod:`repro.joins.meet` — the Generalized Meet algorithm (§6.1), the
  strongest baseline against TermJoin.
"""

from repro.joins.structural import (
    stack_tree_join,
    naive_structural_join,
    ancestors_of_postings,
)
from repro.joins.meet import generalized_meet
from repro.joins.twig import TwigNode, path_stack, twig_join

__all__ = [
    "stack_tree_join",
    "naive_structural_join",
    "ancestors_of_postings",
    "generalized_meet",
    "TwigNode",
    "path_stack",
    "twig_join",
]
