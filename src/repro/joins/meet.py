"""Generalized Meet (§6.1).

Schmidt et al.'s ``meet`` operator (ICDE'01) finds the lowest common
ancestor of elements containing the query terms.  The paper generalizes it
into a TermJoin baseline: *all* common ancestors are produced (walking up
the ancestor chain), partial matches included (ancestors containing only
some terms, scored lower).

The algorithm works level-by-level, as the recursive formulation suggests:
start from the elements directly containing term occurrences, then
repeatedly group by parent (a node-id grouping per round), merging
per-term counters — and, for complex scoring, occurrence lists and
relevant-child counts — processing levels strictly deepest-first so every
ancestor is emitted exactly once with complete information.

Relative to TermJoin this pays hash-grouping per level instead of one
stack merge pass, which is exactly why TermJoin beats it by a small factor
while both beat the composite plans by orders of magnitude (Tables 1-4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.access.results import ScoredElement
from repro.index.inverted import P_DOC, P_NODE, P_OFFSET
from repro.xmldb.store import XMLStore

#: Per-node accumulator: (per-term counts, occurrence list or None,
#: number of relevant children seen so far).
_Entry = Tuple[List[int], Optional[List[Tuple[str, int, int]]], int]


def generalized_meet(
    store: XMLStore,
    terms: Sequence[str],
    scorer,
    complex_scoring: bool = False,
) -> List[ScoredElement]:
    """Score every ancestor of every occurrence of ``terms``.

    ``scorer`` follows the TermJoin protocol
    (:mod:`repro.access.scorers`): ``score_from_counts`` for simple
    scoring or ``score_from_occurrences`` with ``complex_scoring``.
    Output order is deepest-level-first, document order within a level.
    """
    index = store.index
    structure = store.structure
    counters = store.counters
    term_list = list(terms)
    n_terms = len(term_list)

    # Level pools: level -> {(doc, node): entry}.  Seed with the elements
    # whose direct text holds an occurrence.
    pools: Dict[int, Dict[Tuple[int, int], _Entry]] = {}
    level_of: Dict[int, List[int]] = {}  # doc_id -> levels array
    for doc in store.documents():
        level_of[doc.doc_id] = doc.levels

    for ti, term in enumerate(term_list):
        postings = index.postings(term)
        counters.index_lookups += 1
        counters.postings_read += len(postings)
        for p in postings:
            doc_id, node_id = p[P_DOC], p[P_NODE]
            lvl = level_of[doc_id][node_id]
            pool = pools.setdefault(lvl, {})
            entry = pool.get((doc_id, node_id))
            if entry is None:
                entry = (
                    [0] * n_terms,
                    [] if complex_scoring else None,
                    0,
                )
                pool[(doc_id, node_id)] = entry
            entry[0][ti] += 1
            if complex_scoring:
                assert entry[1] is not None
                entry[1].append((term, node_id, p[P_OFFSET]))

    results: List[ScoredElement] = []
    if not pools:
        return results

    for lvl in range(max(pools), -1, -1):
        pool = pools.pop(lvl, None)
        if not pool:
            continue
        for (doc_id, node_id), (counts, occs, relevant) in pool.items():
            counters.nodes_fetched += 1
            if complex_scoring:
                assert occs is not None
                occs.sort(key=lambda o: (o[1], o[2]))
                n_children = structure.fanout(doc_id, node_id)
                counters.index_lookups += 1
                score = scorer.score_from_occurrences(
                    occs, n_children, relevant
                )
            else:
                score = scorer.score_from_counts(
                    {term_list[i]: c for i, c in enumerate(counts) if c}
                )
            results.append(ScoredElement(doc_id, node_id, score))

            parent = structure.parent(doc_id, node_id)
            counters.index_lookups += 1
            if parent < 0:
                continue
            ppool = pools.setdefault(lvl - 1, {})
            pentry = ppool.get((doc_id, parent))
            if pentry is None:
                ppool[(doc_id, parent)] = (
                    list(counts),
                    list(occs) if occs is not None else None,
                    1,
                )
            else:
                for i in range(n_terms):
                    pentry[0][i] += counts[i]
                if occs is not None and pentry[1] is not None:
                    pentry[1].extend(occs)
                ppool[(doc_id, parent)] = (pentry[0], pentry[1], pentry[2] + 1)
    return results
