"""Holistic twig joins: PathStack and TwigStack (Bruno et al., SIGMOD'02
— the paper's reference [6] for the structural-join substrate).

A *twig* is a small tree pattern with ancestor-descendant edges; the
holistic algorithms match whole twigs against the per-tag element streams
in one coordinated pass instead of joining binary ancestor/descendant
results pairwise.

- :func:`path_stack` — PathStack for linear paths: one stack per query
  node, entries pointing into the parent query node's stack; every
  root-to-leaf combination reachable through the pointers is a match.
- :func:`twig_join` — the holistic two-phase twig evaluation: PathStack
  per root-to-leaf path, then a hash merge on the shared prefix labels
  (TwigStack's getNext refinement, which merely suppresses useless path
  solutions early, is omitted — results are identical).
- :func:`naive_twig_join` — brute-force oracle used by the tests.

Wildcard twig nodes (tag ``*``) stream every element.

Matches are dictionaries ``{query node label: (doc_id, node_id)}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.index.structure import E_DOC, E_END, E_NODE, E_START, ElementRef
from repro.xmldb.store import XMLStore

Match = Dict[str, Tuple[int, int]]


@dataclass
class TwigNode:
    """One node of a twig pattern (edges to children are all
    ancestor-descendant)."""

    label: str
    tag: str
    children: List["TwigNode"] = field(default_factory=list)

    def add_child(self, child: "TwigNode") -> "TwigNode":
        self.children.append(child)
        return child

    def nodes(self) -> List["TwigNode"]:
        out = [self]
        for c in self.children:
            out.extend(c.nodes())
        return out

    def is_leaf(self) -> bool:
        return not self.children

    def paths(self) -> List[List["TwigNode"]]:
        """All root-to-leaf paths."""
        if self.is_leaf():
            return [[self]]
        return [[self] + rest for c in self.children for rest in c.paths()]


# ----------------------------------------------------------------------
# Streams
# ----------------------------------------------------------------------

class _Stream:
    """Cursor over a (doc, start)-sorted element list."""

    __slots__ = ("refs", "i")

    def __init__(self, refs: Sequence[ElementRef]):
        self.refs = refs
        self.i = 0

    def eof(self) -> bool:
        return self.i >= len(self.refs)

    def head(self) -> ElementRef:
        return self.refs[self.i]

    def advance(self) -> None:
        self.i += 1


def _key(ref: ElementRef) -> Tuple[int, int]:
    return ref[E_DOC], ref[E_START]


def _contains(a: ElementRef, b: ElementRef) -> bool:
    """Is element a a strict ancestor of b?"""
    return (
        a[E_DOC] == b[E_DOC]
        and a[E_START] < b[E_START]
        and b[E_END] <= a[E_END]
    )



def _stream_refs(store: XMLStore, tag: str):
    """Element stream for a twig node: per-tag list, or every element
    for the wildcard tag ``*``."""
    if tag == "*":
        return store.structure.all_elements()
    return store.structure.elements_with_tag(tag)

# ----------------------------------------------------------------------
# PathStack (linear paths)
# ----------------------------------------------------------------------

def path_stack(store: XMLStore, path: Sequence[TwigNode]) -> List[Match]:
    """All matches of a linear AD path, via the chained-stack algorithm.

    One pass over the merged streams; each stack entry records a pointer
    to the top of the parent stack at push time, encoding every ancestor
    combination compactly.  Matches are expanded on leaf pushes.
    """
    n = len(path)
    streams = [
        _Stream(_stream_refs(store, q.tag)) for q in path
    ]
    if n == 1:
        return [
            {path[0].label: (ref[E_DOC], ref[E_NODE])}
            for ref in streams[0].refs
        ]
    # stacks[i]: list of (ref, parent_stack_index)
    stacks: List[List[Tuple[ElementRef, int]]] = [[] for _ in range(n)]
    out: List[Match] = []

    def emit_leaf(leaf_entry_index: int) -> None:
        """Expand all root-to-leaf combinations ending at the pushed
        leaf entry."""
        def expand(level: int, entry_index: int, acc: List[ElementRef]):
            ref, parent_ptr = stacks[level][entry_index]
            acc.append(ref)
            if level == 0:
                out.append({
                    path[i].label: (acc[n - 1 - i][E_DOC],
                                    acc[n - 1 - i][E_NODE])
                    for i in range(n)
                })
            else:
                for j in range(parent_ptr + 1):
                    expand(level - 1, j, acc)
            acc.pop()

        expand(n - 1, leaf_entry_index, [])

    # Matches complete only on leaf pushes, so the pass ends exactly
    # when the leaf stream does.
    while not streams[n - 1].eof():
        # qmin: the stream with the minimal next start key among streams
        # that could still contribute.
        qmin = None
        kmin = None
        for i, s in enumerate(streams):
            if s.eof():
                continue
            k = _key(s.head())
            if kmin is None or k < kmin:
                kmin, qmin = k, i
        if qmin is None:
            break
        ref = streams[qmin].head()
        # Pop entries whose region ended before this element starts
        # (doc-aware), at every level.
        for lvl in range(n):
            st = stacks[lvl]
            while st and (
                st[-1][0][E_DOC] < ref[E_DOC]
                or st[-1][0][E_END] < ref[E_START]
            ):
                st.pop()
        if qmin == 0:
            stacks[0].append((ref, -1))
        else:
            # The parent pointer must reference a *strict* ancestor: if
            # the parent stack's top is this very element (same tag at
            # both query levels), step below it.
            pstack = stacks[qmin - 1]
            ptr = len(pstack) - 1
            if ptr >= 0 and (
                pstack[ptr][0][E_DOC] == ref[E_DOC]
                and pstack[ptr][0][E_START] == ref[E_START]
            ):
                ptr -= 1
            if ptr >= 0:
                stacks[qmin].append((ref, ptr))
                if qmin == n - 1:
                    emit_leaf(len(stacks[qmin]) - 1)
                    stacks[qmin].pop()
            # else: no strict-ancestor context on the parent stack; skip.
        streams[qmin].advance()
    return out


# ----------------------------------------------------------------------
# Naive oracle
# ----------------------------------------------------------------------

def naive_twig_join(store: XMLStore, root: TwigNode) -> List[Match]:
    """Brute-force twig matching (exponential; test oracle only)."""
    nodes = root.nodes()
    refs = {q.label: _stream_refs(store, q.tag)
            for q in nodes}
    out: List[Match] = []

    def extend(i: int, match: Dict[str, ElementRef]) -> None:
        if i == len(nodes):
            out.append({
                label: (ref[E_DOC], ref[E_NODE])
                for label, ref in match.items()
            })
            return
        q = nodes[i]
        parent = _parent_of(root, q)
        for ref in refs[q.label]:
            if parent is not None and not _contains(match[parent.label], ref):
                continue
            match[q.label] = ref
            extend(i + 1, match)
            del match[q.label]

    extend(0, {})
    return out


def _parent_of(root: TwigNode, target: TwigNode) -> Optional[TwigNode]:
    for q in root.nodes():
        if target in q.children:
            return q
    return None


# ----------------------------------------------------------------------
# Twig join: path solutions + merge
# ----------------------------------------------------------------------

def twig_join(store: XMLStore, root: TwigNode) -> List[Match]:
    """All matches of an AD-edge twig, via the holistic two-phase
    strategy of Bruno et al.: compute each root-to-leaf path's solutions
    with the stack-chained :func:`path_stack` pass, then merge-join the
    per-path solutions on their shared prefix nodes (hash join keyed by
    the shared labels).

    This implements the *semantics* of the holistic twig join exactly;
    TwigStack's additional ``getNext`` coordination (which suppresses
    path solutions that cannot extend to a full twig before they are
    materialized) is a performance refinement we do not need at this
    substrate's scale, so intermediate path solutions may be larger than
    TwigStack's optimal bound — results are identical.
    """
    paths = root.paths()
    partials: List[Match] = path_stack(store, paths[0])
    seen_labels = {q.label for q in paths[0]}
    for path in paths[1:]:
        solutions = path_stack(store, path)
        shared = [q.label for q in path if q.label in seen_labels]
        new_labels = [q.label for q in path if q.label not in seen_labels]
        # Hash join on the shared-label assignment.
        table: Dict[tuple, List[Match]] = {}
        for sol in solutions:
            key = tuple(sol[lbl] for lbl in shared)
            table.setdefault(key, []).append(sol)
        merged: List[Match] = []
        for partial in partials:
            key = tuple(partial[lbl] for lbl in shared)
            for sol in table.get(key, ()):
                m = dict(partial)
                for lbl in new_labels:
                    m[lbl] = sol[lbl]
                merged.append(m)
        partials = merged
        seen_labels.update(new_labels)
        if not partials:
            break
    return partials
