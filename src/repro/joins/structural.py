"""Stack-based structural (containment) joins.

``stack_tree_join`` is the Stack-Tree algorithm specialized to the
ancestor/descendant join the composite baselines need: given a list of
candidate ancestor elements and a list of descendant items (element refs
or term postings), both sorted by ``(doc, start)``, produce every
(ancestor, descendant) pair in one merge pass with a stack of nested
ancestors.

Inputs use the flat tuple encodings of :mod:`repro.index`:

- ancestors: ``ElementRef = (doc, start, end, level, node)``;
- descendants: either element refs or postings
  ``(doc, pos, node, offset)`` — for a posting, containment means
  ``a.start < pos <= a.end`` (word positions are drawn from the same
  counter as element keys, so the strict/inclusive mix is exact).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.index.structure import ElementRef
from repro.resilience import guard as _resguard

#: Output pair: (ancestor element ref, descendant item).
JoinPair = Tuple[ElementRef, tuple]


def _desc_key(item: tuple) -> Tuple[int, int]:
    """(doc, start-or-pos) of a descendant item.  Element refs and
    postings both keep doc at index 0 and the position at index 1."""
    return item[0], item[1]


def _desc_end(item: tuple) -> int:
    """End key of a descendant item (== pos for postings, whose 'region'
    is the single word position)."""
    if len(item) == 5:  # ElementRef
        return item[2]
    return item[1]       # posting: zero-width region at pos


def stack_tree_join(
    ancestors: Sequence[ElementRef],
    descendants: Sequence[tuple],
) -> List[JoinPair]:
    """All (ancestor, descendant) containment pairs, via one merge pass.

    Both inputs must be sorted by ``(doc, start)``.  Output is ordered by
    descendant, with that descendant's ancestors innermost-last (stack
    order bottom-up is outermost-first).

    This is output-sensitive: O(|A| + |D| + |output|).
    """
    out: List[JoinPair] = []
    stack: List[ElementRef] = []
    ai = 0
    n_anc = len(ancestors)

    def ended_before(top: ElementRef, doc: int, pos: int) -> bool:
        """Does the stacked ancestor end before position (doc, pos)?"""
        return top[0] < doc or (top[0] == doc and top[2] < pos)

    # Guard hook: hoisted boolean per descendant when inactive, a
    # deadline/cancellation check every 256 descendants when active.
    guard = _resguard.GUARD
    guard_active = guard.active
    gi = 0

    for d in descendants:
        if guard_active:
            gi += 1
            if not (gi & 255):
                guard.tick(256)
        d_doc, d_pos = _desc_key(d)
        # Push every ancestor that starts before this descendant,
        # popping finished ones as we go (nested regions make the stack
        # discipline exact).
        while ai < n_anc:
            a = ancestors[ai]
            if a[0] < d_doc or (a[0] == d_doc and a[1] < d_pos):
                while stack and ended_before(stack[-1], a[0], a[1]):
                    stack.pop()
                stack.append(a)
                ai += 1
            else:
                break
        while stack and ended_before(stack[-1], d_doc, d_pos):
            stack.pop()
        for a in stack:
            out.append((a, d))
    return out


def naive_structural_join(
    ancestors: Sequence[ElementRef],
    descendants: Sequence[tuple],
) -> List[JoinPair]:
    """Quadratic oracle: every containment pair by brute force.  Output
    order matches :func:`stack_tree_join` (descendant-major, outermost
    ancestor first)."""
    out: List[JoinPair] = []
    guard = _resguard.GUARD
    guard_active = guard.active
    for d in descendants:
        # Each iteration scans the whole ancestor table, so one check
        # per descendant keeps the guard granularity comparable to the
        # strided checks of the merge join.
        if guard_active:
            guard.tick()
        d_doc, d_pos = _desc_key(d)
        d_end = _desc_end(d)
        matches = [
            a for a in ancestors
            if a[0] == d_doc and a[1] < d_pos and d_end <= a[2]
        ]
        matches.sort(key=lambda a: a[1])
        out.extend((a, d) for a in matches)
    return out


def ancestors_of_postings(
    ancestors: Sequence[ElementRef],
    postings: Sequence[tuple],
) -> List[JoinPair]:
    """Alias of :func:`stack_tree_join` specialized in name for the
    element×posting case (readability at call sites)."""
    return stack_tree_join(ancestors, postings)
