"""Structured query audit log: one schema-versioned JSONL record per
query.

Metrics (:mod:`repro.obs.metrics`) answer *how much* the engine is
doing; the audit log answers *what happened to each query* — the
record a production operator greps when a user reports a slow or
failing request.  Every top-level query execution that flows through
:func:`repro.resilience.run.run_query_guarded`,
:class:`repro.perf.querycache.QueryCache`, or
:func:`repro.perf.batch.execute_batch` emits one event carrying

- a stable hash of the query text (never the text itself — query
  strings may embed user data),
- the outcome (``ok`` / ``truncated`` / ``error``) with the guard
  verdict and degradation flag,
- wall time and row count,
- result-cache and plan-cache hit/miss,
- the top operators of the executed plan (from
  :func:`repro.engine.base.plan_stats`).

The sink follows the recorder's **zero-overhead contract**: the
module-level :data:`SINK` is a :class:`NullSink` by default, and
:func:`observe_query` returns a shared no-op context manager when no
sink is installed — instrumented entry points pay one attribute test
and one call per *query* (never per tuple).  Nested entry points
(``execute_batch`` → ``QueryCache`` → ``run_query_guarded``) share one
event per query: the outermost ``observe_query`` owns emission, inner
layers annotate via :func:`current_event`.

:class:`JsonlSink` adds production controls: a **sampling rate**
(deterministic under a fixed ``seed``) bounds log volume, and a
**slow-query threshold** force-logs outliers regardless of sampling so
the tail is never sampled away.
"""

from __future__ import annotations

import hashlib
import json
import random
import threading
import time
from contextlib import contextmanager
from types import TracebackType
from typing import (
    IO,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Type,
    Union,
)

from repro import obs as _obs

__all__ = [
    "SCHEMA_VERSION", "QueryEvent", "NullSink", "JsonlSink", "SINK",
    "install_sink", "uninstall_sink", "logging_queries", "observe_query",
    "current_event", "query_hash", "plan_top_ops", "iter_events",
    "filter_events", "set_trace_id", "current_trace_id",
]

#: Version of the JSONL record layout (the ``"v"`` field).  Bump when a
#: field changes meaning or disappears; adding fields is compatible.
#:
#: - v1: initial layout;
#: - v2: per-operator ``est_rows``/``q_error`` in ``ops`` (``None`` on
#:   plans the estimator never annotated);
#: - v3: ``trace_id`` joins the record to the server's retained
#:   distributed trace ("" for untraced executions).  Readers
#:   (``tix events``, ``tix feedback``) accept all versions.
SCHEMA_VERSION = 3


def query_hash(source: str) -> str:
    """Stable 16-hex-digit SHA-256 prefix of the query text — enough to
    correlate repeats without logging user-provided query strings."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


class QueryEvent:
    """One query's audit record under construction.

    Entry points mutate the fields as facts become known (cache tier
    verdicts, guard trips, plan stats); :meth:`to_record` freezes the
    schema-versioned JSON shape at emission time.
    """

    __slots__ = (
        "source", "kind", "ts", "wall_ms", "outcome", "rows",
        "truncated", "reason", "error_type", "cache", "plan_cache",
        "guarded", "degraded", "guard_trip", "ops", "trace_id", "_t0",
    )

    def __init__(self, source: str, kind: str = "query") -> None:
        self.source = source
        self.kind = kind
        self.trace_id = current_trace_id()
        self.ts = time.time()
        self.wall_ms = 0.0
        self.outcome = "ok"            # ok | truncated | error
        self.rows = 0
        self.truncated = False
        self.reason = ""
        self.error_type = ""
        self.cache = ""                # result tier: hit | miss | ""
        self.plan_cache = ""           # plan tier:   hit | miss | ""
        self.guarded = False
        self.degraded = False
        self.guard_trip = ""           # exception type name of the trip
        self.ops: List[Dict[str, object]] = []
        self._t0 = time.perf_counter()

    # -- annotation helpers (called by the wired entry points) ---------

    def note_guard(self, guard: object) -> None:
        """Record the guard verdict: active/degrade flags plus the trip
        exception type when the guard tripped."""
        if not getattr(guard, "active", False):
            return
        self.guarded = True
        self.degraded = bool(getattr(guard, "degrade", False))
        tripped = getattr(guard, "tripped", None)
        if tripped is not None:
            self.guard_trip = type(tripped).__name__

    def note_result(self, n_rows: int, truncated: bool = False,
                    reason: str = "") -> None:
        """Record a well-formed result: row count and truncation."""
        self.rows = n_rows
        self.truncated = truncated
        self.reason = reason
        self.outcome = "truncated" if truncated else "ok"

    def note_error(self, error_type: str, reason: str = "") -> None:
        """Record a per-query failure (captured or propagating)."""
        self.outcome = "error"
        self.error_type = error_type
        if reason:
            self.reason = reason

    def note_plan(self, plan: object, limit: int = 3) -> None:
        """Attach the executed plan's top operators (by inclusive
        time, then rows) from :func:`repro.engine.base.plan_stats`."""
        self.ops = plan_top_ops(plan, limit=limit)

    # -- emission ------------------------------------------------------

    def to_record(self) -> Dict[str, object]:
        """The schema-versioned JSON record (see ``SCHEMA_VERSION``)."""
        return {
            "v": SCHEMA_VERSION,
            "ts": self.ts,
            "kind": self.kind,
            "query_sha256": query_hash(self.source),
            "outcome": self.outcome,
            "wall_ms": round(self.wall_ms, 3),
            "rows": self.rows,
            "truncated": self.truncated,
            "reason": self.reason,
            "error_type": self.error_type,
            "cache": self.cache,
            "plan_cache": self.plan_cache,
            "guard": {
                "active": self.guarded,
                "degraded": self.degraded,
                "trip": self.guard_trip,
            },
            "ops": list(self.ops),
            "trace_id": self.trace_id,
        }


def plan_top_ops(plan: Any, limit: int = 3) -> List[Dict[str, object]]:
    """The ``limit`` most expensive operators of an executed plan as
    flat ``{operator, rows, est_rows, q_error, time_ms}`` dicts, ordered
    by inclusive time (rows break ties — timings are zero when no
    collector ran).  ``est_rows``/``q_error`` are ``None`` when the
    estimator never annotated the plan (schema v2; see
    ``SCHEMA_VERSION``)."""
    from repro.engine.base import plan_stats

    ranked: List[Any] = []

    def walk(node: Dict[str, Any]) -> None:
        time_ms = float(node["time_ms"])
        rows = int(node["rows"])
        est = node["est_rows"]
        q = node["q_error"]
        ranked.append((time_ms, rows, {
            "operator": node["describe"],
            "rows": rows,
            "est_rows": round(float(est), 1) if est is not None else None,
            "q_error": round(float(q), 3) if q is not None else None,
            "time_ms": round(time_ms, 3),
        }))
        for child in node["children"]:
            walk(child)

    walk(plan_stats(plan))
    ranked.sort(key=lambda entry: (entry[0], entry[1]), reverse=True)
    return [entry[2] for entry in ranked[:limit]]


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------

class NullSink:
    """The default sink: disabled, every method a no-op."""

    enabled = False

    def emit(self, event: QueryEvent) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlSink(NullSink):
    """Append-only JSONL sink with sampling and slow-query force-log.

    :param target: a path (opened in append mode and owned by the sink)
        or an open text file object (borrowed — ``close()`` leaves it
        open);
    :param sample_rate: fraction of events written (``1.0`` = all).
        The decision sequence is drawn from ``random.Random(seed)``, so
        a fixed seed makes sampling reproducible;
    :param slow_ms: wall-time threshold above which an event is written
        regardless of sampling, with ``"slow": true`` in the record —
        the latency tail is never sampled away.

    Writes are lock-serialized (one JSON object per line, flushed), so
    the batch executor's workers can share one sink.
    """

    enabled = True

    def __init__(self, target: Union[str, IO[str]], *,
                 sample_rate: float = 1.0,
                 slow_ms: Optional[float] = None,
                 seed: Optional[int] = None) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate {sample_rate} outside [0, 1]"
            )
        if isinstance(target, str):
            self.path: Optional[str] = target
            # Long-lived handle by design: the sink IS the owner and
            # close() releases it.
            self._fh: IO[str] = open(  # tix-lint: disable=resource-safety
                target, "a", encoding="utf-8"
            )
            self._owns = True
        else:
            self.path = getattr(target, "name", None)
            self._fh = target
            self._owns = False
        self.sample_rate = sample_rate
        self.slow_ms = slow_ms
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.emitted = 0
        self.sampled_out = 0
        self.slow_forced = 0

    def emit(self, event: QueryEvent) -> None:
        slow = (
            self.slow_ms is not None and event.wall_ms >= self.slow_ms
        )
        with self._lock:
            # One draw per event, slow or not, so the decision sequence
            # under a fixed seed does not depend on observed latencies.
            drawn = (
                self.sample_rate >= 1.0
                or self._rng.random() < self.sample_rate
            )
            if not (drawn or slow):
                self.sampled_out += 1
                rec = _obs.RECORDER
                if rec.enabled:
                    rec.count("obs.events.sampled_out")
                return
            record = event.to_record()
            record["slow"] = slow
            if slow and not drawn:
                self.slow_forced += 1
            self.emitted += 1
            # Writing under the lock is this sink's contract: one
            # JSON line per event, never interleaved across threads.
            # tix-lint: disable=blocking-under-lock
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()  # tix-lint: disable=blocking-under-lock
        rec = _obs.RECORDER
        if rec.enabled:
            rec.count("obs.events.emitted")
            if slow and not drawn:
                rec.count("obs.events.slow_forced")

    def close(self) -> None:
        if self._owns:
            self._fh.close()


# ----------------------------------------------------------------------
# Installation + the observe_query entry point
# ----------------------------------------------------------------------

#: The process-wide sink.  Read via ``events.SINK`` at call time.
SINK: NullSink = NullSink()

_sink_stack: List[NullSink] = []


def install_sink(sink: NullSink) -> None:
    """Install ``sink`` as the active audit-log sink.  Installs nest:
    :func:`uninstall_sink` restores the previously active sink."""
    global SINK
    _sink_stack.append(SINK)
    SINK = sink


def uninstall_sink() -> None:
    """Restore the sink active before the last :func:`install_sink`."""
    global SINK
    if not _sink_stack:
        raise RuntimeError(
            "uninstall_sink() without a matching install_sink()"
        )
    SINK = _sink_stack.pop()


@contextmanager
def logging_queries(target: Union[str, IO[str]],
                    **kwargs: Any) -> Iterator[JsonlSink]:
    """Install a fresh :class:`JsonlSink` for the duration of the
    block (keyword arguments are forwarded to the sink)."""
    sink = JsonlSink(target, **kwargs)
    install_sink(sink)
    try:
        yield sink
    finally:
        uninstall_sink()
        sink.close()


class _EventState(threading.local):
    """Per-thread stack of in-flight events: the outermost
    ``observe_query`` owns the record, nested ones annotate it.  Also
    carries the thread's pending trace id (see :func:`set_trace_id`)."""

    def __init__(self) -> None:
        self.stack: List[QueryEvent] = []
        self.trace_id = ""


_STATE = _EventState()


def set_trace_id(trace_id: str) -> None:
    """Tag audit events created on the calling thread with
    ``trace_id`` until cleared (``set_trace_id("")``).  The query
    server brackets each request with this so the audit record joins
    back to the retained distributed trace; thread-local, so
    concurrent requests never cross-tag."""
    _STATE.trace_id = trace_id


def current_trace_id() -> str:
    """The calling thread's pending trace id ("" when untraced)."""
    return _STATE.trace_id


def current_event() -> Optional[QueryEvent]:
    """The in-flight event of the calling thread's outermost
    ``observe_query`` (``None`` when no sink is installed or no query
    is being observed).  Annotation sites (cache tiers, guarded
    executors) use this to enrich the record without owning it."""
    stack = _STATE.stack
    return stack[-1] if stack else None


class _NullObservation:
    """Shared no-op context manager: the disabled path allocates
    nothing."""

    __slots__ = ()

    def __enter__(self) -> Optional[QueryEvent]:
        return None

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> bool:
        return False


_NULL_OBSERVATION = _NullObservation()


class _Observation:
    """Context manager for one observed query.  Only the outermost
    (non-nested) observation stamps wall time and emits."""

    __slots__ = ("event", "_nested")

    def __init__(self, event: QueryEvent, nested: bool) -> None:
        self.event = event
        self._nested = nested

    def __enter__(self) -> QueryEvent:
        return self.event

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> bool:
        if self._nested:
            return False
        ev = self.event
        stack = _STATE.stack
        if stack and stack[-1] is ev:
            stack.pop()
        ev.wall_ms = (time.perf_counter() - ev._t0) * 1000.0
        if exc_type is not None:
            ev.note_error(exc_type.__name__, str(exc) if exc else "")
        SINK.emit(ev)
        return False


def observe_query(
    source: str, kind: str = "query",
) -> Union[_NullObservation, _Observation]:
    """Observe one query execution for the audit log.

    Usage at an entry point::

        with events.observe_query(source) as ev:
            res = ...
            if ev is not None:
                ev.note_result(len(res))

    Returns a shared no-op context manager (yielding ``None``) when no
    sink is installed.  When the calling thread is already inside an
    ``observe_query`` block, the *outer* event is yielded and emission
    stays with the outer block — nested entry points annotate one
    shared record instead of double-logging.
    """
    if not SINK.enabled:
        return _NULL_OBSERVATION
    stack = _STATE.stack
    if stack:
        return _Observation(stack[-1], nested=True)
    event = QueryEvent(source, kind=kind)
    stack.append(event)
    return _Observation(event, nested=False)


# ----------------------------------------------------------------------
# Reading the log back (tix events, tests)
# ----------------------------------------------------------------------

def iter_events(lines: Iterable[str]) -> Iterator[Dict[str, object]]:
    """Parse JSONL audit-log lines into records, skipping blank lines.
    Raises :class:`ValueError` (with the line number) on a line that is
    not a JSON object."""
    for lineno, line in enumerate(lines, 1):
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"audit log line {lineno}: not valid JSON ({exc})"
            ) from exc
        if not isinstance(record, dict):
            raise ValueError(
                f"audit log line {lineno}: expected a JSON object"
            )
        yield record


def filter_events(records: Iterable[Dict[str, object]], *,
                  outcome: Optional[str] = None,
                  min_wall_ms: Optional[float] = None,
                  slow_only: bool = False,
                  ) -> Iterator[Dict[str, object]]:
    """Filter audit records the way ``tix events`` does: by outcome,
    by minimum wall time, and/or to force-logged slow queries only."""
    for record in records:
        if outcome is not None and record.get("outcome") != outcome:
            continue
        if min_wall_ms is not None:
            wall = record.get("wall_ms")
            if not isinstance(wall, (int, float)) or wall < min_wall_ms:
                continue
        if slow_only and not record.get("slow"):
            continue
        yield record
