"""Request-scoped distributed traces with tail-based retention.

The PR 1 tracer (:mod:`repro.obs.trace`) collects spans inside one
process; this module makes those spans *request-scoped* and keeps the
ones that matter:

- :class:`TraceContext` is the propagated identity: a ``trace_id``
  minted by the first hop (normally the pooled client), the parent
  span id, and a per-retry ``attempt`` counter.  It rides in wire
  frames as an optional ``"trace"`` field — an old peer simply ignores
  it, and a frame without it makes the server mint a root trace
  locally, so mixed client/server versions interoperate.
- :class:`Trace` is one request's causal story: the propagated
  context, timing, the outcome (ok / truncated / error, degraded,
  wire error code), and the request's span tree — the same
  :class:`~repro.obs.trace.Span` objects the engine's operators
  produce, so a retained trace nests queue wait → guard execution →
  per-operator spans with zero extra bookkeeping.
- :class:`TraceStore` is a bounded, thread-safe registry:
  every trace is visible while in flight (the ``tix top`` live view),
  and completed traces are **promoted by the tail**, not the head —
  :class:`RetentionPolicy` always keeps slow, errored, and
  degraded/truncated requests, while fast successes are kept at the
  head-sample rate (drawn at trace *begin*, so the decision is
  latency-independent).  The retained ring evicts oldest-first under
  pressure, counting ``trace.dropped`` rather than corrupting
  retained trees.

Metric emission happens *outside* the store's lock (the deferred
safe-point lesson of the lock sanitizer): the store computes what to
emit under its lock and flushes after release, so the trace path never
nests the metrics registry's locks inside its own.
"""

from __future__ import annotations

import random
import threading
import time
import uuid
from collections import OrderedDict
from typing import Any, Dict, List, Optional

from repro import obs as _obs
from repro.obs.trace import Span, chrome_trace_events

__all__ = [
    "TraceContext", "Trace", "RetentionPolicy", "TraceStore",
    "new_trace_id", "new_span_id", "chrome_trace_from_dict",
]


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 16-hex-digit span id (client-side send spans)."""
    return uuid.uuid4().hex[:16]


class TraceContext:
    """The propagated trace identity carried across the wire.

    ``attempt`` counts client retries of the same logical call (0 for
    the first attempt), so a retry storm shows up as one trace id with
    ascending attempts instead of unrelated traces.
    """

    __slots__ = ("trace_id", "parent_span_id", "attempt")

    def __init__(self, trace_id: str, parent_span_id: str = "",
                 attempt: int = 0) -> None:
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.attempt = attempt

    @classmethod
    def mint(cls) -> "TraceContext":
        """A fresh root context (what the pooled client creates per
        logical call)."""
        return cls(new_trace_id(), parent_span_id=new_span_id())

    def to_wire(self) -> Dict[str, Any]:
        """The frame field value (``{"id": …, "span": …, "attempt": …}``)."""
        return {
            "id": self.trace_id,
            "span": self.parent_span_id,
            "attempt": self.attempt,
        }

    @classmethod
    def from_wire(cls, obj: Any) -> Optional["TraceContext"]:
        """Parse a frame's ``"trace"`` field.  Tolerant by contract:
        an absent, malformed, or partial value returns ``None`` (the
        server then mints a root trace locally) — never raises, so an
        old or buggy client cannot poison the serving path."""
        if not isinstance(obj, dict):
            return None
        trace_id = obj.get("id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        span = obj.get("span")
        attempt = obj.get("attempt")
        return cls(
            trace_id=trace_id,
            parent_span_id=span if isinstance(span, str) else "",
            attempt=attempt if isinstance(attempt, int)
            and attempt >= 0 else 0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TraceContext({self.trace_id!r}, "
                f"parent={self.parent_span_id!r}, "
                f"attempt={self.attempt})")


class Trace:
    """One request's trace: propagated context, timing, outcome, and
    (when a collector is installed) the request's span tree."""

    __slots__ = (
        "trace_id", "parent_span_id", "attempt", "op", "query_sha256",
        "started_ts", "start_ns", "end_ns", "outcome", "error_code",
        "degraded", "truncated", "queued_ms", "retained_for",
        "head_sampled", "root", "store_key",
    )

    def __init__(self, trace_id: str, *, parent_span_id: str = "",
                 attempt: int = 0, op: str = "query",
                 query_sha256: str = "") -> None:
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.attempt = attempt
        self.op = op
        self.query_sha256 = query_sha256
        self.started_ts = time.time()
        self.start_ns = time.perf_counter_ns()
        self.end_ns: Optional[int] = None
        self.outcome = ""              # "" (in flight) | ok|truncated|error
        self.error_code = ""           # wire error code on failure
        self.degraded = False
        self.truncated = False
        self.queued_ms = 0.0
        self.retained_for = ""         # slow | error | degraded | sampled
        self.head_sampled = False
        self.root: Optional[Span] = None
        self.store_key = trace_id      # registry key (uniquified on retry)

    @property
    def completed(self) -> bool:
        return self.end_ns is not None

    @property
    def wall_ms(self) -> float:
        """Elapsed time: final for a completed trace, running for an
        in-flight one."""
        end = self.end_ns
        if end is None:
            end = time.perf_counter_ns()
        return (end - self.start_ns) / 1e6

    @property
    def n_spans(self) -> int:
        return self.root.n_spans() if self.root is not None else 0

    def summary(self) -> Dict[str, Any]:
        """The flat listing row (``tix top``, the ``traces`` wire op)."""
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "attempt": self.attempt,
            "op": self.op,
            "query_sha256": self.query_sha256,
            "ts": round(self.started_ts, 3),
            "status": "completed" if self.completed else "inflight",
            "wall_ms": round(self.wall_ms, 3),
            "queued_ms": round(self.queued_ms, 3),
            "outcome": self.outcome,
            "error_code": self.error_code,
            "degraded": self.degraded,
            "truncated": self.truncated,
            "retained_for": self.retained_for,
            "n_spans": self.n_spans,
        }

    def to_dict(self) -> Dict[str, Any]:
        """Summary plus the nested span tree (snapshot-safe: open
        spans of an in-flight trace export as well-formed partials)."""
        d = self.summary()
        root = self.root
        d["spans"] = (
            root.to_dict(time.perf_counter_ns())
            if root is not None else None
        )
        return d

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The trace's span tree in Chrome ``traceEvents`` format."""
        root = self.root
        return chrome_trace_events([root] if root is not None else [])


def chrome_trace_from_dict(trace: Dict[str, Any]) -> Dict[str, Any]:
    """Chrome ``traceEvents`` from a *serialized* trace (the
    :meth:`Trace.to_dict` form) — ``tix trace FILE --chrome-out``
    converts a saved trace without the live :class:`Span` objects."""
    events: List[Dict[str, Any]] = []
    spans = trace.get("spans")
    if not isinstance(spans, dict):
        return {"traceEvents": events}
    t0 = int(spans.get("start_ns", 0))
    tids: Dict[int, int] = {}

    def emit(d: Dict[str, Any]) -> None:
        args = dict(d.get("attrs") or {})
        if d.get("open"):
            args["open"] = True
        events.append({
            "name": d.get("name", ""),
            "ph": "X",
            "ts": (int(d.get("start_ns", t0)) - t0) / 1e3,
            "dur": int(d.get("duration_ns", 0)) / 1e3,
            "pid": 0,
            "tid": tids.setdefault(int(d.get("tid", 0)), len(tids)),
            "args": args,
        })
        for child in d.get("children") or []:
            if isinstance(child, dict):
                emit(child)

    emit(spans)
    return {"traceEvents": events}


class RetentionPolicy:
    """Tail-based promotion verdicts for completed traces.

    Forced retention (the tail): typed errors, degraded or truncated
    results, and requests slower than ``slow_ms``.  Everything else —
    the fast successes — follows ``sample_rate``, drawn when the trace
    *begins* so the verdict cannot correlate with the latency it is
    meant to be independent of.  The draw sequence is deterministic
    under a fixed ``seed``.

    Not thread-safe by itself: the trace store calls it under its own
    lock.
    """

    def __init__(self, *, slow_ms: Optional[float] = 250.0,
                 sample_rate: float = 0.0,
                 retain_errors: bool = True,
                 retain_degraded: bool = True,
                 seed: Optional[int] = None) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate {sample_rate} outside [0, 1]"
            )
        self.slow_ms = slow_ms
        self.sample_rate = sample_rate
        self.retain_errors = retain_errors
        self.retain_degraded = retain_degraded
        self._rng = random.Random(seed)

    def head_sample(self) -> bool:
        """One head-sampling draw (made at trace begin)."""
        if self.sample_rate >= 1.0:
            return True
        if self.sample_rate <= 0.0:
            return False
        return self._rng.random() < self.sample_rate

    def verdict(self, trace: Trace) -> str:
        """The retention reason for a completed trace ("" = drop).
        Forced reasons win over the head-sample draw, so the tail is
        never sampled away."""
        if self.retain_errors and trace.outcome == "error":
            return "error"
        if self.retain_degraded and (trace.degraded or trace.truncated):
            return "degraded"
        if self.slow_ms is not None and trace.wall_ms >= self.slow_ms:
            return "slow"
        if trace.head_sampled:
            return "sampled"
        return ""


class TraceStore:
    """Bounded, thread-safe registry of in-flight and retained traces.

    ``capacity`` bounds the retained ring: promotion beyond it evicts
    the oldest retained trace (``trace.dropped``).  In-flight traces
    are never evicted — they are bounded by the server's admission
    ladder, not by this store.
    """

    def __init__(self, capacity: int = 256,
                 policy: Optional[RetentionPolicy] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.policy = policy if policy is not None else RetentionPolicy()
        self._lock = threading.Lock()
        self._inflight: "OrderedDict[str, Trace]" = OrderedDict()
        self._retained: "OrderedDict[str, Trace]" = OrderedDict()
        # Lifetime tallies (mirrored as trace.* metrics when collecting).
        self.started = 0
        self.completed = 0
        self.retained_count = 0
        self.dropped = 0

    # -- lifecycle -------------------------------------------------------

    def begin(self, context: Optional[TraceContext] = None, *,
              op: str = "query", query_sha256: str = "") -> Trace:
        """Register a new in-flight trace.  With a propagated
        ``context`` the trace continues the client's id; without one
        (an old client, or a locally issued query) a root trace is
        minted here."""
        if context is not None:
            trace = Trace(
                context.trace_id,
                parent_span_id=context.parent_span_id,
                attempt=context.attempt,
                op=op, query_sha256=query_sha256,
            )
        else:
            trace = Trace(new_trace_id(), op=op, query_sha256=query_sha256)
        with self._lock:
            trace.head_sampled = self.policy.head_sample()
            # A colliding id (a client retrying with the same trace id
            # while the first attempt is still in flight) keys on
            # id#attempt so neither tree is lost.
            key = trace.trace_id
            if key in self._inflight:
                key = f"{trace.trace_id}#{trace.attempt}"
                while key in self._inflight:
                    key += "+"
            trace.store_key = key
            self._inflight[key] = trace
            self.started += 1
            inflight = len(self._inflight)
        rec = _obs.RECORDER
        if rec.enabled:
            rec.count("trace.started")
            rec.set_gauge("trace.inflight", inflight)
        return trace

    def complete(self, trace: Trace, *, outcome: str = "ok",
                 error_code: str = "", degraded: bool = False,
                 truncated: bool = False) -> str:
        """Finish ``trace``, apply the retention policy, and return the
        retention reason ("" when the trace was dropped)."""
        trace.end_ns = time.perf_counter_ns()
        trace.outcome = outcome
        trace.error_code = error_code
        trace.degraded = degraded
        trace.truncated = truncated
        evicted = 0
        with self._lock:
            self._inflight.pop(trace.store_key, None)
            self.completed += 1
            reason = self.policy.verdict(trace)
            trace.retained_for = reason
            if reason:
                self._retained[self._retained_key(trace)] = trace
                self.retained_count += 1
                while len(self._retained) > self.capacity:
                    self._retained.popitem(last=False)
                    evicted += 1
                self.dropped += evicted
            inflight = len(self._inflight)
        rec = _obs.RECORDER
        if rec.enabled:
            rec.count("trace.completed")
            rec.set_gauge("trace.inflight", inflight)
            if reason:
                rec.count(f"trace.retained.{reason}")
            if evicted:
                rec.count("trace.dropped", evicted)
        return reason

    def _retained_key(self, trace: Trace) -> str:
        key = trace.store_key
        while key in self._retained:
            key += "+"
        return key

    # -- lookup ----------------------------------------------------------

    def get(self, trace_id: str) -> Optional[Trace]:
        """The trace registered under ``trace_id`` (in flight or
        retained; retained wins for a completed id)."""
        with self._lock:
            trace = self._retained.get(trace_id)
            if trace is None:
                trace = self._inflight.get(trace_id)
            return trace

    def inflight(self) -> List[Trace]:
        with self._lock:
            return list(self._inflight.values())

    def retained(self) -> List[Trace]:
        """Retained traces, oldest first."""
        with self._lock:
            return list(self._retained.values())

    def snapshot(self, limit: int = 50) -> Dict[str, Any]:
        """The ``/traces`` payload: counters plus in-flight and
        retained summaries (retained newest-first, capped at
        ``limit``)."""
        with self._lock:
            inflight = list(self._inflight.values())
            retained = list(self._retained.values())
            counters = self._stats_locked()
        return {
            "stats": counters,
            "inflight": [t.summary() for t in inflight],
            "retained": [
                t.summary() for t in reversed(retained[-limit:])
            ],
        }

    def _stats_locked(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "started": self.started,
            "completed": self.completed,
            "inflight": len(self._inflight),
            "retained": len(self._retained),
            "retained_total": self.retained_count,
            "dropped": self.dropped,
        }

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return self._stats_locked()
