"""Engine-wide observability: metrics registry + query tracer.

Design contract — **zero overhead unless collecting**.  The module-level
:data:`RECORDER` is a :class:`NullRecorder` by default; instrumented code
follows one of two patterns:

- hot paths (``Operator.next``, posting-list fetches) guard on
  ``obs.RECORDER.enabled`` — a single attribute test — and do *no*
  timing or metric work when it is ``False``;
- cold paths (index builds, query compilation) call
  ``obs.RECORDER.span(...)`` / ``.count(...)`` unconditionally; the null
  recorder's methods are argument-discarding no-ops.

Installing a :class:`Collector` (usually via the :func:`collecting`
context manager) flips ``enabled`` and routes everything into a fresh
:class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.trace.Tracer`::

    from repro import obs

    with obs.collecting() as col:
        results = execute(plan)
    print(col.metrics.render())
    json.dump(col.tracer.to_chrome_trace(), open("trace.json", "w"))

Always access the recorder as ``obs.RECORDER`` (module attribute), never
``from repro.obs import RECORDER`` — the latter snapshots the null
recorder and misses a later install.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import ContextManager, Iterator, List, Optional, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Span", "Tracer",
    "Collector", "NullRecorder", "RECORDER",
    "install", "uninstall", "collecting", "recorder",
]


class _NullSpan:
    """Reusable no-op context manager returned by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The default recorder: every method is a no-op, ``enabled`` is
    ``False`` so hot paths skip instrumentation entirely."""

    enabled = False

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        pass

    def observe(self, name: str, value: Union[int, float],
                exemplar: Optional[str] = None) -> None:
        pass

    def set_gauge(self, name: str, value: Union[int, float]) -> None:
        pass

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def begin_span(self, name: str, **attrs: object) -> None:
        return None

    def end_span(self, span: object) -> None:
        pass


class Collector(NullRecorder):
    """An active recorder: a metrics registry plus a tracer."""

    enabled = True

    def __init__(self, max_spans: int = 100_000) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(max_spans=max_spans)

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        self.metrics.count(name, n)

    def observe(self, name: str, value: Union[int, float],
                exemplar: Optional[str] = None) -> None:
        self.metrics.observe(name, value, exemplar)

    def set_gauge(self, name: str, value: Union[int, float]) -> None:
        self.metrics.set_gauge(name, value)

    def span(self, name: str,
             **attrs: object) -> ContextManager[Optional[Span]]:
        return self.tracer.span(name, **attrs)

    def begin_span(self, name: str, **attrs: object) -> Optional[Span]:
        return self.tracer.begin(name, **attrs)

    def end_span(self, span: Optional[Span]) -> None:
        self.tracer.end(span)


#: The process-wide recorder.  Read via ``obs.RECORDER`` at call time.
RECORDER: NullRecorder = NullRecorder()

_stack: List[NullRecorder] = []


def recorder() -> NullRecorder:
    """The currently installed recorder (the null recorder by default)."""
    return RECORDER


def install(collector: NullRecorder) -> None:
    """Install ``collector`` as the active recorder.  Installs nest:
    :func:`uninstall` restores the previously active recorder."""
    global RECORDER
    _stack.append(RECORDER)
    RECORDER = collector


def uninstall() -> None:
    """Restore the recorder active before the last :func:`install`."""
    global RECORDER
    if not _stack:
        raise RuntimeError("uninstall() without a matching install()")
    RECORDER = _stack.pop()


@contextmanager
def collecting(max_spans: int = 100_000) -> Iterator[Collector]:
    """Install a fresh :class:`Collector` for the duration of the block."""
    col = Collector(max_spans=max_spans)
    install(col)
    try:
        yield col
    finally:
        uninstall()
