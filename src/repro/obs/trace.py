"""Query tracer: nested spans with monotonic timings.

A :class:`Span` covers one timed phase (``parse``, ``compile``,
``open:termjoin-scan`` …).  Spans nest naturally: the tracer keeps a
stack, so a span begun while another is active becomes its child — the
engine's recursive ``open()``/``close()`` therefore produces a span tree
mirroring the plan tree with zero bookkeeping at the call sites.

The stack is **per-thread** (``threading.local``): the batch executor
drives one collector from many workers, and a single shared stack would
interleave spans across threads — child spans adopted by a parent on
another thread, and out-of-order closes corrupting both timelines.
Each span is tagged with the thread id that opened it (:attr:`Span.tid`)
so a span tree always nests within one thread; the shared root list and
the span/drop accounting are lock-protected.

Per-tuple ``next()`` calls are deliberately *not* traced as spans (a
million-row scan would produce a million spans); their cost is
aggregated per operator in :class:`repro.engine.base.OpStats` and
attached to the operator's ``close`` span as attributes.

Exports: :meth:`Tracer.to_dict` (nested JSON) and
:meth:`Tracer.to_chrome_trace` (the Chrome/Perfetto ``traceEvents``
format — load it at ``chrome://tracing`` or https://ui.perfetto.dev;
each thread renders as its own timeline row via the ``tid`` field).
Both exports are **snapshot-safe**: a span still open when the export
runs (an in-flight query) renders as a well-formed partial span whose
duration extends to the snapshot instant and whose record is flagged
``open`` — never a zero-duration event, never an exception.  The
free-standing :func:`chrome_trace_events` helper renders any span
forest the same way, which is how the trace store exports one retained
request trace without a whole tracer.

:meth:`Tracer.detach` removes a finished root span (and its subtree)
from the tracer's accounting — the distributed-tracing layer hands
each request's span tree over to the trace store and detaches it, so
a long-running server never exhausts ``max_spans``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "chrome_trace_events"]


class Span:
    """One timed phase; children are spans begun while it was active
    on the same thread (``tid`` records which)."""

    __slots__ = ("name", "start_ns", "end_ns", "attrs", "children", "tid")

    def __init__(self, name: str, start_ns: int,
                 **attrs: object) -> None:
        self.name = name
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.attrs: Dict[str, object] = dict(attrs)
        self.children: List["Span"] = []
        self.tid: int = 0

    @property
    def open(self) -> bool:
        """Whether the span has not been closed yet."""
        return self.end_ns is None

    @property
    def duration_ns(self) -> int:
        """Span duration (0 while still open; see
        :meth:`duration_ns_at` for snapshot-consistent exports)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def duration_ns_at(self, now_ns: Optional[int] = None) -> int:
        """Span duration as of ``now_ns``: a still-open span extends to
        the snapshot instant instead of reading as zero-length.  With
        ``now_ns=None`` an open span is clocked at call time (use one
        shared ``now_ns`` to export a consistent tree)."""
        end = self.end_ns
        if end is None:
            end = time.perf_counter_ns() if now_ns is None else now_ns
        return max(0, end - self.start_ns)

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def to_dict(self, now_ns: Optional[int] = None) -> Dict[str, object]:
        """Nested JSON form.  Open spans (an in-flight query being
        snapshotted) report their duration up to ``now_ns`` (or call
        time) and carry ``"open": true``."""
        duration_ns = self.duration_ns_at(now_ns)
        d: Dict[str, object] = {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": duration_ns,
            "duration_ms": duration_ns / 1e6,
            "tid": self.tid,
        }
        if self.end_ns is None:
            d["open"] = True
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        if self.children:
            d["children"] = [c.to_dict(now_ns) for c in self.children]
        return d

    def n_spans(self) -> int:
        """Size of this subtree (the span itself plus descendants)."""
        return 1 + sum(c.n_spans() for c in self.children)


class _ThreadStack(threading.local):
    """Per-thread open-span stack.  ``threading.local`` re-runs
    ``__init__`` in every thread that touches it, so each worker starts
    with an empty stack."""

    def __init__(self) -> None:
        self.stack: List[Span] = []


class Tracer:
    """Collects a forest of nested spans, one subtree per thread.

    ``max_spans`` bounds memory: once the budget is exhausted new spans
    are counted in :attr:`dropped` but not stored (timing of already
    open spans still completes correctly).  Safe for concurrent
    ``begin``/``end`` from many threads — the open-span stack is
    thread-local, the shared root list and counters take a lock.
    """

    def __init__(self, max_spans: int = 100_000) -> None:
        self.max_spans = max_spans
        self.roots: List[Span] = []
        self.dropped = 0
        self._local = _ThreadStack()
        self._n_spans = 0
        self._lock = threading.Lock()

    # -- explicit begin/end (hot-path friendly: no generator frames) ----

    def begin(self, name: str, **attrs: object) -> Optional[Span]:
        """Open a span; returns ``None`` when over the span budget."""
        with self._lock:
            if self._n_spans >= self.max_spans:
                self.dropped += 1
                return None
            self._n_spans += 1
        span = Span(name, time.perf_counter_ns(), **attrs)
        span.tid = threading.get_ident()
        stack = self._local.stack
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        return span

    def end(self, span: Optional[Span]) -> None:
        """Close ``span`` (a no-op for the ``None`` over-budget token).

        Spans must close innermost-first on their own thread; closing
        out of order closes the intervening spans too (so an exception
        that skips ``end`` calls cannot corrupt the stack).
        """
        if span is None:
            return
        now = time.perf_counter_ns()
        stack = self._local.stack
        while stack:
            top = stack.pop()
            top.end_ns = now
            if top is span:
                return
        raise ValueError(
            f"span {span.name!r} is not open on this thread"
        )

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Optional[Span]]:
        """Context-manager form of :meth:`begin`/:meth:`end`."""
        s = self.begin(name, **attrs)
        try:
            yield s
        finally:
            self.end(s)

    # -- export ----------------------------------------------------------

    @property
    def n_spans(self) -> int:
        return self._n_spans

    def _root_snapshot(self) -> List[Span]:
        with self._lock:
            return list(self.roots)

    def detach(self, span: Optional[Span]) -> bool:
        """Remove a *root* span (and its subtree) from the tracer's
        root list and span accounting.

        The distributed-tracing layer calls this after handing a
        finished request tree to the trace store: the store owns the
        spans from then on, and the tracer's ``max_spans`` budget is
        freed for the next requests instead of filling up over a
        server's lifetime.  Returns ``False`` (no-op) for ``None``
        (the over-budget token) or a span that is not a current root.
        """
        if span is None:
            return False
        with self._lock:
            try:
                self.roots.remove(span)
            except ValueError:
                return False
            self._n_spans = max(0, self._n_spans - span.n_spans())
        return True

    def to_dict(self) -> Dict[str, object]:
        now_ns = time.perf_counter_ns()
        return {
            "spans": [s.to_dict(now_ns) for s in self._root_snapshot()],
            "n_spans": self._n_spans,
            "dropped": self.dropped,
        }

    def to_chrome_trace(self) -> Dict[str, object]:
        """The Chrome ``traceEvents`` JSON: one complete (``"ph": "X"``)
        event per span, timestamps in microseconds relative to the first
        span.  Thread idents are compacted to small stable ``tid``
        values (ordered by each thread's first span) so every thread
        gets its own readable timeline row.  Spans still open at export
        time render as partial events extending to the export instant
        (flagged ``args["open"]``)."""
        return chrome_trace_events(self._root_snapshot())


def chrome_trace_events(roots: List[Span],
                        now_ns: Optional[int] = None) -> Dict[str, object]:
    """Render a span forest as Chrome ``traceEvents`` JSON.

    Shared by :meth:`Tracer.to_chrome_trace` (the whole collected
    forest) and the trace store (one retained request tree).  Spans
    still open at export time — an in-flight query being snapshotted —
    are rendered with their duration up to ``now_ns`` (defaulting to
    the call instant, shared across the whole export so the timeline is
    consistent) and ``args["open"] = true``, never as zero-duration
    events."""
    events: List[Dict[str, object]] = []
    if not roots:
        return {"traceEvents": events}
    if now_ns is None:
        now_ns = time.perf_counter_ns()
    t0 = min(s.start_ns for s in roots)
    tids: Dict[int, int] = {}
    for root in sorted(roots, key=lambda s: s.start_ns):
        tids.setdefault(root.tid, len(tids))

    def emit(span: Span) -> None:
        args = dict(span.attrs)
        if span.end_ns is None:
            args["open"] = True
        events.append({
            "name": span.name,
            "ph": "X",
            "ts": (span.start_ns - t0) / 1e3,
            "dur": span.duration_ns_at(now_ns) / 1e3,
            "pid": 0,
            "tid": tids.setdefault(span.tid, len(tids)),
            "args": args,
        })
        for child in span.children:
            emit(child)

    for root in roots:
        emit(root)
    return {"traceEvents": events}
