"""Profiled query execution: the machinery behind ``tix profile`` and
``tix query --analyze``.

:func:`profile_query` parses, compiles, and executes a query under a
fresh :class:`~repro.obs.Collector` and returns a
:class:`ProfileReport` bundling

- the executed plan (for :func:`repro.engine.base.explain` /
  :func:`~repro.engine.base.plan_stats`),
- the results,
- the metrics registry and span tree,
- the store's logical-I/O counter deltas.

Queries outside the compilable shape fall back to the reference
evaluator: the report then has no plan tree, but parse/evaluate spans
and whatever metrics the evaluator's access paths recorded are still
available (``report.compiled`` tells which path ran).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from repro import obs
from repro.errors import PlannerHintError, QueryCompileError
from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.xmldb.store import XMLStore

__all__ = ["ProfileReport", "profile_query"]


@dataclass
class ProfileReport:
    """Everything observed while executing one query."""

    query: str
    compiled: bool
    results: List[object]
    collector: obs.Collector
    plan: Optional[object] = None          # engine Operator when compiled
    store_counters: Dict[str, int] = field(default_factory=dict)
    compile_error: Optional[str] = None

    @property
    def n_results(self) -> int:
        return len(self.results)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready report (the ``tix profile --json`` payload)."""
        from repro.engine.base import plan_stats

        return {
            "query": self.query,
            "compiled": self.compiled,
            "compile_error": self.compile_error,
            "n_results": self.n_results,
            "plan": plan_stats(self.plan) if self.plan is not None else None,
            "metrics": self.collector.metrics.snapshot(),
            "trace": self.collector.tracer.to_dict(),
            "store_counters": dict(self.store_counters),
        }

    def render(self) -> str:
        """Human-readable report: EXPLAIN ANALYZE tree, phase timings,
        metrics."""
        from repro.engine.base import explain

        lines: List[str] = []
        if self.plan is not None:
            lines.append("EXPLAIN ANALYZE")
            lines.append(explain(self.plan, analyze=True))
        else:
            lines.append(
                "plan: not compilable (evaluator fallback)"
                + (f" — {self.compile_error}" if self.compile_error else "")
            )
        lines.append("")
        lines.append("phases:")
        for span in self.collector.tracer.roots:
            lines.extend(_render_span(span, 1))
        if self.store_counters:
            lines.append("")
            lines.append("store counters (logical I/O):")
            for name in sorted(self.store_counters):
                lines.append(f"  {name}: {self.store_counters[name]}")
        metrics_text = self.collector.metrics.render()
        if metrics_text:
            lines.append("")
            lines.append("metrics:")
            lines.extend("  " + ln for ln in metrics_text.splitlines())
        lines.append("")
        lines.append(f"({self.n_results} results)")
        return "\n".join(lines)

    def write_chrome_trace(self, path: str) -> None:
        """Write the span tree in Chrome ``traceEvents`` format."""
        with open(path, "w", encoding="utf-8") as f:
            json.dump(self.collector.tracer.to_chrome_trace(), f, indent=2)


def _render_span(span: obs.Span, depth: int,
                 max_depth: int = 3) -> List[str]:
    pad = "  " * depth
    lines = [f"{pad}{span.name}: {span.duration_ms:.3f}ms"]
    if depth < max_depth:
        for child in span.children:
            lines.extend(_render_span(child, depth + 1, max_depth))
    return lines


def profile_query(store: "XMLStore", source: str,
                  registry: Optional[MetricsRegistry] = None,
                  **planner_opts: object) -> ProfileReport:
    """Execute ``source`` against ``store`` under a fresh collector.

    Prefers the compiled pipelined plan (per-operator EXPLAIN ANALYZE);
    non-compilable queries run on the reference evaluator instead.
    Keyword options (``planner=``, ``force_ops=``, ``corrections=``)
    are forwarded to :func:`~repro.query.compiler.compile_query`.
    """
    from repro.engine.base import execute
    from repro.query import parse_query
    from repro.query.compiler import compile_query
    from repro.query.evaluator import evaluate_query

    before = store.counters.snapshot()
    plan = None
    compile_error = None
    with obs.collecting() as col:
        with col.span("query"):
            with col.span("parse"):
                query = parse_query(source)
            try:
                plan = compile_query(store, query, registry,
                                     **planner_opts)  # type: ignore[arg-type]
            except PlannerHintError:
                raise  # a bad hint must surface, not change strategy
            except QueryCompileError as exc:
                compile_error = str(exc)
                results = evaluate_query(store, query, registry)
            else:
                with col.span("execute"):
                    results = execute(plan)
                from repro.plan.estimate import publish_qerrors

                publish_qerrors(plan)
        store.counters.publish(col)
    after = store.counters.snapshot()
    deltas = {k: after[k] - before[k] for k in after}
    return ProfileReport(
        query=source,
        compiled=plan is not None,
        results=results,
        collector=col,
        plan=plan,
        store_counters=deltas,
        compile_error=compile_error,
    )
