"""A stdlib-only HTTP exposition surface for the telemetry pipeline.

:class:`ObsServer` wraps :class:`http.server.ThreadingHTTPServer`
around three read-only endpoints:

- ``/metrics`` — the registry in the OpenMetrics text format
  (:func:`repro.obs.export.render_openmetrics`), scrapeable by
  Prometheus or validated by :func:`repro.obs.export.parse_openmetrics`;
- ``/healthz`` — a plain ``ok`` liveness probe;
- ``/varz`` — a JSON dump: the registry snapshot, the snapshotter's
  ring stats and headline windowed rates (when one is attached), and
  process uptime;
- ``/traces`` — the attached trace store's in-flight + retained
  summaries (``tix top`` polls this), ``/traces?id=<trace_id>`` one
  trace's full span tree, with ``&format=chrome`` the Chrome
  ``traceEvents`` export.  404 when no trace store is attached or the
  id is unknown.

The server observes itself: every request increments a
``serve.requests.<endpoint>`` counter and lands its handling latency in
``serve.request_ms`` — through the *global* recorder, so when `tix
serve` installs a collector the scrape traffic shows up in the next
scrape.  Handlers never mutate engine state, so serving concurrent
scrapes while workers run queries needs no coordination beyond what
the metrics primitives already provide.

Bind to port 0 for an ephemeral port (tests); :attr:`ObsServer.port`
reports the bound port either way.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional
from urllib.parse import parse_qs

from repro import obs as _obs
from repro.obs.export import CONTENT_TYPE, render_openmetrics
from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import Snapshotter
from repro.obs.tracestore import TraceStore

__all__ = ["ObsServer"]

#: Headline windows rendered in ``/varz`` (label -> seconds).
_VARZ_WINDOWS: Dict[str, float] = {"1m": 60.0, "5m": 300.0}


class _Handler(BaseHTTPRequestHandler):
    """Routes one request; state lives on the server object."""

    server: "ObsServer"  # type: ignore[assignment]

    # Bound how long a stalled client can pin a handler thread: the
    # socket read times out and the handler exits instead of blocking
    # in recv forever.
    timeout = 30.0

    # Scrapers poll; the default per-request stderr line is noise.
    def log_message(self, format: str, *args: object) -> None:
        pass

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        t0 = time.perf_counter()
        raw_path, _, query = self.path.partition("?")
        path = raw_path.rstrip("/") or "/"
        if path == "/metrics":
            endpoint = "metrics"
            body = render_openmetrics(self.server.registry)
            self._reply(200, CONTENT_TYPE, body)
        elif path == "/healthz":
            endpoint = "healthz"
            self._reply(200, "text/plain; charset=utf-8", "ok\n")
        elif path == "/varz":
            endpoint = "varz"
            body = json.dumps(self.server.varz(), indent=2,
                              sort_keys=True) + "\n"
            self._reply(200, "application/json; charset=utf-8", body)
        elif path == "/traces":
            endpoint = "traces"
            self._reply_traces(parse_qs(query))
        else:
            endpoint = "other"
            self._reply(404, "text/plain; charset=utf-8",
                        f"no such endpoint: {path}\n")
        rec = _obs.RECORDER
        if rec.enabled:
            rec.count(f"serve.requests.{endpoint}")
            rec.observe("serve.request_ms",
                        (time.perf_counter() - t0) * 1000.0)

    def _reply_traces(self, params: Dict[str, List[str]]) -> None:
        """``/traces`` routing: store snapshot, one trace by ``?id=``,
        or its Chrome export with ``&format=chrome``."""
        store = self.server.trace_store
        if store is None:
            self._reply(404, "text/plain; charset=utf-8",
                        "no trace store attached\n")
            return
        trace_ids = params.get("id")
        if not trace_ids:
            try:
                limit = int(params.get("limit", ["50"])[0])
            except ValueError:
                limit = 50
            payload: Dict[str, object] = store.snapshot(limit=limit)
        else:
            trace = store.get(trace_ids[0])
            if trace is None:
                self._reply(404, "text/plain; charset=utf-8",
                            f"no such trace: {trace_ids[0]}\n")
                return
            fmt = params.get("format", [""])[0]
            payload = (
                trace.to_chrome_trace() if fmt == "chrome"
                else trace.to_dict()
            )
        body = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        self._reply(200, "application/json; charset=utf-8", body)

    def _reply(self, status: int, content_type: str, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class ObsServer(ThreadingHTTPServer):
    """The telemetry HTTP server (see module docstring).

    :param registry: the registry ``/metrics`` and ``/varz`` render;
    :param snapshotter: optional ring sampler — attaching one adds
        windowed rates to ``/varz`` (it is *not* started or stopped by
        the server; the owner controls its lifecycle);
    :param trace_store: optional distributed-trace registry — attaching
        one enables the ``/traces`` endpoint (typically the query
        server's store, shared);
    :param host: bind address (default loopback);
    :param port: bind port (0 = ephemeral).

    Use :meth:`start` / :meth:`stop` (background thread) or the
    inherited ``serve_forever`` to drive it inline.
    """

    daemon_threads = True
    # ThreadingMixIn's own close path joins handler threads with NO
    # timeout, so one stalled scrape (slowloris) would hang shutdown
    # forever.  We track handler threads ourselves and drain them with
    # a *bounded* join in :meth:`stop` instead.
    block_on_close = False

    def __init__(self, registry: MetricsRegistry, *,
                 snapshotter: Optional[Snapshotter] = None,
                 trace_store: Optional[TraceStore] = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__((host, port), _Handler)
        self.registry = registry
        self.snapshotter = snapshotter
        self.trace_store = trace_store
        self._started = time.time()
        self._thread: Optional[threading.Thread] = None
        self._handler_lock = threading.Lock()
        self._handlers: List[threading.Thread] = []

    def process_request(  # type: ignore[override]
            self, request: object, client_address: object) -> None:
        """One thread per request (as ThreadingMixIn), but tracked, so
        :meth:`stop` can drain in-flight scrapes with a bounded join
        before the socket teardown."""
        thread = threading.Thread(
            target=self.process_request_thread,
            args=(request, client_address),
            daemon=self.daemon_threads,
        )
        with self._handler_lock:
            self._handlers = [t for t in self._handlers if t.is_alive()]
            self._handlers.append(thread)
        thread.start()

    @property
    def port(self) -> int:
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    def varz(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "uptime_s": round(time.time() - self._started, 3),
            "metrics": self.registry.snapshot(),
        }
        snap = self.snapshotter
        if snap is not None:
            windows: Dict[str, object] = {}
            for label, seconds in _VARZ_WINDOWS.items():
                windows[label] = {
                    "qps": snap.rate("batch.queries", seconds),
                    "result_cache_hit_rate": snap.hit_rate(
                        "cache.result.hits", "cache.result.misses",
                        seconds),
                    "query_ms_p50": snap.quantile_over(
                        "batch.query_ms", 0.50, seconds),
                    "query_ms_p99": snap.quantile_over(
                        "batch.query_ms", 0.99, seconds),
                }
            out["snapshot"] = {
                "stats": snap.stats(), "windows": windows,
            }
        return out

    # -- background lifecycle -------------------------------------------

    def start(self) -> None:
        """Serve on a background daemon thread (idempotent)."""
        with self._handler_lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._thread = threading.Thread(
                target=self.serve_forever, name="tix-serve",
                daemon=True
            )
            self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Shut the server down and release the socket (idempotent).

        In-flight scrapes are *drained* first: handler threads are
        joined against a shared ``timeout`` deadline, so a completing
        ``/metrics`` response is never cut off by the teardown — and a
        stalled client delays shutdown by at most ``timeout``."""
        deadline = time.monotonic() + timeout
        self.shutdown()
        with self._handler_lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout)
        with self._handler_lock:
            handlers = list(self._handlers)
        for t in handlers:
            t.join(max(0.0, deadline - time.monotonic()))
        with self._handler_lock:
            self._handlers = [t for t in self._handlers if t.is_alive()]
        self.server_close()

    def __enter__(self) -> "ObsServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
