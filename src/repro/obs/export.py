"""OpenMetrics text rendering (and a validating parser) for a
:class:`~repro.obs.metrics.MetricsRegistry`.

The exposition format is the OpenMetrics text format (the Prometheus
wire format): one ``# TYPE`` / ``# HELP`` header pair per metric
family, one sample per line, ``# EOF`` terminator.  Mapping rules:

- dotted engine names become underscore names under a ``tix_`` prefix
  (``cache.plan.hits`` → ``tix_cache_plan_hits``); ``*`` never appears
  (registries hold concrete names, wildcards live in the catalog);
- the catalog (:mod:`repro.obs.catalog`) supplies ``# HELP`` text; the
  *instance* type decides the rendered kind, so an uncataloged metric
  still renders (with a placeholder help string) rather than vanishing
  from the scrape;
- counters get the mandated ``_total`` suffix;
- histograms render their geometric buckets cumulatively with ``le``
  upper bounds from :func:`~repro.obs.metrics.bucket_upper_bound`
  (the zero bucket becomes ``le="0.0"``), then ``le="+Inf"``,
  ``_count`` and ``_sum``.

:func:`parse_openmetrics` is the matching validator — strict about the
line grammar, header/sample ordering, cumulative bucket monotonicity
and the ``# EOF`` terminator.  The unit tests and the CI serve-smoke
job share it, so "the endpoint scrapes" means the same thing in both.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.obs import catalog as _catalog
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_upper_bound,
)

__all__ = [
    "render_openmetrics", "parse_openmetrics", "metric_name",
    "CONTENT_TYPE",
]

#: The scrape response content type (OpenMetrics 1.0).
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


def metric_name(name: str, prefix: str = "tix_") -> str:
    """The OpenMetrics spelling of a dotted engine metric name."""
    return prefix + name.replace(".", "_").replace("-", "_")


def _fmt(value: Union[int, float]) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _help_for(name: str) -> str:
    entry = _catalog.find(name)
    if entry is not None:
        return _catalog.CATALOG[entry][1]
    return f"uncataloged metric {name}"


def render_openmetrics(registry: MetricsRegistry,
                       prefix: str = "tix_") -> str:
    """The registry's state in the OpenMetrics text format."""
    lines: List[str] = []
    for name, metric in registry.items():
        om = metric_name(name, prefix)
        help_text = _escape_help(_help_for(name))
        if isinstance(metric, Counter):
            lines.append(f"# TYPE {om} counter")
            lines.append(f"# HELP {om} {help_text}")
            lines.append(f"{om}_total {_fmt(metric.value)}")
        elif isinstance(metric, Gauge):
            lines.append(f"# TYPE {om} gauge")
            lines.append(f"# HELP {om} {help_text}")
            lines.append(f"{om} {_fmt(metric.value)}")
        elif isinstance(metric, Histogram):
            lines.append(f"# TYPE {om} histogram")
            lines.append(f"# HELP {om} {help_text}")
            zero, buckets = metric.bucket_counts()
            cum = zero
            lines.append(f'{om}_bucket{{le="0.0"}} {_fmt(cum)}')
            for idx in sorted(buckets):
                cum += buckets[idx]
                le = bucket_upper_bound(idx)
                lines.append(
                    f'{om}_bucket{{le="{le!r}"}} {_fmt(cum)}'
                )
            lines.append(
                f'{om}_bucket{{le="+Inf"}} {_fmt(metric.count)}'
            )
            lines.append(f"{om}_count {_fmt(metric.count)}")
            lines.append(f"{om}_sum {repr(float(metric.total))}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Validating parser (shared by unit tests and the CI serve smoke)
# ----------------------------------------------------------------------

class OpenMetricsError(ValueError):
    """A violation of the exposition format."""


#: One parsed family: kind, help text, and ``(suffixed name, labels,
#: value)`` samples in exposition order.
Family = Dict[str, object]


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    body = text.strip()
    if not body:
        return labels
    for part in body.split(","):
        if "=" not in part:
            raise OpenMetricsError(f"malformed label {part!r}")
        key, _, raw = part.partition("=")
        if not (raw.startswith('"') and raw.endswith('"') and
                len(raw) >= 2):
            raise OpenMetricsError(f"unquoted label value {part!r}")
        labels[key.strip()] = raw[1:-1]
    return labels


def _sample_family(name: str) -> Tuple[str, str]:
    """Split a suffixed sample name into (family, suffix)."""
    for suffix in ("_total", "_bucket", "_count", "_sum"):
        if name.endswith(suffix):
            return name[: -len(suffix)], suffix
    return name, ""


def parse_openmetrics(text: str) -> Dict[str, Family]:
    """Parse + validate an OpenMetrics exposition.

    Returns ``{family name: {"type", "help", "samples"}}``.  Raises
    :class:`OpenMetricsError` on: a missing ``# EOF`` terminator,
    samples before their ``# TYPE``, counter samples without
    ``_total``, non-cumulative histogram buckets, a histogram whose
    ``+Inf`` bucket disagrees with ``_count``, or malformed lines.
    """
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        raise OpenMetricsError("missing # EOF terminator")
    families: Dict[str, Family] = {}
    current: Optional[str] = None
    for ln, line in enumerate(lines[:-1], start=1):
        if not line.strip():
            raise OpenMetricsError(f"line {ln}: blank line")
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            fam, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram"):
                raise OpenMetricsError(
                    f"line {ln}: unknown type {kind!r}")
            if fam in families:
                raise OpenMetricsError(
                    f"line {ln}: duplicate family {fam!r}")
            families[fam] = {"type": kind, "help": "", "samples": []}
            current = fam
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            fam, _, help_text = rest.partition(" ")
            if fam not in families:
                raise OpenMetricsError(
                    f"line {ln}: HELP before TYPE for {fam!r}")
            families[fam]["help"] = help_text
            continue
        if line.startswith("#"):
            raise OpenMetricsError(f"line {ln}: stray comment {line!r}")
        # Sample line: name[{labels}] value
        if "{" in line:
            name, _, rest = line.partition("{")
            labels_text, _, value_text = rest.partition("}")
            labels = _parse_labels(labels_text)
        else:
            name, _, value_text = line.partition(" ")
            labels = {}
        name = name.strip()
        try:
            value = float(value_text.strip())
        except ValueError:
            raise OpenMetricsError(
                f"line {ln}: bad sample value {value_text!r}") from None
        fam, suffix = _sample_family(name)
        if fam not in families:
            fam, suffix = name, ""  # gauge samples are unsuffixed
        if fam not in families or fam != current:
            raise OpenMetricsError(
                f"line {ln}: sample {name!r} outside its family block")
        kind = families[fam]["type"]
        if kind == "counter" and suffix != "_total":
            raise OpenMetricsError(
                f"line {ln}: counter sample {name!r} lacks _total")
        if kind == "gauge" and suffix != "":
            raise OpenMetricsError(
                f"line {ln}: gauge sample {name!r} has a suffix")
        if kind == "histogram" and suffix not in ("_bucket", "_count",
                                                  "_sum"):
            raise OpenMetricsError(
                f"line {ln}: unexpected histogram sample {name!r}")
        samples = families[fam]["samples"]
        assert isinstance(samples, list)
        samples.append((name, labels, value))
    _validate_histograms(families)
    return families


def _validate_histograms(families: Dict[str, Family]) -> None:
    for fam, info in families.items():
        if info["type"] != "histogram":
            continue
        samples = info["samples"]
        assert isinstance(samples, list)
        buckets = [s for s in samples if s[0] == f"{fam}_bucket"]
        counts = [s for s in samples if s[0] == f"{fam}_count"]
        sums = [s for s in samples if s[0] == f"{fam}_sum"]
        if not buckets or len(counts) != 1 or len(sums) != 1:
            raise OpenMetricsError(
                f"{fam}: histogram needs buckets + _count + _sum")
        prev = -1.0
        prev_le = float("-inf")
        for _, labels, value in buckets:
            if "le" not in labels:
                raise OpenMetricsError(f"{fam}: bucket without le")
            le = float("inf") if labels["le"] == "+Inf" \
                else float(labels["le"])
            if le <= prev_le:
                raise OpenMetricsError(
                    f"{fam}: le bounds not increasing")
            if value < prev:
                raise OpenMetricsError(
                    f"{fam}: bucket counts not cumulative")
            prev, prev_le = value, le
        if buckets[-1][1].get("le") != "+Inf":
            raise OpenMetricsError(f"{fam}: missing +Inf bucket")
        if buckets[-1][2] != counts[0][2]:
            raise OpenMetricsError(
                f"{fam}: +Inf bucket != _count")
