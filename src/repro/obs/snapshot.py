"""Time-series snapshots of a :class:`MetricsRegistry`.

Counters and histograms only ever accumulate — answering "what is the
cache hit *rate* right now" or "what was p99 latency over the last
minute" needs *deltas* between two points in time.  The
:class:`Snapshotter` provides exactly that: a background (or manually
ticked) sampler that appends cheap copies of a registry's state to a
bounded ring buffer, plus window queries that diff the newest snapshot
against the oldest one inside the window:

- :meth:`Snapshotter.delta` / :meth:`Snapshotter.rate` — counter change
  and per-second rate over a window (QPS is ``rate("batch.queries")``);
- :meth:`Snapshotter.hit_rate` — ratio of two counter deltas (cache
  hits vs misses) over the same window;
- :meth:`Snapshotter.quantile_over` — windowed p50/p99 from *diffed*
  histogram buckets (:func:`repro.obs.metrics.quantile_from_buckets`),
  so an old latency spike ages out of the estimate instead of skewing
  it forever.

Memory is bounded by ``capacity`` ring slots regardless of uptime.  The
clock is injectable so the window arithmetic is testable without
sleeping; the background thread is a daemon and stops promptly via an
event (no poll-loop sleeps to drain on shutdown).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro import obs as _obs
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_buckets,
)

__all__ = ["Snapshot", "Snapshotter"]

#: ``(zero bucket count, {bucket index: count})`` histogram state.
_HistState = Tuple[int, int, float, Dict[int, int]]


class Snapshot:
    """One point-in-time copy of a registry's scalar state.

    ``mono`` (monotonic seconds, from the snapshotter's clock) drives
    all window arithmetic; ``ts`` (wall time) is for display only.
    Histograms are stored as ``(count, zero, total, buckets)`` so
    windowed quantiles can be answered from diffed bucket counts.
    """

    __slots__ = ("ts", "mono", "counters", "gauges", "hists")

    def __init__(self, ts: float, mono: float) -> None:
        self.ts = ts
        self.mono = mono
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.hists: Dict[str, _HistState] = {}


class Snapshotter:
    """Bounded ring of periodic :class:`Snapshot` copies of a registry.

    :param registry: the registry to sample;
    :param interval_s: background sampling period (:meth:`start`);
    :param capacity: ring slots kept — the queryable horizon is
        ``capacity * interval_s`` seconds;
    :param clock: monotonic-seconds source, injectable for tests
        (defaults to :func:`time.monotonic`).

    :meth:`tick` may also be called manually (tests, single-threaded
    embedders); it is safe concurrently with the background thread and
    with the window queries.
    """

    def __init__(self, registry: MetricsRegistry, *,
                 interval_s: float = 1.0, capacity: int = 600,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        self.registry = registry
        self.interval_s = interval_s
        self.capacity = capacity
        self._clock: Callable[[], float] = (
            clock if clock is not None else time.monotonic
        )
        self._ring: Deque[Snapshot] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.n_ticks = 0

    # -- sampling ------------------------------------------------------

    def tick(self) -> Snapshot:
        """Sample the registry into the ring; returns the snapshot."""
        snap = Snapshot(time.time(), self._clock())
        for name, metric in self.registry.items():
            if isinstance(metric, Counter):
                snap.counters[name] = float(metric.value)
            elif isinstance(metric, Gauge):
                snap.gauges[name] = float(metric.value)
            elif isinstance(metric, Histogram):
                zero, buckets = metric.bucket_counts()
                snap.hists[name] = (
                    metric.count, zero, metric.total, buckets
                )
        with self._lock:
            self._ring.append(snap)
            self.n_ticks += 1
        # Counted *after* sampling: the tick that mints this counter
        # shows up in the next snapshot, never its own.
        rec = _obs.RECORDER
        if rec.enabled:
            rec.count("obs.snapshot.ticks")
        return snap

    # -- background thread ---------------------------------------------

    def start(self) -> None:
        """Start the background sampling thread (idempotent)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="tix-snapshotter", daemon=True
            )
            self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the background thread (idempotent, waits for exit)."""
        self._stop.set()
        with self._lock:
            thread = self._thread
            self._thread = None
        if thread is not None:
            thread.join(timeout)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.tick()

    def __enter__(self) -> "Snapshotter":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- window queries -------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def snapshots(self) -> List[Snapshot]:
        """Ring contents, oldest first (a copy)."""
        with self._lock:
            return list(self._ring)

    def _window(self, window_s: float
                ) -> Optional[Tuple[Snapshot, Snapshot]]:
        """The ``(old, new)`` snapshot pair bounding ``window_s``.

        ``new`` is the latest snapshot; ``old`` is the earliest one not
        older than ``new.mono - window_s`` (falling back to the
        second-newest so a too-small window still spans one interval).
        ``None`` until two ticks exist.
        """
        snaps = self.snapshots()
        if len(snaps) < 2:
            return None
        new = snaps[-1]
        cutoff = new.mono - window_s
        old = snaps[-2]
        for snap in snaps[:-1]:
            if snap.mono >= cutoff:
                old = snap
                break
        return old, new

    def delta(self, name: str, window_s: float) -> float:
        """Counter increase over the window (0.0 until two ticks, or
        for a counter absent from either endpoint)."""
        pair = self._window(window_s)
        if pair is None:
            return 0.0
        old, new = pair
        return (new.counters.get(name, 0.0)
                - old.counters.get(name, 0.0))

    def rate(self, name: str, window_s: float) -> float:
        """Counter increase per second over the window — QPS is
        ``rate("batch.queries", 60)``."""
        pair = self._window(window_s)
        if pair is None:
            return 0.0
        old, new = pair
        elapsed = new.mono - old.mono
        if elapsed <= 0:
            return 0.0
        return (new.counters.get(name, 0.0)
                - old.counters.get(name, 0.0)) / elapsed

    def hit_rate(self, hits: str, misses: str, window_s: float) -> float:
        """``Δhits / (Δhits + Δmisses)`` over the window (0.0 when the
        window saw no traffic)."""
        dh = self.delta(hits, window_s)
        dm = self.delta(misses, window_s)
        total = dh + dm
        return dh / total if total > 0 else 0.0

    def quantile_over(self, name: str, q: float,
                      window_s: float) -> float:
        """Windowed quantile of histogram ``name`` from diffed bucket
        counts (0.0 when the window saw no observations)."""
        pair = self._window(window_s)
        if pair is None:
            return 0.0
        old, new = pair
        new_state = new.hists.get(name)
        if new_state is None:
            return 0.0
        _, new_zero, _, new_buckets = new_state
        old_zero = 0
        old_buckets: Dict[int, int] = {}
        old_state = old.hists.get(name)
        if old_state is not None:
            _, old_zero, _, old_buckets = old_state
        zero = max(0, new_zero - old_zero)
        buckets = {
            idx: count
            for idx, count in (
                (idx, n - old_buckets.get(idx, 0))
                for idx, n in new_buckets.items()
            )
            if count > 0
        }
        return quantile_from_buckets(zero, buckets, q)

    def stats(self) -> Dict[str, float]:
        """Ring occupancy and tick count (for ``/varz`` and tests)."""
        with self._lock:
            return {
                "ticks": float(self.n_ticks),
                "ring": float(len(self._ring)),
                "capacity": float(self.capacity),
                "interval_s": self.interval_s,
            }
