"""Metrics primitives: counters, gauges, and streaming histograms.

The registry is the engine's single sink for cost accounting.  Metric
names are hierarchical dotted paths (``termjoin.postings_scanned``,
``index.bytes_read``, ``operator.sort.time_ms``) so a snapshot groups
naturally by subsystem.  Everything here is dependency-free and cheap:

- :class:`Counter` — a monotonically increasing integer/float;
- :class:`Gauge` — a last-write-wins value;
- :class:`Histogram` — a *streaming* histogram over geometric buckets.
  It never stores samples: each observation lands in the bucket
  ``floor(log_b(value))`` for ``b = 2**(1/4)``, so any quantile is
  answered from cumulative bucket counts with bounded relative error
  (≤ ~9%, half the bucket width) while memory stays O(#buckets).

See ``docs/observability.md`` for the metric-name catalog.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Type, TypeVar, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Geometric bucket growth factor: 4 buckets per octave.
_BUCKET_BASE = 2.0 ** 0.25
_LOG_BASE = math.log(_BUCKET_BASE)

#: The concrete metric type requested from the registry.
_M = TypeVar("_M", "Counter", "Gauge", "Histogram")


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def inc(self, n: Union[int, float] = 1) -> None:
        """Add ``n`` (must be non-negative)."""
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        self.value += n

    def snapshot(self) -> Union[int, float]:
        return self.value


class Gauge:
    """A last-write-wins value (e.g. ``index.n_terms``)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def snapshot(self) -> Union[int, float]:
        return self.value


class Histogram:
    """Streaming histogram with p50/p95/p99 quantile estimates.

    Observations are bucketed geometrically (growth factor
    ``2**(1/4)``); count, sum, min and max are tracked exactly, so the
    mean is exact and quantiles are exact at the distribution's edges
    (clamped to ``[min, max]``) and within half a bucket elsewhere.
    Non-positive observations land in a dedicated zero bucket.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_zero", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._zero = 0                      # observations <= 0
        self._buckets: Dict[int, int] = {}  # bucket index -> count

    def observe(self, value: Union[int, float]) -> None:
        """Record one observation."""
        v = float(value)
        self.count += 1
        self.total += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v
        if v <= 0.0:
            self._zero += 1
            return
        idx = math.floor(math.log(v) / _LOG_BASE)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = self._zero
        if cum >= rank:
            return min(0.0, self.min or 0.0)
        for idx in sorted(self._buckets):
            cum += self._buckets[idx]
            if cum >= rank:
                # Midpoint (geometric mean) of the bucket's bounds.
                lo = _BUCKET_BASE ** idx
                hi = lo * _BUCKET_BASE
                est = math.sqrt(lo * hi)
                assert self.min is not None and self.max is not None
                return max(self.min, min(self.max, est))
        return self.max if self.max is not None else 0.0

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    One flat namespace: registering the same name with two different
    metric kinds is an error (it would silently split the accounting).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get_or_create(self, name: str, cls: Type[_M]) -> _M:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # -- one-shot conveniences (what instrumented code calls) -----------

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, value: Union[int, float]) -> None:
        self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: Union[int, float]) -> None:
        self.gauge(name).set(value)

    # -- reporting -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        """The metric object registered under ``name`` (or ``None``)."""
        return self._metrics.get(name)

    def snapshot(self) -> Dict[str, object]:
        """``{name: value}`` for counters/gauges, ``{name: {stats}}`` for
        histograms, sorted by name."""
        return {n: self._metrics[n].snapshot() for n in self.names()}

    def render(self, prefix: str = "") -> str:
        """Plain-text dump, one metric per line, sorted by name."""
        lines: List[str] = []
        for name in self.names():
            if prefix and not name.startswith(prefix):
                continue
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                s = metric.snapshot()
                lines.append(
                    f"{name}: count={s['count']:g} mean={s['mean']:.4g} "
                    f"p50={s['p50']:.4g} p95={s['p95']:.4g} "
                    f"p99={s['p99']:.4g} max={s['max']:.4g}"
                )
            else:
                lines.append(f"{name}: {metric.value:g}")
        return "\n".join(lines)
