"""Metrics primitives: counters, gauges, and streaming histograms.

The registry is the engine's single sink for cost accounting.  Metric
names are hierarchical dotted paths (``termjoin.postings_scanned``,
``index.bytes_read``, ``operator.sort.time_ms``) so a snapshot groups
naturally by subsystem.  Everything here is dependency-free and cheap:

- :class:`Counter` — a monotonically increasing integer/float;
- :class:`Gauge` — a last-write-wins value;
- :class:`Histogram` — a *streaming* histogram over geometric buckets.
  It never stores samples: each observation lands in the bucket
  ``floor(log_b(value))`` for ``b = 2**(1/4)``, so any quantile is
  answered from cumulative bucket counts with bounded relative error
  (≤ ~9%, half the bucket width) while memory stays O(#buckets).

All three primitives (and the registry's get-or-create path) are
**thread-safe**: the batch executor drives one collector from many
worker threads, and ``value += n`` / dict upserts are not atomic under
the GIL's bytecode-level preemption.  Each metric carries its own lock
so contention stays per-name; the null-recorder zero-overhead contract
is untouched (no lock is ever taken unless a collector is installed).

See ``docs/observability.md`` for the metric-name catalog.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple, Type, TypeVar, Union

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "bucket_upper_bound", "quantile_from_buckets",
]

#: Geometric bucket growth factor: 4 buckets per octave.
_BUCKET_BASE = 2.0 ** 0.25
_LOG_BASE = math.log(_BUCKET_BASE)

#: The concrete metric type requested from the registry.
_M = TypeVar("_M", "Counter", "Gauge", "Histogram")


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0
        self._lock = threading.Lock()

    def inc(self, n: Union[int, float] = 1) -> None:
        """Add ``n`` (must be non-negative)."""
        if n < 0:
            raise ValueError(f"counter {self.name}: negative increment {n}")
        with self._lock:
            self.value += n

    def snapshot(self) -> Union[int, float]:
        return self.value


class Gauge:
    """A last-write-wins value (e.g. ``index.n_terms``)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0
        self._lock = threading.Lock()

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self.value = value

    def snapshot(self) -> Union[int, float]:
        return self.value


class Histogram:
    """Streaming histogram with p50/p95/p99 quantile estimates.

    Observations are bucketed geometrically (growth factor
    ``2**(1/4)``); count, sum, min and max are tracked exactly, so the
    mean is exact and quantiles are exact at the distribution's edges
    (clamped to ``[min, max]``) and within half a bucket elsewhere.
    Non-positive observations land in a dedicated zero bucket.

    An observation may carry an **exemplar** — an opaque label (in
    practice a trace id) tying the recorded value back to the request
    that produced it.  The histogram keeps a small ring of the most
    recent exemplars plus the largest-valued one ever seen, so a
    latency spike in ``server.request_ms`` is joinable to the retained
    trace that explains it.  Exemplars surface in :meth:`snapshot`
    (and hence ``/varz``) only; the OpenMetrics text format is left
    untouched.
    """

    #: Most-recent exemplars kept per histogram.
    EXEMPLAR_SLOTS = 4

    __slots__ = ("name", "count", "total", "min", "max", "_zero",
                 "_buckets", "_exemplars", "_max_exemplar", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._zero = 0                      # observations <= 0
        self._buckets: Dict[int, int] = {}  # bucket index -> count
        self._exemplars: List[Tuple[float, str]] = []  # recent ring
        self._max_exemplar: Optional[Tuple[float, str]] = None
        self._lock = threading.Lock()

    def observe(self, value: Union[int, float],
                exemplar: Optional[str] = None) -> None:
        """Record one observation, optionally labelled with an
        ``exemplar`` (a trace id)."""
        v = float(value)
        with self._lock:
            self.count += 1
            self.total += v
            if self.min is None or v < self.min:
                self.min = v
            if self.max is None or v > self.max:
                self.max = v
            if exemplar:
                self._exemplars.append((v, exemplar))
                if len(self._exemplars) > self.EXEMPLAR_SLOTS:
                    del self._exemplars[0]
                if self._max_exemplar is None or v >= self._max_exemplar[0]:
                    self._max_exemplar = (v, exemplar)
            if v <= 0.0:
                self._zero += 1
                return
            idx = math.floor(math.log(v) / _LOG_BASE)
            self._buckets[idx] = self._buckets.get(idx, 0) + 1

    def exemplars(self) -> List[Dict[str, object]]:
        """Recent (and max-value) exemplars, oldest first:
        ``[{"value": …, "trace_id": …, ("max": true)}, …]``."""
        with self._lock:
            recent = list(self._exemplars)
            max_ex = self._max_exemplar
        out: List[Dict[str, object]] = [
            {"value": v, "trace_id": t} for v, t in recent
        ]
        if max_ex is not None and max_ex not in recent:
            out.append(
                {"value": max_ex[0], "trace_id": max_ex[1], "max": True}
            )
        return out

    def bucket_counts(self) -> Tuple[int, Dict[int, int]]:
        """A consistent ``(zero_count, {bucket index: count})`` copy.

        Bucket ``i`` covers ``(base**i, base**(i+1)]`` for
        ``base = 2**(1/4)`` (:data:`bucket_base`); the zero bucket holds
        observations ``<= 0``.  The snapshotter diffs these between
        ticks to answer windowed quantiles, and the OpenMetrics exporter
        renders them as cumulative ``le`` buckets.
        """
        with self._lock:
            return self._zero, dict(self._buckets)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            cum = self._zero
            if cum >= rank:
                return min(0.0, self.min or 0.0)
            for idx in sorted(self._buckets):
                cum += self._buckets[idx]
                if cum >= rank:
                    # Midpoint (geometric mean) of the bucket's bounds.
                    lo = _BUCKET_BASE ** idx
                    hi = lo * _BUCKET_BASE
                    est = math.sqrt(lo * hi)
                    assert self.min is not None and self.max is not None
                    return max(self.min, min(self.max, est))
            return self.max if self.max is not None else 0.0

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def snapshot(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }
        # Key present only when an exemplar was ever recorded, so
        # exemplar-free snapshots keep their historical exact shape.
        ex = self.exemplars()
        if ex:
            d["exemplars"] = ex
        return d


def bucket_upper_bound(idx: int) -> float:
    """Exclusive upper bound of geometric bucket ``idx``
    (``base**(idx+1)``) — what the OpenMetrics exporter renders as the
    bucket's ``le`` label."""
    return _BUCKET_BASE ** (idx + 1)


def quantile_from_buckets(zero: int, buckets: Dict[int, int],
                          q: float) -> float:
    """The ``q``-quantile of a raw ``(zero, {idx: count})`` bucket set.

    Same estimator as :meth:`Histogram.quantile` but over *free-
    standing* bucket counts — the snapshotter diffs two
    :meth:`Histogram.bucket_counts` copies and feeds the delta here to
    answer windowed quantiles (no min/max clamp is available for a
    window, so estimates are pure bucket midpoints).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile {q} outside [0, 1]")
    count = zero + sum(buckets.values())
    if count == 0:
        return 0.0
    rank = q * count
    cum = zero
    if cum >= rank:
        return 0.0
    last = 0.0
    for idx in sorted(buckets):
        cum += buckets[idx]
        lo = _BUCKET_BASE ** idx
        last = math.sqrt(lo * lo * _BUCKET_BASE)
        if cum >= rank:
            return last
    return last


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    One flat namespace: registering the same name with two different
    metric kinds is an error (it would silently split the accounting).
    Creation and iteration are lock-protected so concurrent workers can
    mint and read metrics safely; the per-metric fast paths
    (``inc``/``observe``/``set``) take only the metric's own lock.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls: Type[_M]) -> _M:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)

    # -- one-shot conveniences (what instrumented code calls) -----------

    def count(self, name: str, n: Union[int, float] = 1) -> None:
        self.counter(name).inc(n)

    def observe(self, name: str, value: Union[int, float],
                exemplar: Optional[str] = None) -> None:
        self.histogram(name).observe(value, exemplar)

    def set_gauge(self, name: str, value: Union[int, float]) -> None:
        self.gauge(name).set(value)

    # -- reporting -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[Union[Counter, Gauge, Histogram]]:
        """The metric object registered under ``name`` (or ``None``)."""
        with self._lock:
            return self._metrics.get(name)

    def items(self) -> List[Tuple[str, Union[Counter, Gauge, Histogram]]]:
        """A consistent ``(name, metric)`` listing, sorted by name —
        what the snapshotter and the exporters iterate (the plain dict
        could grow under them mid-iteration)."""
        with self._lock:
            return sorted(self._metrics.items())

    def snapshot(self) -> Dict[str, object]:
        """``{name: value}`` for counters/gauges, ``{name: {stats}}`` for
        histograms, sorted by name."""
        return {n: m.snapshot() for n, m in self.items()}

    def render(self, prefix: str = "") -> str:
        """Plain-text dump, one metric per line, sorted by name."""
        lines: List[str] = []
        for name, metric in self.items():
            if prefix and not name.startswith(prefix):
                continue
            if isinstance(metric, Histogram):
                s = metric.snapshot()
                lines.append(
                    f"{name}: count={s['count']:g} mean={s['mean']:.4g} "
                    f"p50={s['p50']:.4g} p95={s['p95']:.4g} "
                    f"p99={s['p99']:.4g} max={s['max']:.4g}"
                )
            else:
                lines.append(f"{name}: {metric.value:g}")
        return "\n".join(lines)
