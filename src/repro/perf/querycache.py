"""Plan and result caches keyed on normalized query text + generation.

Key construction is the whole invalidation story: every entry is keyed
``(normalized query text, store.generation)``.  The normalized text —
``unparse(parse(source))`` — makes differently-formatted spellings of
the same query share one entry; the generation component makes entries
from before a document add/remove *unreachable* (stale answers are
impossible by construction, no flush call required), and the LRU bound
ages the orphaned entries out under pressure.

Three tiers, cheapest first:

- a small normalization cache (raw source → parsed/normalized query)
  so warm lookups skip the parser entirely;
- :class:`ResultCache` — complete ``run_query`` answers.  Only
  complete, un-truncated executions are ever stored; a guarded run that
  tripped never pollutes the cache;
- :class:`PlanCache` — compiled engine plans.  Compiled plans are
  stateful operator trees (open/next/close), so each entry keeps a
  small *pool*: concurrent callers check plans out and back in, and two
  threads never drive the same operator tree at once.  Queries outside
  the compilable shape cache their ``QueryCompileError`` verdict so the
  compiler is consulted once, not per call.

:class:`QueryCache` composes the tiers behind ``run_query`` /
``run_query_guarded`` entry points with the same dispatch as
:func:`repro.resilience.run.run_query_guarded`: compilable queries run
on the pipelined engine, everything else on the reference evaluator.
Caching is transparent to scores, node identity, and result order —
``tests/differential/`` locks that equivalence down.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, List, NamedTuple, Optional

from repro import obs as _obs
from repro.errors import QueryCompileError
from repro.obs import events as _events
from repro.perf.lru import LRUCache
from repro.query.ast import Query
from repro.query.parser import parse_query
from repro.query.unparse import unparse

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.resilience.guard import QueryGuard
    from repro.resilience.run import GuardedResult
    from repro.xmldb.store import XMLStore

__all__ = [
    "NormalizedQuery", "normalize_query",
    "PlanCache", "ResultCache", "QueryCache",
]


class NormalizedQuery(NamedTuple):
    """A parsed query plus its canonical surface text (the cache key)."""

    text: str
    query: Query


def normalize_query(source: str) -> NormalizedQuery:
    """Parse ``source`` and render it back to canonical text.

    ``parse(unparse(parse(q))) == parse(q)`` is an asserted roundtrip
    property of the unparser, so the canonical text is a faithful key:
    two sources normalize equal iff they parse to the same AST.
    """
    query = parse_query(source)
    return NormalizedQuery(unparse(query), query)


# ----------------------------------------------------------------------
# Plan cache
# ----------------------------------------------------------------------

class _PlanEntry:
    """Pool of compiled plans for one (query, generation) key.

    ``compilable`` starts ``True`` and flips permanently to ``False``
    on the first :class:`QueryCompileError` — the negative verdict is
    as cacheable as a plan.
    """

    __slots__ = ("idle", "lock", "compilable")

    def __init__(self) -> None:
        self.idle: List[object] = []
        self.lock = threading.Lock()
        self.compilable = True


class PlanCache:
    """Compiled-plan cache with per-entry pooling (see module docstring).

    :param capacity: maximum number of (query, generation) entries;
    :param max_pool: idle plans kept per entry — bounding what a burst
        of concurrent identical queries can leave behind.
    """

    def __init__(self, store: "XMLStore", capacity: int = 128,
                 max_pool: int = 8) -> None:
        self.store = store
        self.max_pool = max_pool
        self._entries = LRUCache(capacity, metric_prefix="cache.plan",
                                 record=False)
        # Lifetime tallies (hit = compile avoided).  Guarded: the
        # batch executor's workers count concurrently, and ``+= 1``
        # is a read-modify-write that silently loses increments.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _entry(self, norm: NormalizedQuery) -> _PlanEntry:
        key = (norm.text, self.store.generation)
        return self._entries.get_or_create(key, lambda: (_PlanEntry(), 1))

    def acquire(self, norm: NormalizedQuery,
                registry: "Optional[MetricsRegistry]" = None,
                ) -> Optional[Any]:
        """A compiled plan for ``norm``, or ``None`` when the query is
        outside the compilable shape.  The plan is checked out: return
        it with :meth:`release` (even after an execution error — plans
        are left re-openable by the engine's error paths)."""
        from repro.query.compiler import compile_query

        entry = self._entry(norm)
        with entry.lock:
            if not entry.compilable:
                self._count(hit=True)
                return None
            if entry.idle:
                plan = entry.idle.pop()
                self._count(hit=True)
                return plan
        # Compile outside the lock: concurrent first-misses may compile
        # in parallel; every copy is equivalent and pools afterwards.
        try:
            plan = compile_query(self.store, norm.query, registry)
        except QueryCompileError:
            with entry.lock:
                entry.compilable = False
            self._count(hit=False)
            return None
        self._count(hit=False)
        return plan

    def release(self, norm: NormalizedQuery, plan: Optional[Any]) -> None:
        """Check a plan back in for reuse."""
        if plan is None:
            return
        entry = self._entry(norm)
        with entry.lock:
            if len(entry.idle) < self.max_pool:
                entry.idle.append(plan)

    def _count(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1
        rec = _obs.RECORDER
        if rec.enabled:
            rec.count("cache.plan.hits" if hit else "cache.plan.misses")
        ev = _events.current_event()
        if ev is not None:
            ev.plan_cache = "hit" if hit else "miss"

    def __len__(self) -> int:
        return len(self._entries)


# ----------------------------------------------------------------------
# Result cache
# ----------------------------------------------------------------------

class ResultCache:
    """Full-answer cache for ``run_query``-shaped executions.

    Values are the result lists themselves; hits return a fresh *list*
    (so callers may sort/slice freely) over shared trees — results are
    read-only by convention everywhere in the engine.  Weight is the
    result count, so the capacity bounds retained trees, not queries.
    """

    def __init__(self, store: "XMLStore", capacity: int = 4096) -> None:
        self.store = store
        self._lru = LRUCache(capacity, metric_prefix="cache.result")

    def _key(self, text: str) -> Any:
        return (text, self.store.generation)

    def get(self, norm: NormalizedQuery) -> Optional[List]:
        found = self._lru.get(self._key(norm.text))
        return None if found is None else list(found)

    def put(self, norm: NormalizedQuery, results: List) -> None:
        self._lru.put(self._key(norm.text), list(results),
                      weight=max(1, len(results)))

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses


# ----------------------------------------------------------------------
# The composed front door
# ----------------------------------------------------------------------

class QueryCache:
    """Plan + result caches behind one ``run_query``-shaped call.

    One instance serves one store; share it across queries (and across
    the batch executor's threads) to share the warm state.  Pass
    ``results=False`` to keep only the plan tier (e.g. when answers are
    too large to retain).

    Caching is bypassed when a custom function ``registry`` is supplied
    — user functions may close over arbitrary state, which the key
    cannot see.
    """

    def __init__(self, store: "XMLStore", *, plan_capacity: int = 128,
                 result_capacity: int = 4096, results: bool = True,
                 norm_capacity: int = 512) -> None:
        self.store = store
        self.plans = PlanCache(store, capacity=plan_capacity)
        self.results = (
            ResultCache(store, capacity=result_capacity) if results
            else None
        )
        self._norm = LRUCache(norm_capacity, metric_prefix="cache.norm",
                              record=False)

    # ------------------------------------------------------------------

    def normalize(self, source: str) -> NormalizedQuery:
        """Cached :func:`normalize_query` (keyed on the raw source)."""
        return self._norm.get_or_create(
            source, lambda: (normalize_query(source), 1)
        )

    def run_query(self, source: str,
                  registry: "Optional[MetricsRegistry]" = None) -> List:
        """Parse/compile/execute with every tier engaged.

        Dispatch matches :func:`repro.resilience.run.run_query_guarded`:
        compilable queries return the engine's ranked scored subtrees,
        the rest the evaluator's constructed results.
        """
        from repro.engine.base import execute
        from repro.query.evaluator import evaluate_query

        with _events.observe_query(source) as ev:
            if registry is not None:
                from repro.query.evaluator import run_query as _run_query

                out = _run_query(self.store, source, registry)
                if ev is not None:
                    ev.note_result(len(out))
                return out

            norm = self.normalize(source)
            if self.results is not None:
                cached = self.results.get(norm)
                if cached is not None:
                    if ev is not None:
                        ev.cache = "hit"
                        ev.note_result(len(cached))
                    return cached
            if ev is not None and self.results is not None:
                ev.cache = "miss"
            plan = self.plans.acquire(norm)
            if plan is not None:
                try:
                    out = execute(plan)
                finally:
                    self.plans.release(norm, plan)
                if ev is not None:
                    ev.note_plan(plan)
            else:
                out = evaluate_query(self.store, norm.query)
            if self.results is not None:
                self.results.put(norm, out)
            if ev is not None:
                ev.note_result(len(out))
            return out

    def run_query_guarded(self, source: str, guard: "QueryGuard",
                          registry: "Optional[MetricsRegistry]" = None,
                          ) -> "GuardedResult":
        """Guarded variant returning a
        :class:`~repro.resilience.run.GuardedResult`.

        Cache interaction rules:

        - a result-cache **hit** is re-checked against the guard's row
          budget (a cached complete answer larger than ``max_rows``
          behaves exactly like an uncached over-budget run: strict mode
          raises, degrade mode trims and flags truncated);
        - only complete, un-truncated executions are **stored**;
        - the plan tier is budget-independent (budgets live in the
          guard, not the plan), so it is always engaged.
        """
        from repro.errors import ResourceExhaustedError
        from repro.resilience.run import (
            GuardedResult,
            evaluate_guarded,
            execute_guarded,
        )

        with _events.observe_query(source) as ev:
            if registry is not None:
                from repro.resilience.run import run_query_guarded

                return run_query_guarded(self.store, source, guard,
                                         registry)

            norm = self.normalize(source)
            max_rows = getattr(guard, "max_rows", None)
            rec = _obs.RECORDER
            if self.results is not None:
                cspan = (rec.begin_span("cache.lookup")
                         if rec.enabled else None)
                cached = self.results.get(norm)
                if cspan is not None:
                    cspan.attrs["hit"] = cached is not None
                rec.end_span(cspan)
                if cached is not None:
                    if ev is not None:
                        ev.cache = "hit"
                        ev.note_guard(guard)
                    if max_rows is not None and len(cached) > max_rows:
                        exc = ResourceExhaustedError(
                            f"query exceeded its row budget of {max_rows}"
                        )
                        if not guard.degrade:
                            raise exc
                        if ev is not None:
                            ev.note_result(max_rows, truncated=True,
                                           reason=str(exc))
                        return GuardedResult(
                            cached[:max_rows], truncated=True,
                            reason=str(exc), error=exc,
                        )
                    if ev is not None:
                        ev.note_result(len(cached))
                    return GuardedResult(cached)
            if ev is not None and self.results is not None:
                ev.cache = "miss"
            # Plan-tier span: a first miss compiles inside acquire, so
            # compile time shows up nested under it in the trace.
            with rec.span("plan.acquire"):
                plan = self.plans.acquire(norm)
            if plan is not None:
                try:
                    res = execute_guarded(plan, guard)
                finally:
                    self.plans.release(norm, plan)
            else:
                res = evaluate_guarded(self.store, norm.query, guard)
            if self.results is not None and not res.truncated:
                self.results.put(norm, res.results)
            if ev is not None:
                ev.note_result(res.n_results, res.truncated, res.reason)
            return res

    def stats(self) -> dict:
        """Hit/miss tallies for every tier (reports and tests)."""
        out = {
            "plan": {"hits": self.plans.hits, "misses": self.plans.misses},
        }
        if self.results is not None:
            out["result"] = self.results._lru.stats()
        return out
