"""Size-bounded, thread-safe LRU cache with ``cache.*`` metrics.

One implementation serves every tier of the hierarchy (postings, plans,
results).  Entries carry an explicit *weight* (postings cached, trees
stored, …) so capacity bounds memory-like quantities rather than entry
counts alone; eviction is strict LRU on access order.

Metrics follow the :mod:`repro.obs` null-recorder contract: each
operation performs a single ``rec.enabled`` test and emits
``<prefix>.hits`` / ``.misses`` / ``.evictions`` counters plus
``<prefix>.entries`` / ``.weight`` gauges only while a collector is
installed.

The lock makes the cache safe under the batch executor's thread pool;
uncontended acquisition is tens of nanoseconds — invisible next to a
posting-list decode or a plan compile.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Tuple

from repro import obs as _obs

__all__ = ["LRUCache"]

#: Sentinel distinguishing "cached None" from "absent".
_MISSING = object()


class LRUCache:
    """An LRU map ``key -> (value, weight)`` bounded by total weight.

    :param capacity: maximum total weight held; inserting a value whose
        weight exceeds the capacity simply bypasses the cache (the value
        is returned to the caller but never stored, so one oversized
        posting list cannot wipe the working set).
    :param metric_prefix: dotted prefix for the ``hits`` / ``misses`` /
        ``evictions`` counters, e.g. ``"cache.postings"``.
    :param record: emit obs metrics.  Tiers that wrap this cache behind
        their own hit/miss semantics (e.g. the plan cache, where a
        *pooled plan*, not an entry lookup, is the real hit) pass
        ``False`` so the metric namespace carries one meaning.
    """

    def __init__(self, capacity: int, metric_prefix: str = "cache",
                 record: bool = True) -> None:
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.metric_prefix = metric_prefix
        self.record = record
        self._data: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self._weight = 0
        self._lock = threading.Lock()
        # Lifetime tallies, kept even with no collector installed so
        # tests and reports can read hit ratios without instrumenting.
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def get(self, key: Hashable) -> Any:
        """Value for ``key`` or ``None``; a hit refreshes recency."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                hit = False
            else:
                self._data.move_to_end(key)
                self.hits += 1
                hit = True
        if self.record:
            rec = _obs.RECORDER
            if rec.enabled:
                rec.count(f"{self.metric_prefix}.hits" if hit
                          else f"{self.metric_prefix}.misses")
        return None if value is _MISSING else value[0]

    def put(self, key: Hashable, value: Any, weight: int = 1) -> None:
        """Insert (or refresh) ``key``, evicting LRU entries as needed."""
        if weight > self.capacity:
            return  # oversized: serve uncached rather than thrash
        evicted = 0
        with self._lock:
            old = self._data.pop(key, _MISSING)
            if old is not _MISSING:
                self._weight -= old[1]
            self._data[key] = (value, weight)
            self._weight += weight
            while self._weight > self.capacity:
                _k, (_v, w) = self._data.popitem(last=False)
                self._weight -= w
                evicted += 1
            self.evictions += evicted
            entries, total = len(self._data), self._weight
        if self.record:
            rec = _obs.RECORDER
            if rec.enabled:
                if evicted:
                    rec.count(f"{self.metric_prefix}.evictions", evicted)
                rec.set_gauge(f"{self.metric_prefix}.entries", entries)
                rec.set_gauge(f"{self.metric_prefix}.weight", total)

    def get_or_create(self, key: Hashable,
                      factory: Callable[[], Tuple[Any, int]]) -> Any:
        """``get`` or build-and-``put``: ``factory`` returns
        ``(value, weight)`` and runs *outside* the lock (it may be an
        expensive decode/compile), so concurrent misses on the same key
        may each build once — last insert wins, all results identical by
        construction."""
        found = self.get(key)
        if found is not None:
            return found
        value, weight = factory()
        self.put(key, value, weight)
        return value

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns whether it was present."""
        with self._lock:
            old = self._data.pop(key, _MISSING)
            if old is _MISSING:
                return False
            self._weight -= old[1]
            return True

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._weight = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    @property
    def weight(self) -> int:
        with self._lock:
            return self._weight

    def stats(self) -> Dict[str, int]:
        """Lifetime tallies as a plain dict (for reports/tests)."""
        with self._lock:
            return {
                "entries": len(self._data),
                "weight": self._weight,
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.stats()
        return (
            f"LRUCache({self.metric_prefix}: {s['entries']} entries, "
            f"{s['weight']}/{s['capacity']} weight, "
            f"{s['hits']}h/{s['misses']}m/{s['evictions']}e)"
        )
