"""LRU postings cache: a caching proxy in front of any inverted index.

:class:`CachingIndex` wraps an :class:`~repro.index.inverted.InvertedIndex`
or :class:`~repro.index.compress.CompressedInvertedIndex` and serves
repeated ``postings(term)`` calls from a size-bounded LRU keyed by term.
It replaces the single most-recent-term cache the compressed index used
to keep internally: the LRU holds the whole working set of a query mix
(capacity is bounded in *postings*, the unit that actually costs
memory), is shared by every query over the store, and is safe under the
batch executor's thread pool.

Accounting contract (the fix for the old double-count):

- ``index.posting_fetches`` counts every logical fetch, hit or miss —
  the cache layer counts it on hits, the wrapped index on misses;
- ``index.postings_returned`` / ``index.bytes_read`` /
  ``index.posting_decodes`` count **cold-path work only** (they are
  emitted by the wrapped index when it is actually consulted), so they
  stay mutually consistent: bytes and decodes explain exactly the
  postings returned by real index reads;
- ``index.cache_hits`` and ``cache.postings.hits/misses/evictions``
  count the warm path.

Posting lists are immutable once built (documents are append-only until
the store's generation bumps, which discards the index and this wrapper
with it), so cached lists are shared, never copied.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Tuple

from repro import obs as _obs
from repro.index.inverted import PostingList
from repro.perf.lru import LRUCache

__all__ = ["CachingIndex", "DEFAULT_POSTINGS_CAPACITY"]

#: Default capacity in *postings* (tuples), not terms: ~200k postings is
#: a few MB of tuples — generous for the synthetic corpora, tiny next to
#: the store itself.
DEFAULT_POSTINGS_CAPACITY = 200_000


class CachingIndex:
    """Caching proxy over an inverted index (see module docstring).

    Implements the full lookup API of the wrapped index; anything else
    (e.g. ``compressed_bytes`` on the compressed index) is forwarded via
    ``__getattr__``.
    """

    def __init__(self, inner: Any,
                 capacity: int = DEFAULT_POSTINGS_CAPACITY) -> None:
        self.inner = inner
        self.cache = LRUCache(capacity, metric_prefix="cache.postings")

    # -- the cached hot path ---------------------------------------------

    def postings(self, term: str, strict: bool = False) -> PostingList:
        cached = self.cache.get(term)
        if cached is not None:
            rec = _obs.RECORDER
            if rec.enabled:
                rec.count("index.posting_fetches")
                rec.count("index.cache_hits")
            return cached
        pl = self.inner.postings(term, strict=strict)
        # Cache known terms only: a non-strict miss on an unknown term
        # returns an empty list, and caching it would let a later
        # strict=True call silently skip the UnknownTermError path.
        if len(pl) or term in self.inner:
            self.cache.put(term, pl, weight=max(1, len(pl)))
        return pl

    # -- lookup API parity -------------------------------------------------

    def __contains__(self, term: str) -> bool:
        return term in self.inner

    @property
    def n_documents(self) -> int:
        return self.inner.n_documents

    @property
    def n_terms(self) -> int:
        return self.inner.n_terms

    def frequency(self, term: str) -> int:
        return len(self.postings(term))

    def document_frequency(self, term: str) -> int:
        return self.postings(term).document_frequency

    def idf(self, term: str) -> float:
        df = self.document_frequency(term)
        return math.log((self.n_documents + 1) / (df + 1)) + 1.0

    def vocabulary(self) -> Iterable[str]:
        return self.inner.vocabulary()

    def element_counts(self, term: str) -> Dict[Tuple[int, int], int]:
        from collections import Counter

        from repro.index.inverted import P_DOC, P_NODE

        counts: Counter = Counter()
        for p in self.postings(term):
            counts[(p[P_DOC], p[P_NODE])] += 1
        return dict(counts)

    def terms_sorted_by_frequency(self) -> List[Tuple[str, int]]:
        return self.inner.terms_sorted_by_frequency()

    def __getattr__(self, name: str) -> Any:
        # Anything not overridden (compression stats, future additions)
        # is answered by the wrapped index.
        return getattr(self.inner, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CachingIndex({self.inner!r}, {self.cache!r})"
