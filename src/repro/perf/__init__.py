"""Query-serving performance layer: cache hierarchy + batch execution.

The ROADMAP's production workload is *repeated* queries over a
mostly-static corpus — the classic cache-friendly shape: posting lists
are immutable between document loads (the TermJoin/PhraseFinder access
methods assume as much), compiled plans depend only on the query text
and the corpus snapshot, and identical queries return identical
answers.  This package layers three caches over that observation, all
invalidated by one mechanism — the store's monotonic
:attr:`~repro.xmldb.store.XMLStore.generation` counter, bumped on every
document add/remove:

- :class:`~repro.perf.postings.CachingIndex` — a size-bounded LRU of
  decoded posting lists in front of
  :class:`~repro.index.inverted.InvertedIndex` /
  :class:`~repro.index.compress.CompressedInvertedIndex` (it replaces
  the old single-term cache inside the compressed index), enabled via
  :meth:`XMLStore.enable_postings_cache`;
- :class:`~repro.perf.querycache.PlanCache` — compiled engine plans
  keyed on *normalized* query text (parse → unparse) + store
  generation, with a per-entry pool so concurrent callers never share a
  stateful operator tree;
- :class:`~repro.perf.querycache.ResultCache` — full ``run_query``
  answers for the same key (only complete, un-truncated runs are ever
  stored).

:class:`~repro.perf.querycache.QueryCache` composes the plan and result
tiers behind one ``run_query``-shaped call; ``repro.perf.batch`` runs
many queries over a shared read-only store on a thread pool
(:func:`~repro.perf.batch.execute_batch`, ``tix batch``), composing the
per-query :class:`~repro.resilience.QueryGuard` envelope and returning
results in submission order regardless of completion order.

Everything reports ``cache.*`` / ``batch.*`` metrics through
:mod:`repro.obs` and honours the null-recorder zero-overhead contract.
See ``docs/performance.md``.
"""

from repro.perf.lru import LRUCache
from repro.perf.postings import CachingIndex
from repro.perf.querycache import (
    NormalizedQuery,
    PlanCache,
    QueryCache,
    ResultCache,
    normalize_query,
)
from repro.perf.batch import (
    BatchOutcome,
    BatchResult,
    execute_batch,
)

__all__ = [
    "LRUCache",
    "CachingIndex",
    "NormalizedQuery",
    "PlanCache",
    "QueryCache",
    "ResultCache",
    "normalize_query",
    "BatchOutcome",
    "BatchResult",
    "execute_batch",
]
