"""Concurrent batch execution of queries over a shared read-only store.

INEX-style evaluation runs a large fixed topic set against one corpus;
a production front-end does the same continuously.  ``execute_batch``
serves that shape: many query strings, one store, a
``ThreadPoolExecutor``, and a per-query :class:`~repro.resilience.guard.
QueryGuard` composing the resilience layer's deadline/budget/degrade
semantics — one slow or over-budget query degrades (or fails) alone
without taking the batch down.

Correctness under concurrency rests on three properties established
elsewhere:

- guard installation is **thread-local** (:mod:`repro.resilience.guard`),
  so each worker's budgets tick against its own query;
- the store is treated as **read-only** — its lazy index/structure are
  built once *before* the pool spins up, so workers never race the
  builders;
- the optional shared :class:`~repro.perf.querycache.QueryCache` is
  thread-safe, and its plan tier hands each concurrent caller its own
  pooled operator tree.

Results come back as a :class:`BatchResult` whose outcomes sit in
**submission order** regardless of completion order — slot ``i`` always
answers ``sources[i]``.  Per-query failures are captured in the outcome
(``error`` / ``error_type``), never raised, so one malformed query
cannot lose the rest of the batch.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

from repro import obs as _obs
from repro.obs import events as _events
from repro.resilience.guard import QueryGuard

if TYPE_CHECKING:
    from repro.obs.metrics import MetricsRegistry
    from repro.perf.querycache import QueryCache
    from repro.xmldb.store import XMLStore

__all__ = ["BatchOutcome", "BatchResult", "execute_batch"]


@dataclass
class BatchOutcome:
    """What happened to one query of the batch.

    Exactly one of three shapes: success (``ok``, full ``results``),
    degraded (``ok`` with ``truncated`` set and ``reason`` explaining
    the trip), or failure (``error`` / ``error_type`` set, empty
    ``results``).
    """

    index: int
    source: str
    results: List[object] = field(default_factory=list)
    truncated: bool = False
    reason: str = ""
    error: str = ""
    error_type: str = ""
    elapsed_ms: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.error

    @property
    def n_results(self) -> int:
        return len(self.results)


@dataclass
class BatchResult:
    """All outcomes of one :func:`execute_batch` call, in submission
    order (``outcomes[i]`` answers ``sources[i]``)."""

    outcomes: List[BatchOutcome]
    wall_ms: float = 0.0

    @property
    def n_queries(self) -> int:
        return len(self.outcomes)

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def n_truncated(self) -> int:
        return sum(1 for o in self.outcomes if o.truncated)

    def __iter__(self) -> Iterator[BatchOutcome]:
        return iter(self.outcomes)

    def __getitem__(self, i: int) -> BatchOutcome:
        return self.outcomes[i]


def _run_one(store: "XMLStore", outcome: BatchOutcome, *,
             timeout_ms: Optional[float], max_rows: Optional[int],
             degrade: bool, cache: "Optional[QueryCache]",
             registry: "Optional[MetricsRegistry]") -> BatchOutcome:
    """Execute one query into its pre-slotted outcome (worker body)."""
    from repro.errors import TIXError
    from repro.query.evaluator import run_query
    from repro.resilience.run import run_query_guarded

    t0 = perf_counter()
    guard = (
        QueryGuard(timeout_ms=timeout_ms, max_rows=max_rows,
                   degrade=degrade)
        if (timeout_ms is not None or max_rows is not None) else None
    )
    with _events.observe_query(outcome.source, kind="batch") as ev:
        try:
            if guard is not None:
                if cache is not None:
                    res = cache.run_query_guarded(outcome.source, guard,
                                                  registry)
                else:
                    res = run_query_guarded(store, outcome.source, guard,
                                            registry)
                outcome.results = res.results
                outcome.truncated = res.truncated
                outcome.reason = res.reason
            elif cache is not None:
                outcome.results = cache.run_query(outcome.source, registry)
            else:
                outcome.results = run_query(store, outcome.source, registry)
        except TIXError as exc:
            outcome.error = str(exc)
            outcome.error_type = type(exc).__name__
        except Exception as exc:  # defensive: never lose the batch
            outcome.error = str(exc)
            outcome.error_type = type(exc).__name__
        if ev is not None:
            # Captured failures never propagate, so stamp the audit
            # record from the outcome before emission.
            if outcome.error:
                ev.note_error(outcome.error_type, outcome.error)
            else:
                ev.note_result(outcome.n_results, outcome.truncated,
                               outcome.reason)
    outcome.elapsed_ms = (perf_counter() - t0) * 1000.0
    return outcome


def execute_batch(store: "XMLStore", sources: Sequence[str], *,
                  max_workers: Optional[int] = None,
                  timeout_ms: Optional[float] = None,
                  max_rows: Optional[int] = None,
                  degrade: bool = True,
                  cache: "Optional[QueryCache]" = None,
                  registry: "Optional[MetricsRegistry]" = None,
                  ) -> BatchResult:
    """Run every query in ``sources`` against ``store`` on a thread pool.

    :param max_workers: pool width (default: enough for the batch, at
        most ``min(8, cpu_count)``);
    :param timeout_ms: per-query wall-clock deadline — each query gets
        its *own* :class:`QueryGuard`, so the clock starts when the
        query starts, not when the batch does;
    :param max_rows: per-query output-row budget;
    :param degrade: ``True`` (default) turns trips into partial results
        flagged ``truncated``; ``False`` records them as errors on the
        outcome;
    :param cache: optional shared :class:`~repro.perf.querycache.
        QueryCache` — duplicate queries in the batch (and across
        batches) are answered from it;
    :param registry: custom score-function registry, passed through to
        every query (disables the cache tiers, see
        :class:`QueryCache`).

    Returns a :class:`BatchResult` in submission order.  Emits
    ``batch.queries`` / ``batch.errors`` / ``batch.truncated`` counters
    and a ``batch.query_ms`` distribution when an obs collector is
    installed.
    """
    sources = list(sources)
    if max_workers is None:
        max_workers = max(1, min(8, os.cpu_count() or 4, len(sources) or 1))
    outcomes = [
        BatchOutcome(index=i, source=src) for i, src in enumerate(sources)
    ]
    t0 = perf_counter()
    if outcomes:
        # Force the lazy index/structure builds on this thread so the
        # workers share finished structures instead of racing to build.
        store.index
        store.structure
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                pool.submit(_run_one, store, o, timeout_ms=timeout_ms,
                            max_rows=max_rows, degrade=degrade,
                            cache=cache, registry=registry)
                for o in outcomes
            ]
            for fut in futures:
                fut.result()  # outcomes are pre-slotted; this re-raises
                # only on harness bugs (worker exceptions are captured)
    result = BatchResult(outcomes, wall_ms=(perf_counter() - t0) * 1000.0)
    rec = _obs.RECORDER
    if rec.enabled:
        rec.count("batch.queries", result.n_queries)
        if result.n_failed:
            rec.count("batch.errors", result.n_failed)
        if result.n_truncated:
            rec.count("batch.truncated", result.n_truncated)
        for o in outcomes:
            rec.observe("batch.query_ms", o.elapsed_ms)
    return result
