"""User-function registry for the query language.

The paper's central language claim is that scoring is *declarative and
user-pluggable*: queries name scoring functions (``ScoreFoo``) and pick
criteria (``PickFoo``) that the engine calls back.  The registry maps
those names to Python callables; :func:`default_registry` preloads the
Figure 9 functions.

Scoring functions receive their evaluated arguments (data nodes, term
sets as lists of phrase strings, numbers) and return a float.  Pick
criteria are :class:`~repro.core.pick.PickCriterion` factories.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.core.pick import PickCriterion
from repro.core.scoring import (
    TfIdfScorer,
    WeightedCountScorer,
    score_bar,
    score_sim,
)
from repro.core.trees import SNode
from repro.errors import QueryCompileError


class QueryContext:
    """Execution context handed to store-aware scoring functions (those
    registered with ``needs_context=True``): gives access to the store
    and its indexes, e.g. for idf statistics."""

    def __init__(self, store) -> None:
        self.store = store

    @property
    def index(self):
        return self.store.index


class FunctionRegistry:
    """Named scoring functions and pick criteria."""

    def __init__(self) -> None:
        self._score_fns: Dict[str, Callable[..., float]] = {}
        self._pick_fns: Dict[str, Callable[..., PickCriterion]] = {}
        self._score_factories: Dict[str, Callable[..., object]] = {}
        self._needs_context: Dict[str, bool] = {}

    # -- registration -------------------------------------------------------

    def register_score(self, name: str, fn: Callable[..., float],
                       needs_context: bool = False) -> None:
        """Register a scoring function callable as ``name`` in queries.
        With ``needs_context`` the function receives a
        :class:`QueryContext` as its first argument (for store statistics
        such as idf)."""
        self._score_fns[name] = fn
        self._needs_context[name] = needs_context

    def register_pick(self, name: str,
                      factory: Callable[..., PickCriterion]) -> None:
        """Register a pick-criterion factory callable as ``name``."""
        self._pick_fns[name] = factory

    def register_score_factory(self, name: str,
                               factory: Callable[..., object]) -> None:
        """Register a *simple scorer factory* enabling the plan compiler
        to drive this scoring function with TermJoin.  The factory
        receives ``(primary_terms, secondary_terms)`` and must return an
        object with ``score_from_counts`` (see
        :mod:`repro.access.scorers`) whose per-term semantics equal the
        scoring function's."""
        self._score_factories[name] = factory

    # -- lookup ---------------------------------------------------------------

    def score_function(self, name: str) -> Callable[..., float]:
        try:
            return self._score_fns[name]
        except KeyError:
            raise QueryCompileError(
                f"unknown scoring function {name!r}; register it on the "
                f"FunctionRegistry"
            )

    def pick_criterion(self, name: str, *args) -> PickCriterion:
        try:
            factory = self._pick_fns[name]
        except KeyError:
            raise QueryCompileError(
                f"unknown pick criterion {name!r}; register it on the "
                f"FunctionRegistry"
            )
        return factory(*args)

    def has_score(self, name: str) -> bool:
        return name in self._score_fns

    def needs_context(self, name: str) -> bool:
        """Does this scoring function take a QueryContext first?"""
        return self._needs_context.get(name, False)

    def has_pick(self, name: str) -> bool:
        return name in self._pick_fns

    def score_factory(self, name: str) -> Callable[..., object]:
        try:
            return self._score_factories[name]
        except KeyError:
            raise QueryCompileError(
                f"scoring function {name!r} has no simple-scorer factory; "
                f"the query cannot be compiled to TermJoin (use the "
                f"evaluator, or register_score_factory)"
            )


# ----------------------------------------------------------------------
# The Figure 9 functions
# ----------------------------------------------------------------------

def score_foo_fn(node: SNode, primary: Sequence[str],
                 secondary: Sequence[str] = ()) -> float:
    """``ScoreFoo``: weighted phrase counts over the node's subtree text
    (0.8 / 0.6 weights, light plural stemming)."""
    scorer = WeightedCountScorer(
        primary=list(primary), secondary=list(secondary), stem=True
    )
    return scorer.score_node(node)


def score_sim_fn(a: SNode, b: SNode) -> float:
    """``ScoreSim``: distinct-common-word similarity."""
    return score_sim(a, b)


def score_bar_fn(score1: float, score2: float) -> float:
    """``ScoreBar``: combine join score with content score."""
    return score_bar(float(score1), float(score2))


def pick_foo_factory(*_args, relevance_threshold: float = 0.8,
                     qualification: float = 0.5) -> PickCriterion:
    """``PickFoo``: the paper's default criterion (relevance ≥ 0.8, more
    than 50% of children relevant, parent/child redundancy elimination).

    The query-level variant ignores zero-scored children in the
    qualification denominator, which is what the projection's drop-zero
    step provides on the algebra path — with it, the query and algebra
    paths pick identical nodes (Fig. 8)."""
    return PickCriterion(
        relevance_threshold=relevance_threshold,
        qualification=qualification,
        ignore_zero_children=True,
    )


def score_foo_exact_fn(node: SNode, primary: Sequence[str],
                       secondary: Sequence[str] = ()) -> float:
    """``ScoreFooExact``: like ``ScoreFoo`` but without stemming, so its
    per-term semantics match the inverted index exactly — this is the
    variant the plan compiler can lower onto TermJoin."""
    scorer = WeightedCountScorer(
        primary=list(primary), secondary=list(secondary), stem=False
    )
    return scorer.score_node(node)


def _score_foo_exact_factory(primary: Sequence[str],
                             secondary: Sequence[str]) -> WeightedCountScorer:
    return WeightedCountScorer(
        primary=list(primary), secondary=list(secondary), stem=False
    )


def tfidf_fn(ctx: QueryContext, node: SNode,
             terms: Sequence[str]) -> float:
    """``TfIdf``: the tf·idf scoring §3.1 suggests, with idf read from
    the store's inverted index (hence the context)."""
    flat = [t.lower() for t in terms]
    scorer = TfIdfScorer(flat, idf={t: ctx.index.idf(t) for t in flat})
    return scorer.score_node(node)


def default_registry() -> FunctionRegistry:
    """Registry preloaded with the paper's user functions."""
    reg = FunctionRegistry()
    reg.register_score("ScoreFoo", score_foo_fn)
    reg.register_score("ScoreFooExact", score_foo_exact_fn)
    reg.register_score_factory("ScoreFooExact", _score_foo_exact_factory)
    reg.register_score("ScoreSim", score_sim_fn)
    reg.register_score("ScoreBar", score_bar_fn)
    reg.register_score("TfIdf", tfidf_fn, needs_context=True)
    reg.register_pick("PickFoo", pick_foo_factory)
    return reg
