"""Extended-XQuery front end (§4).

The paper extends XQuery with four clauses so IR conditions become
declarative:

- ``Score $v using Fn(args…)`` — assign relevance scores via a registered
  user scoring function;
- ``Pick $v using Fn($v)`` — redundancy elimination with a registered
  pick criterion;
- ``Sortby(name)`` — rank results;
- ``Threshold <cond> [stop after k]`` — V/K-style irrelevance filtering.

This package implements a lexer, recursive-descent parser, AST, a
reference evaluator over the store, a user-function registry preloaded
with the paper's Figure 9 functions, and a plan compiler that lowers the
common IR-query shape onto the pipelined engine with TermJoin /
PhraseFinder acceleration.

Entry point::

    from repro.query import run_query
    results = run_query(store, query_text)
"""

from repro.query.ast import Query
from repro.query.functions import (
    FunctionRegistry,
    QueryContext,
    default_registry,
)
from repro.query.parser import parse_query
from repro.query.evaluator import evaluate_query, run_query
from repro.query.compiler import compile_query, explain_query
from repro.query.unparse import unparse

__all__ = [
    "Query",
    "FunctionRegistry",
    "QueryContext",
    "default_registry",
    "parse_query",
    "evaluate_query",
    "run_query",
    "compile_query",
    "explain_query",
    "unparse",
]
