"""Plan compiler: lowering the common IR-query shape onto the engine.

The evaluator (:mod:`repro.query.evaluator`) defines the language
semantics; this compiler recognizes the paper's canonical IR-query shape

::

    For $v in document("D")//tag[preds]/descendant-or-self::*
    Score $v using Fn($v, {"t1"}, {"t2", …})
    Return …
    Sortby(score)
    Threshold $v/@score > V stop after K

and produces a pipelined engine plan:

    scan(score method) → structural filter → rank → materialize

*Which* physical operator fills each slot is decided by the cost-based
planner (:mod:`repro.plan.optimizer`): the compiler builds a
:class:`~repro.plan.rules.QuerySpec` describing the query's decision
points (score method, filter strategy, rank strategy), runs the
selection chain, and assembles the plan the chain chose.  ``planner=``
selects the base policy (``"cost"`` — the default — or ``"heuristic"``,
the pre-planner hard-coded plan), ``force_ops=`` pins individual
decision points (the CLI's ``--force-op NAME=OP``), and ``selection=``
substitutes a caller-built chain outright.  The chosen-vs-rejected
record rides on the plan root (``plan.planner_choices``) and is
rendered by ``explain()``.

Compilation requires the scoring function to have a registered *simple
scorer factory* (term-level scoring the index can drive — see
:meth:`FunctionRegistry.register_score_factory`); queries outside the
shape (joins, Pick clauses) raise
:class:`~repro.errors.QueryCompileError`, and callers fall back to the
evaluator.  The compiled plan returns the ranked scored elements
(materialized stored subtrees), not the Return-constructor wrapping —
equivalence with the evaluator is on (element, score) sets, which is what
the tests assert.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.trees import SNode, STree
from repro.engine.base import Operator, execute, explain
from repro.engine.operators import (
    Limit,
    Materialize,
    Sort,
    TermJoinScan,
    TopK,
)
from repro.errors import QueryCompileError
from repro.query.ast import (
    Comparison,
    DocCall,
    FLWOR,
    ForClause,
    PathExpr,
    Query,
    ScoreClause,
    TermSet,
    VarRef,
)
from repro.query.evaluator import QueryEvaluator
from repro.query.functions import FunctionRegistry, default_registry
from repro.xmldb.store import XMLStore


class StructuralFilter(Operator):
    """Keep scored elements whose stored node lies in one of the allowed
    (doc, start, end) regions — the compiled form of the For-path's
    structural constraint."""

    name = "structural-filter"

    def __init__(self, child: Operator, store: XMLStore,
                 regions: Sequence[Tuple[int, int, int]]):
        super().__init__([child])
        self.store = store
        # sort by (doc, start) for bisection; few regions in practice
        self.regions = sorted(regions)

    def describe(self) -> str:
        return f"structural-filter({len(self.regions)} regions)"

    def _match(self, doc_id: int, node_id: int) -> bool:
        doc = self.store.document(doc_id)
        start, end = doc.starts[node_id], doc.ends[node_id]
        for rdoc, rstart, rend in self.regions:
            if rdoc == doc_id and rstart <= start and end <= rend:
                return True
        return False

    def _next(self) -> Optional[STree]:
        while True:
            item = self.children[0].next()
            if item is None:
                return None
            src = item.root.source
            if src is not None and self._match(*src):
                return item


class BisectStructuralFilter(StructuralFilter):
    """Structural filter matching by binary search over the sorted
    region table instead of a linear probe — the planner's alternative
    once regions number in the dozens.

    Per document the regions are kept sorted by start position together
    with a running prefix-maximum of their end positions: a candidate
    at ``start`` bisects to the rightmost region starting at or before
    it, then scans left only while the prefix maximum says some region
    can still reach ``start`` — correct for nested and overlapping
    regions, and a single step for the common disjoint case."""

    def __init__(self, child: Operator, store: XMLStore,
                 regions: Sequence[Tuple[int, int, int]]):
        super().__init__(child, store, regions)
        by_doc: Dict[int, Tuple[List[int], List[int], List[int]]] = {}
        for rdoc, rstart, rend in self.regions:  # already sorted
            starts, ends, cover = by_doc.setdefault(rdoc, ([], [], []))
            starts.append(rstart)
            ends.append(rend)
            cover.append(max(rend, cover[-1]) if cover else rend)
        self._by_doc = by_doc

    def describe(self) -> str:
        return f"structural-filter(bisect, {len(self.regions)} regions)"

    def _match(self, doc_id: int, node_id: int) -> bool:
        table = self._by_doc.get(doc_id)
        if table is None:
            return False
        doc = self.store.document(doc_id)
        start, end = doc.starts[node_id], doc.ends[node_id]
        starts, ends, cover = table
        i = bisect_right(starts, start) - 1
        while i >= 0 and cover[i] >= start:
            if ends[i] >= end:
                return True
            i -= 1
        return False


def compile_query(
    store: XMLStore, query: Query,
    registry: Optional[FunctionRegistry] = None,
    *,
    planner: str = "cost",
    force_ops: Optional[Mapping[str, str]] = None,
    selection: Optional[Any] = None,
    constants: Optional[Any] = None,
    corrections: Optional[Mapping[str, float]] = None,
) -> Operator:
    """Compile ``query`` to an engine plan (see module docstring).

    ``planner`` picks the base selection policy (``"cost"`` /
    ``"heuristic"``), ``force_ops`` pins decision points by name,
    ``selection`` substitutes a pre-built
    :class:`~repro.plan.optimizer.PhysicalOperatorSelection` chain, and
    ``constants``/``corrections`` recalibrate the cost model (the
    latter typically from :func:`~repro.plan.optimizer.
    corrections_from_feedback`).

    The returned plan is estimator-annotated: every operator carries
    ``est_rows``/``est_cost`` from the store's statistics catalog, so
    ``explain()`` shows estimates before execution and
    ``explain(analyze=True)`` shows estimated-vs-actual afterwards."""
    from repro import obs
    from repro.plan.estimate import estimate_plan

    with obs.RECORDER.span("compile"):
        plan = _compile_query(
            store, query, registry,
            planner=planner, force_ops=force_ops, selection=selection,
            constants=constants, corrections=corrections,
        )
        estimate_plan(plan, store)
        return plan


def _compile_query(
    store: XMLStore, query: Query,
    registry: Optional[FunctionRegistry] = None,
    *,
    planner: str = "cost",
    force_ops: Optional[Mapping[str, str]] = None,
    selection: Optional[Any] = None,
    constants: Optional[Any] = None,
    corrections: Optional[Mapping[str, float]] = None,
) -> Operator:
    registry = registry or default_registry()
    flwor = query.body
    if not isinstance(flwor, FLWOR):
        raise QueryCompileError("only FLWOR queries are compilable")

    for_clause: Optional[ForClause] = None
    score_clause: Optional[ScoreClause] = None
    for clause in flwor.clauses:
        if isinstance(clause, ForClause):
            if for_clause is not None:
                raise QueryCompileError(
                    "compiled shape supports a single For clause"
                )
            for_clause = clause
        elif isinstance(clause, ScoreClause):
            if score_clause is not None:
                raise QueryCompileError(
                    "compiled shape supports a single Score clause"
                )
            score_clause = clause
        else:
            raise QueryCompileError(
                f"clause {type(clause).__name__} is not compilable; "
                f"use the evaluator"
            )
    if for_clause is None or score_clause is None:
        raise QueryCompileError("compiled shape needs For + Score clauses")
    if score_clause.var != for_clause.var:
        raise QueryCompileError("Score must target the For variable")

    doc_name, prefix_steps = _parse_for_path(for_clause)
    items, scorer, phrase_mode = _build_scorer(score_clause, registry)

    min_score, stop_after = _threshold_params(flwor, for_clause.var)
    regions = _prefix_regions(store, doc_name, prefix_steps, registry)

    from repro.access.registry import build_score_method
    from repro.plan import optimizer as _optimizer
    from repro.plan import rules as _rules

    spec = _rules.QuerySpec(
        terms=items,
        phrase_mode=phrase_mode,
        min_score=min_score,
        stop_after=stop_after,
        sortby=flwor.sortby is not None,
        n_regions=len(regions),
        region_fraction=_rules.region_fraction(store, regions),
    )
    if selection is None:
        selection = _optimizer.make_selection(
            planner, force_ops=force_ops,
            constants=constants, corrections=corrections,
        )
    choices = _optimizer.choose_plan(
        spec, store.stats, selection, planner=planner,
    )

    method_name = choices.chosen(
        _rules.POINT_SCORE,
        "PhraseJoin" if phrase_mode else "TermJoin",
    )
    method = build_score_method(method_name, store, scorer)
    plan: Operator = TermJoinScan(
        store, items, method, min_score=min_score
    )
    if choices.chosen(_rules.POINT_FILTER) == _rules.FILTER_BISECT:
        plan = BisectStructuralFilter(plan, store, regions)
    else:
        plan = StructuralFilter(plan, store, regions)
    if flwor.sortby is not None and stop_after is not None:
        # Ranked + cut: §5.3's bounded heap, unless the planner (or a
        # hint) prefers materializing sort-then-limit.
        if choices.chosen(_rules.POINT_RANK) == _rules.RANK_SORT_LIMIT:
            plan = Limit(Sort(plan), stop_after)
        else:
            plan = TopK(plan, stop_after)
    else:
        if flwor.sortby is not None:
            plan = Sort(plan)
        if stop_after is not None:
            plan = Limit(plan, stop_after)
    root = Materialize(plan, store)
    root.planner_choices = choices
    return root


def _parse_for_path(for_clause: ForClause) -> Tuple[str, tuple]:
    source = for_clause.source
    if (not isinstance(source, PathExpr)
            or not isinstance(source.root, DocCall)):
        raise QueryCompileError(
            "compiled For source must be a document(...) path"
        )
    steps = source.steps
    if not steps or steps[-1].axis != "descendant-or-self":
        raise QueryCompileError(
            "compiled For path must end in descendant-or-self::*"
        )
    return source.root.name, tuple(steps[:-1])


def _build_scorer(score_clause: ScoreClause,
                  registry: FunctionRegistry):
    """Resolve the Score clause to ``(query items, scorer, phrase_mode)``:
    single-term sets lower onto TermJoin, any multi-word phrase switches
    the plan to PhraseJoin."""
    call = score_clause.function
    factory = registry.score_factory(call.name)
    primary: List[str] = []
    secondary: List[str] = []
    sets = [a for a in call.args if isinstance(a, TermSet)]
    if not sets:
        raise QueryCompileError(
            "compiled Score needs literal term sets"
        )
    primary = list(sets[0].phrases)
    if len(sets) > 1:
        secondary = list(sets[1].phrases)
    scorer = factory(primary, secondary)
    phrase_mode = any(
        len(p.split()) != 1 for p in primary + secondary
    )
    return primary + secondary, scorer, phrase_mode


def _threshold_params(flwor: FLWOR, var: str):
    min_score: Optional[float] = None
    stop_after: Optional[int] = None
    if flwor.threshold is not None:
        cond = flwor.threshold.condition
        if isinstance(cond, Comparison) and cond.op in (">", ">="):
            left, right = cond.left, cond.right
            if (
                isinstance(left, PathExpr)
                and isinstance(left.root, VarRef)
                and left.root.name == var
                and left.steps
                and left.steps[-1].axis == "attribute"
                and left.steps[-1].test == "score"
            ):
                from repro.query.ast import Literal

                if isinstance(right, Literal):
                    min_score = float(right.value)  # type: ignore[arg-type]
        if min_score is None:
            raise QueryCompileError(
                "compiled Threshold must be '$v/@score > number'"
            )
        stop_after = flwor.threshold.stop_after
    return min_score, stop_after


def _prefix_regions(store: XMLStore, doc_name: str, prefix_steps: tuple,
                    registry: FunctionRegistry):
    """Evaluate the For path's prefix (everything before the ad* tail) on
    the document and return the allowed (doc, start, end) regions."""
    evaluator = QueryEvaluator(store, registry)
    tree = evaluator.doc_tree(doc_name)
    items: List[SNode] = [tree.root]
    at_document_node = True
    for step in prefix_steps:
        nxt: List[SNode] = []
        for node in items:
            nxt.extend(
                n for n in evaluator._apply_step(
                    node, step, {}, from_document_node=at_document_node
                )
                if isinstance(n, SNode)
            )
        items = nxt
        at_document_node = False
    regions = []
    doc = store.document(doc_name)
    for node in items:
        if node.source is None:
            continue
        _d, nid = node.source
        regions.append((doc.doc_id, doc.starts[nid], doc.ends[nid]))
    return regions


def explain_query(store: XMLStore, query: Query,
                  registry: Optional[FunctionRegistry] = None,
                  **planner_opts: Any) -> str:
    """Compile and render the physical plan (without executing).
    Keyword options are forwarded to :func:`compile_query`."""
    plan = compile_query(store, query, registry, **planner_opts)
    return explain(plan)


def run_compiled(store: XMLStore, query: Query,
                 registry: Optional[FunctionRegistry] = None,
                 **planner_opts: Any) -> List[STree]:
    """Compile and execute, returning ranked scored subtrees.
    Keyword options are forwarded to :func:`compile_query`."""
    from repro import obs

    plan = compile_query(store, query, registry, **planner_opts)
    with obs.RECORDER.span("execute"):
        return execute(plan)
